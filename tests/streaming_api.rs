//! End-to-end tests of the streaming surface through the `tdb` façade:
//! `Solver::solve_dynamic` seeding, batched updates, validity invariants, and
//! the interaction with the two-cycle builder mode.

use tdb::prelude::*;

#[test]
fn prelude_exposes_the_full_streaming_surface() {
    let graph = tdb::graph::gen::erdos_renyi_gnm(300, 1_200, 5);
    let constraint = HopConstraint::new(4);
    let mut live = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph, &constraint)
        .unwrap();
    assert!(live.is_valid());

    let mut batch = EdgeBatch::new();
    for i in 0..50u32 {
        batch.insert((i * 7) % 300, (i * 13 + 1) % 300);
        if i % 3 == 0 {
            batch.remove(i % 300, (i + 1) % 300);
        }
    }
    let metrics: UpdateMetrics = live.apply(&batch);
    assert!(metrics.updates() > 0);
    assert!(live.is_valid());

    live.minimize();
    let final_graph = live.materialize();
    let v = verify_cover(&final_graph, live.cover(), &constraint);
    assert!(v.is_valid_and_minimal());
}

#[test]
fn dynamic_cover_tracks_a_two_cycle_constraint() {
    let graph = tdb::graph::builder::graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
    let mut live = DynamicCover::new(graph, HopConstraint::with_two_cycles(4));
    assert!(live.cover().is_empty());
    // A reciprocated pair is a 2-cycle under this constraint.
    assert_eq!(live.insert_edge(1, 0), 1);
    assert!(live.is_valid());
}

#[test]
fn delta_graph_interoperates_with_static_solvers() {
    // Maintain dynamically, then hand the materialized graph back to the
    // static pipeline — the two worlds must agree on validity.
    let graph = tdb::graph::gen::erdos_renyi_gnm(150, 600, 9);
    let constraint = HopConstraint::new(4);
    let mut live = Solver::new(Algorithm::BurPlus)
        .solve_dynamic(graph, &constraint)
        .unwrap();
    for i in 0..40u32 {
        live.insert_edge((i * 11) % 150, (i * 17 + 3) % 150);
        live.remove_edge((i * 5) % 150, (i * 7 + 1) % 150);
    }
    let snapshot: CsrGraph = live.materialize();
    let scratch = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&snapshot, &constraint)
        .unwrap();
    assert!(is_valid_cover(&snapshot, &scratch.cover, &constraint));
    assert!(is_valid_cover(&snapshot, live.cover(), &constraint));
}

#[test]
fn dynamic_config_knobs_are_reachable_from_the_facade() {
    let graph = tdb::graph::gen::erdos_renyi_gnm(120, 480, 2);
    let constraint = HopConstraint::new(4);
    let mut live = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic_with_config(
            graph,
            &constraint,
            DynamicConfig {
                compaction_threshold: 16,
                auto_minimize: true,
                ..Default::default()
            },
        )
        .unwrap();
    let mut batch = EdgeBatch::new();
    for i in 0..60u32 {
        batch.insert((i * 3 + 1) % 120, (i * 19 + 4) % 120);
    }
    let metrics = live.apply(&batch);
    assert!(metrics.compactions > 0, "threshold 16 must compact");
    assert!(!live.is_dirty(), "auto_minimize must clear the dirty flag");
    assert!(live.is_valid());
}
