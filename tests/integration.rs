//! Cross-crate integration tests: dataset proxies flow through generation,
//! serialization, every cover algorithm (via the unified `Solver`), and
//! independent verification.

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_datasets::{synthesize, Dataset, SynthesisConfig};
use tdb_graph::io;

fn tiny_proxy(dataset: Dataset) -> CsrGraph {
    synthesize(
        dataset,
        &SynthesisConfig {
            scale: 0.003,
            seed: 42,
            max_edges: 2_500,
            max_vertices: 1_200,
        },
    )
}

fn solve(g: &CsrGraph, constraint: &HopConstraint, algorithm: Algorithm) -> CoverRun {
    Solver::new(algorithm)
        .solve(g, constraint)
        .expect("unbudgeted solve cannot fail")
}

#[test]
fn every_algorithm_is_valid_on_dataset_proxies() {
    let constraint = HopConstraint::new(4);
    for dataset in [Dataset::WikiVote, Dataset::AsCaida, Dataset::Gnutella31] {
        let g = tiny_proxy(dataset);
        for algorithm in Algorithm::all() {
            let run = solve(&g, &constraint, algorithm);
            let verification = verify_cover(&g, &run.cover, &constraint);
            assert!(
                verification.is_valid,
                "{algorithm} invalid on {dataset:?}: witness {:?}",
                verification.witness
            );
        }
    }
}

#[test]
fn top_down_and_parallel_agree_on_proxies() {
    let constraint = HopConstraint::new(5);
    for dataset in [Dataset::EmailEuAll, Dataset::WebGoogle] {
        let g = tiny_proxy(dataset);
        let sequential = solve(&g, &constraint, Algorithm::TdbPlusPlus);
        let parallel = solve(&g, &constraint, Algorithm::TdbParallel);
        assert_eq!(sequential.cover, parallel.cover, "{dataset:?}");
    }
}

#[test]
fn graph_io_round_trip_preserves_cover_results() {
    let g = tiny_proxy(Dataset::Slashdot0902);
    let constraint = HopConstraint::new(4);
    let solver = Solver::new(Algorithm::TdbPlusPlus);
    let before = solver.solve(&g, &constraint).unwrap();

    let dir = std::env::temp_dir().join(format!("tdb_integration_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Text round trip.
    let text_path = dir.join("proxy.txt");
    io::write_edge_list(&g, &text_path).unwrap();
    let text_graph = io::read_edge_list(&text_path).unwrap();
    let after_text = solver.solve(&text_graph, &constraint).unwrap();
    assert_eq!(before.cover, after_text.cover);

    // Binary round trip.
    let bin_path = dir.join("proxy.tdbg");
    io::write_binary(&g, &bin_path).unwrap();
    let bin_graph = io::read_binary(&bin_path).unwrap();
    let after_bin = solver.solve(&bin_graph, &constraint).unwrap();
    assert_eq!(before.cover, after_bin.cover);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cover_size_ordering_matches_the_paper_trend() {
    // Table III / Figure 7: BUR+ produces the smallest covers, DARC-DV the
    // largest, TDB++ sits close to BUR+. Summed over several proxies the
    // ordering is robust even at tiny scale.
    let constraint = HopConstraint::new(4);
    let mut total_bur_plus = 0usize;
    let mut total_darc = 0usize;
    let mut total_tdb = 0usize;
    for dataset in [
        Dataset::WikiVote,
        Dataset::AsCaida,
        Dataset::Gnutella31,
        Dataset::EmailEuAll,
    ] {
        let g = tiny_proxy(dataset);
        total_bur_plus += solve(&g, &constraint, Algorithm::BurPlus).cover_size();
        total_darc += solve(&g, &constraint, Algorithm::DarcDv).cover_size();
        total_tdb += solve(&g, &constraint, Algorithm::TdbPlusPlus).cover_size();
    }
    assert!(
        total_bur_plus <= total_darc,
        "BUR+ total {total_bur_plus} should not exceed DARC-DV total {total_darc}"
    );
    assert!(
        total_tdb <= total_darc,
        "TDB++ total {total_tdb} should not exceed DARC-DV total {total_darc}"
    );
    assert!(
        total_tdb as f64 <= total_bur_plus as f64 * 1.6 + 4.0,
        "TDB++ total {total_tdb} strays too far from BUR+ total {total_bur_plus}"
    );
}

#[test]
fn tdb_variants_report_decreasing_search_effort() {
    // Figure 10: the block DFS and the BFS filter each cut work. Wall-clock is
    // noisy in CI, so the assertion is on the amount of search performed.
    let g = tiny_proxy(Dataset::WikiTalk);
    let constraint = HopConstraint::new(5);
    let tdb_plus = solve(&g, &constraint, Algorithm::TdbPlus);
    let tdb_pp = solve(&g, &constraint, Algorithm::TdbPlusPlus);
    assert_eq!(tdb_plus.cover, tdb_pp.cover);
    assert!(
        tdb_pp.metrics.cycle_queries <= tdb_plus.metrics.cycle_queries,
        "BFS filter should never increase the number of DFS queries ({} vs {})",
        tdb_pp.metrics.cycle_queries,
        tdb_plus.metrics.cycle_queries
    );
    assert!(tdb_pp.metrics.filter_released > 0);
}

#[test]
fn two_cycle_table_ratio_exceeds_one_on_reciprocal_proxies() {
    // Table IV: including 2-cycles grows the cover substantially on graphs with
    // reciprocated edges.
    let g = tiny_proxy(Dataset::Slashdot0902);
    let without = solve(&g, &HopConstraint::new(5), Algorithm::TdbPlusPlus);
    let with = solve(
        &g,
        &HopConstraint::with_two_cycles(5),
        Algorithm::TdbPlusPlus,
    );
    assert!(with.cover_size() > without.cover_size());
    assert!(verify_cover(&g, &with.cover, &HopConstraint::with_two_cycles(5)).is_valid);
}

#[test]
fn runtime_gap_tdb_vs_darc_on_a_dense_proxy() {
    // Table III headline: TDB++ is orders of magnitude faster than DARC-DV.
    // At this proxy size the measured gap is well over an order of magnitude,
    // so a conservative 3x assertion is safe against CI noise.
    let g = synthesize(
        Dataset::Slashdot0902,
        &SynthesisConfig {
            scale: 0.0015,
            seed: 42,
            max_edges: 3_000,
            max_vertices: 1_000,
        },
    );
    let constraint = HopConstraint::new(5);
    let darc = solve(&g, &constraint, Algorithm::DarcDv);
    let tdb = solve(&g, &constraint, Algorithm::TdbPlusPlus);
    assert!(
        darc.metrics.elapsed > tdb.metrics.elapsed * 3,
        "expected DARC-DV ({:?}) to be much slower than TDB++ ({:?})",
        darc.metrics.elapsed,
        tdb.metrics.elapsed
    );
}

#[test]
fn scaling_the_proxy_grows_the_cover() {
    // Sanity link between tdb-datasets and tdb-core: a larger proxy of the same
    // dataset has at least as many short cycles to cover.
    let constraint = HopConstraint::new(4);
    let small = synthesize(
        Dataset::WikiVote,
        &SynthesisConfig {
            scale: 0.002,
            ..SynthesisConfig::tiny()
        },
    );
    let large = synthesize(
        Dataset::WikiVote,
        &SynthesisConfig {
            scale: 0.02,
            ..SynthesisConfig::tiny()
        },
    );
    let small_run = solve(&small, &constraint, Algorithm::TdbPlusPlus);
    let large_run = solve(&large, &constraint, Algorithm::TdbPlusPlus);
    assert!(large_run.cover_size() >= small_run.cover_size());
}
