//! Acceptance tests for the unified `Solver` API: equivalence with the legacy
//! free functions, lossless `Algorithm` parsing, and budget enforcement.

use std::time::Duration;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::gen::{
    complete_digraph, directed_cycle, erdos_renyi_gnm, preferential_attachment, small_world,
    PreferentialConfig,
};
use tdb_graph::CsrGraph;

/// Generator graphs covering the shapes the algorithms care about: pure
/// cycles, dense cliques, sparse random, scale-free with reciprocation, and
/// small-world rings.
fn generator_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("directed_cycle", directed_cycle(6)),
        ("complete_digraph", complete_digraph(7)),
        ("erdos_renyi", erdos_renyi_gnm(40, 170, 11)),
        (
            "preferential",
            preferential_attachment(&PreferentialConfig {
                num_vertices: 60,
                out_degree: 3,
                reciprocity: 0.3,
                random_rewire: 0.1,
                seed: 5,
            }),
        ),
        ("small_world", small_world(50, 2, 0.2, 3)),
    ]
}

/// The per-family `_with` entry point for each algorithm, reproducing the
/// dispatch the consumers used to hand-roll before the `Solver` existed.
fn legacy_cover(g: &CsrGraph, constraint: &HopConstraint, algorithm: Algorithm) -> CoverRun {
    let ctx = &mut SolveContext::new();
    match algorithm {
        Algorithm::Bur => bottom_up_cover_with(g, constraint, &BottomUpConfig::bur(), ctx),
        Algorithm::BurPlus => bottom_up_cover_with(g, constraint, &BottomUpConfig::bur_plus(), ctx),
        Algorithm::DarcDv => darc_dv_cover_with(g, constraint, ctx),
        Algorithm::Tdb => top_down_cover_with(g, constraint, &TopDownConfig::tdb(), ctx),
        Algorithm::TdbPlus => top_down_cover_with(g, constraint, &TopDownConfig::tdb_plus(), ctx),
        Algorithm::TdbPlusPlus => {
            top_down_cover_with(g, constraint, &TopDownConfig::tdb_plus_plus(), ctx)
        }
        Algorithm::TdbExtended => {
            top_down_cover_with(g, constraint, &TopDownConfig::extended(), ctx)
        }
        Algorithm::TdbParallel => {
            parallel_top_down_cover_with(g, constraint, &ParallelConfig::default(), ctx)
        }
    }
    .expect("unbudgeted solve cannot fail")
}

/// `Solver::new(alg).solve(..)` returns exactly the cover of the legacy free
/// function, for every algorithm, on every generator graph.
#[test]
fn solver_matches_legacy_free_functions() {
    for (name, g) in generator_graphs() {
        for k in [3usize, 4] {
            let constraint = HopConstraint::new(k);
            for algorithm in Algorithm::all() {
                let legacy = legacy_cover(&g, &constraint, algorithm);
                let unified = Solver::new(algorithm).solve(&g, &constraint).unwrap();
                assert_eq!(
                    unified.cover, legacy.cover,
                    "{algorithm} differs from its legacy entry point on {name}, k = {k}"
                );
                assert_eq!(unified.metrics.algorithm, legacy.metrics.algorithm);
            }
        }
    }
}

/// Every algorithm is runnable through the solver and produces a valid cover.
#[test]
fn every_algorithm_is_runnable_via_solver() {
    let g = erdos_renyi_gnm(35, 150, 23);
    let constraint = HopConstraint::new(4);
    for algorithm in Algorithm::all() {
        let run = Solver::new(algorithm).solve(&g, &constraint).unwrap();
        assert!(
            is_valid_cover(&g, &run.cover, &constraint),
            "{algorithm} produced an invalid cover via the solver"
        );
    }
}

/// `Algorithm` parsing accepts every `name()` output losslessly, including
/// the awkward ones (`TDB++X`, `TDB++/par`), in any case, and rejects unknown
/// names with a typed error.
#[test]
fn algorithm_from_str_display_round_trip() {
    for algorithm in Algorithm::all() {
        let name = algorithm.name();
        assert_eq!(name.parse::<Algorithm>().unwrap(), algorithm, "{name}");
        assert_eq!(
            name.to_ascii_lowercase().parse::<Algorithm>().unwrap(),
            algorithm,
            "lowercase {name}"
        );
        assert_eq!(algorithm.to_string(), name);
    }
    // The two historically lossy names must parse.
    assert_eq!(
        "TDB++X".parse::<Algorithm>().unwrap(),
        Algorithm::TdbExtended
    );
    assert_eq!(
        "TDB++/par".parse::<Algorithm>().unwrap(),
        Algorithm::TdbParallel
    );

    let err = "turbo-cover".parse::<Algorithm>().unwrap_err();
    assert_eq!(err.input(), "turbo-cover");
    let message = err.to_string();
    for algorithm in Algorithm::all() {
        assert!(
            message.contains(algorithm.name()),
            "error message should list {}: {message}",
            algorithm.name()
        );
    }
}

/// A solver with an impossible budget reports `BudgetExceeded` instead of
/// running unbounded — for the sequential, exhaustive, and parallel families.
#[test]
fn time_budget_interrupts_instead_of_running_unbounded() {
    let g = preferential_attachment(&PreferentialConfig {
        num_vertices: 3_000,
        out_degree: 4,
        reciprocity: 0.2,
        random_rewire: 0.15,
        seed: 9,
    });
    let constraint = HopConstraint::new(5);
    for algorithm in [
        Algorithm::TdbPlusPlus,
        Algorithm::Bur,
        Algorithm::TdbParallel,
    ] {
        let result = Solver::new(algorithm)
            .with_time_budget(Duration::ZERO)
            .solve(&g, &constraint);
        match result {
            Err(SolveError::BudgetExceeded { budget, .. }) => {
                assert_eq!(budget, Duration::ZERO, "{algorithm}")
            }
            other => panic!("{algorithm}: expected BudgetExceeded, got {other:?}"),
        }
    }
}

/// A budget generous enough for the graph leaves the result identical to an
/// unbudgeted run.
#[test]
fn generous_budget_does_not_change_the_cover() {
    let g = erdos_renyi_gnm(60, 260, 31);
    let constraint = HopConstraint::new(4);
    let unbudgeted = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .unwrap();
    let budgeted = Solver::new(Algorithm::TdbPlusPlus)
        .with_time_budget(Duration::from_secs(120))
        .solve(&g, &constraint)
        .unwrap();
    assert_eq!(unbudgeted.cover, budgeted.cover);
}

/// Builder options flow through: scan order changes the top-down result the
/// same way the legacy config did, and threads reach the parallel family.
#[test]
fn builder_options_are_honored() {
    let g = complete_digraph(8);
    let constraint = HopConstraint::new(4);
    for order in [
        ScanOrder::Ascending,
        ScanOrder::DegreeDescending,
        ScanOrder::DegreeAscending,
        ScanOrder::Random(3),
    ] {
        let legacy = top_down_cover_with(
            &g,
            &constraint,
            &TopDownConfig::tdb_plus_plus().with_scan_order(order),
            &mut SolveContext::new(),
        )
        .unwrap();
        let unified = Solver::new(Algorithm::TdbPlusPlus)
            .with_scan_order(order)
            .solve(&g, &constraint)
            .unwrap();
        assert_eq!(unified.cover, legacy.cover, "{order:?}");
    }

    let sequential = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .unwrap();
    for threads in [1usize, 2, 4] {
        let parallel = Solver::new(Algorithm::TdbParallel)
            .with_threads(threads)
            .solve(&g, &constraint)
            .unwrap();
        assert_eq!(parallel.cover, sequential.cover, "threads {threads}");
    }
}

/// The context accumulates metrics across solves and reports progress.
#[test]
fn context_accumulation_and_progress() {
    let g = erdos_renyi_gnm(50, 210, 17);
    let constraint = HopConstraint::new(4);
    let solver = Solver::new(Algorithm::TdbPlusPlus);

    let mut ctx = solver.context();
    let first = solver.solve_with(&g, &constraint, &mut ctx).unwrap();
    let second = solver.solve_with(&g, &constraint, &mut ctx).unwrap();
    assert_eq!(ctx.completed_solves(), 2);
    assert_eq!(
        ctx.totals().cycle_queries,
        first.metrics.cycle_queries + second.metrics.cycle_queries
    );

    let mut reports = 0u64;
    {
        let mut ctx = solver.context();
        ctx.set_progress_callback(|p| {
            assert!(p.processed <= p.total);
            reports += 1;
        });
        solver.solve_with(&g, &constraint, &mut ctx).unwrap();
    }
    assert!(reports > 0, "no progress reports were delivered");
}
