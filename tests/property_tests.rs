//! Property-style tests over random graphs: every fast algorithm must agree
//! with brute-force ground truth on validity, minimality, and cycle existence.
//!
//! The workspace builds offline, so instead of proptest these run a fixed
//! number of deterministic cases drawn from the vendored xoshiro256** RNG:
//! every case is reproducible from its printed seed.

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::{find_cycle_through, BlockSearcher};
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};

/// A random directed graph with up to `n` vertices and `max_edges` edges,
/// described as an edge list (duplicates and self-loops are normalized away by
/// the builder).
fn random_graph(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> CsrGraph {
    graph_from_edges(&random_edge_list(rng, n, max_edges))
}

fn random_k(rng: &mut Xoshiro256, lo: usize, hi: usize) -> usize {
    lo + rng.next_index(hi - lo)
}

fn solve(g: &CsrGraph, constraint: &HopConstraint, algorithm: Algorithm) -> CoverRun {
    Solver::new(algorithm)
        .solve(g, constraint)
        .expect("unbudgeted solve cannot fail")
}

/// Brute-force check that `cover` hits every constrained cycle.
fn brute_force_valid(g: &CsrGraph, cover: &CycleCover, constraint: &HopConstraint) -> bool {
    let active = ActiveSet::all_active(g.num_vertices());
    enumerate_cycles(g, &active, constraint, 1_000_000)
        .into_iter()
        .all(|c| c.iter().any(|&v| cover.contains(v)))
}

/// The block/barrier DFS answers exactly the same existence question as the
/// exhaustive DFS, for every vertex, both 2-cycle modes, and several k.
#[test]
fn block_dfs_agrees_with_naive_dfs() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(case);
        let g = random_graph(&mut rng, 18, 70);
        let k = random_k(&mut rng, 3, 6);
        let active = ActiveSet::all_active(g.num_vertices());
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for include2 in [false, true] {
            let constraint = if include2 {
                HopConstraint::with_two_cycles(k)
            } else {
                HopConstraint::new(k)
            };
            for v in g.vertices() {
                let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
                let fast = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
                assert_eq!(
                    naive, fast,
                    "case {case}: vertex {v} k {k} include2 {include2}"
                );
            }
        }
    }
}

/// Every algorithm produces a cover that brute-force enumeration confirms,
/// and the minimality flag from the verifier is consistent with it.
#[test]
fn all_algorithms_produce_brute_force_valid_covers() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(1000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = random_k(&mut rng, 3, 6);
        let constraint = HopConstraint::new(k);
        for algorithm in [
            Algorithm::Bur,
            Algorithm::BurPlus,
            Algorithm::DarcDv,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbExtended,
        ] {
            let run = solve(&g, &constraint, algorithm);
            assert!(
                brute_force_valid(&g, &run.cover, &constraint),
                "case {case}: {algorithm} produced an uncovered cycle"
            );
            let verdict = verify_cover(&g, &run.cover, &constraint);
            assert!(
                verdict.is_valid,
                "case {case}: {algorithm} flagged invalid by the verifier"
            );
        }
    }
}

/// The minimal algorithms (BUR+, the TDB family) never return a cover with
/// an individually redundant vertex.
#[test]
fn minimal_algorithms_are_minimal() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(2000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = random_k(&mut rng, 3, 6);
        let constraint = HopConstraint::new(k);
        for algorithm in [
            Algorithm::BurPlus,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbParallel,
        ] {
            let run = solve(&g, &constraint, algorithm);
            let verdict = verify_cover(&g, &run.cover, &constraint);
            assert!(
                verdict.is_minimal,
                "case {case}: {algorithm} left redundant vertices {:?}",
                verdict.redundant
            );
        }
    }
}

/// The TDB variants all compute the same cover, and the parallel extension
/// matches them too.
#[test]
fn tdb_variants_identical() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + case);
        let g = random_graph(&mut rng, 20, 80);
        let k = random_k(&mut rng, 3, 6);
        let constraint = HopConstraint::new(k);
        let reference = solve(&g, &constraint, Algorithm::Tdb);
        for algorithm in [
            Algorithm::TdbPlus,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbExtended,
            Algorithm::TdbParallel,
        ] {
            let run = solve(&g, &constraint, algorithm);
            assert_eq!(
                run.cover, reference.cover,
                "case {case}: {algorithm} differs"
            );
        }
    }
}

/// A cover for cycles of length up to `k` is automatically valid for every
/// smaller hop bound (the requirement shrinks), and stays minimal for its
/// own bound. (Cover *size* is not necessarily monotone in `k` for a
/// heuristic scan, so only the containment property is asserted.)
#[test]
fn k_cover_is_valid_for_smaller_k() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(4000 + case);
        let g = random_graph(&mut rng, 16, 60);
        let k = random_k(&mut rng, 4, 7);
        let big = solve(&g, &HopConstraint::new(k), Algorithm::TdbPlusPlus);
        let small_constraint = HopConstraint::new(k - 1);
        assert!(
            is_valid_cover(&g, &big.cover, &small_constraint),
            "case {case}"
        );
        assert!(
            verify_cover(&g, &big.cover, &HopConstraint::new(k)).is_minimal,
            "case {case}"
        );
    }
}

/// A cover for cycles of length `2..=k` is automatically a cover for
/// `3..=k` (the requirement is a superset), and it is brute-force valid.
/// Note the cover *size* is not monotone between the two modes: a kept
/// 2-cycle endpoint can cover several longer cycles at once, so the
/// with-2-cycles cover of a heuristic scan can be smaller.
#[test]
fn two_cycle_mode_is_a_superset_requirement() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(5000 + case);
        let g = random_graph(&mut rng, 16, 60);
        let k = random_k(&mut rng, 3, 6);
        let with = solve(
            &g,
            &HopConstraint::with_two_cycles(k),
            Algorithm::TdbPlusPlus,
        );
        assert!(
            brute_force_valid(&g, &with.cover, &HopConstraint::with_two_cycles(k)),
            "case {case}"
        );
        assert!(
            is_valid_cover(&g, &with.cover, &HopConstraint::new(k)),
            "case {case}"
        );
        assert!(
            verify_cover(&g, &with.cover, &HopConstraint::with_two_cycles(k)).is_minimal,
            "case {case}"
        );
    }
}

/// Removing the cover really leaves the graph free of short cycles, and the
/// cover never contains vertices that were never on any short cycle.
#[test]
fn cover_vertices_lie_on_cycles() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(6000 + case);
        let g = random_graph(&mut rng, 16, 60);
        let k = random_k(&mut rng, 3, 6);
        let constraint = HopConstraint::new(k);
        let run = solve(&g, &constraint, Algorithm::TdbPlusPlus);
        let all_active = ActiveSet::all_active(g.num_vertices());
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in run.cover.iter() {
            assert!(
                searcher.is_on_constrained_cycle(&g, &all_active, v, &constraint),
                "case {case}: cover vertex {v} is not on any constrained cycle of the full graph"
            );
        }
    }
}

/// The DARC edge transversal (the algorithm the baseline is built from)
/// intersects every constrained cycle when viewed as an edge set.
#[test]
fn darc_edge_transversal_hits_every_cycle() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(7000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = random_k(&mut rng, 3, 5);
        let constraint = HopConstraint::new(k);
        let transversal = tdb_core::darc::darc_edge_transversal(&g, &constraint);
        let selected: std::collections::HashSet<_> = transversal.edges.iter().copied().collect();
        let active = ActiveSet::all_active(g.num_vertices());
        for cycle in enumerate_cycles(&g, &active, &constraint, 100_000) {
            let hit = cycle.iter().enumerate().any(|(i, &u)| {
                let v = cycle[(i + 1) % cycle.len()];
                selected.contains(&tdb_graph::Edge::new(u, v))
            });
            assert!(
                hit,
                "case {case}: cycle {cycle:?} misses the edge transversal"
            );
        }
    }
}
