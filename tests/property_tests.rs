//! Property-based tests over random graphs: every fast algorithm must agree
//! with brute-force ground truth on validity, minimality, and cycle existence.

use proptest::prelude::*;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::{find_cycle_through, BlockSearcher};
use tdb_graph::builder::graph_from_edges;

/// Strategy: a random directed graph with up to `n` vertices and `m` edges,
/// described as an edge list (duplicates and self-loops are normalized away by
/// the builder).
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(|edges| graph_from_edges(&edges))
}

/// Brute-force check that `cover` hits every constrained cycle.
fn brute_force_valid(g: &CsrGraph, cover: &tdb_core::CycleCover, constraint: &HopConstraint) -> bool {
    let active = ActiveSet::all_active(g.num_vertices());
    enumerate_cycles(g, &active, constraint, 1_000_000)
        .into_iter()
        .all(|c| c.iter().any(|&v| cover.contains(v)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// The block/barrier DFS answers exactly the same existence question as the
    /// exhaustive DFS, for every vertex, both 2-cycle modes, and several k.
    #[test]
    fn block_dfs_agrees_with_naive_dfs(g in arb_graph(18, 70), k in 3usize..6) {
        let active = ActiveSet::all_active(g.num_vertices());
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for include2 in [false, true] {
            let constraint = if include2 {
                HopConstraint::with_two_cycles(k)
            } else {
                HopConstraint::new(k)
            };
            for v in g.vertices() {
                let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
                let fast = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
                prop_assert_eq!(naive, fast, "vertex {} k {} include2 {}", v, k, include2);
            }
        }
    }

    /// Every algorithm produces a cover that brute-force enumeration confirms,
    /// and the minimality flag from the verifier is consistent with it.
    #[test]
    fn all_algorithms_produce_brute_force_valid_covers(g in arb_graph(14, 50), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        for algorithm in [
            Algorithm::Bur,
            Algorithm::BurPlus,
            Algorithm::DarcDv,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbExtended,
        ] {
            let run = tdb_core::compute_cover(&g, &constraint, algorithm);
            prop_assert!(
                brute_force_valid(&g, &run.cover, &constraint),
                "{} produced an uncovered cycle", algorithm
            );
            let verdict = verify_cover(&g, &run.cover, &constraint);
            prop_assert!(verdict.is_valid, "{} flagged invalid by the verifier", algorithm);
        }
    }

    /// The minimal algorithms (BUR+, the TDB family) never return a cover with
    /// an individually redundant vertex.
    #[test]
    fn minimal_algorithms_are_minimal(g in arb_graph(14, 50), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        for algorithm in [Algorithm::BurPlus, Algorithm::TdbPlusPlus, Algorithm::TdbParallel] {
            let run = tdb_core::compute_cover(&g, &constraint, algorithm);
            let verdict = verify_cover(&g, &run.cover, &constraint);
            prop_assert!(
                verdict.is_minimal,
                "{} left redundant vertices {:?}", algorithm, verdict.redundant
            );
        }
    }

    /// The TDB variants all compute the same cover, and the parallel extension
    /// matches them too.
    #[test]
    fn tdb_variants_identical(g in arb_graph(20, 80), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        let reference = top_down_cover(&g, &constraint, &TopDownConfig::tdb());
        for config in [TopDownConfig::tdb_plus(), TopDownConfig::tdb_plus_plus(), TopDownConfig::extended()] {
            let run = top_down_cover(&g, &constraint, &config);
            prop_assert_eq!(&run.cover, &reference.cover, "{} differs", config.name());
        }
        let par = parallel_top_down_cover(&g, &constraint, &ParallelConfig::default());
        prop_assert_eq!(&par.cover, &reference.cover, "parallel differs");
    }

    /// A cover for cycles of length up to `k` is automatically valid for every
    /// smaller hop bound (the requirement shrinks), and stays minimal for its
    /// own bound. (Cover *size* is not necessarily monotone in `k` for a
    /// heuristic scan, so only the containment property is asserted.)
    #[test]
    fn k_cover_is_valid_for_smaller_k(g in arb_graph(16, 60), k in 4usize..7) {
        let big = top_down_cover(&g, &HopConstraint::new(k), &TopDownConfig::tdb_plus_plus());
        let small_constraint = HopConstraint::new(k - 1);
        prop_assert!(is_valid_cover(&g, &big.cover, &small_constraint));
        prop_assert!(verify_cover(&g, &big.cover, &HopConstraint::new(k)).is_minimal);
    }

    /// A cover for cycles of length `2..=k` is automatically a cover for
    /// `3..=k` (the requirement is a superset), and it is brute-force valid.
    /// Note the cover *size* is not monotone between the two modes: a kept
    /// 2-cycle endpoint can cover several longer cycles at once, so the
    /// with-2-cycles cover of a heuristic scan can be smaller.
    #[test]
    fn two_cycle_mode_is_a_superset_requirement(g in arb_graph(16, 60), k in 3usize..6) {
        let with = top_down_cover(&g, &HopConstraint::with_two_cycles(k), &TopDownConfig::tdb_plus_plus());
        prop_assert!(brute_force_valid(&g, &with.cover, &HopConstraint::with_two_cycles(k)));
        prop_assert!(is_valid_cover(&g, &with.cover, &HopConstraint::new(k)));
        prop_assert!(verify_cover(&g, &with.cover, &HopConstraint::with_two_cycles(k)).is_minimal);
    }

    /// Removing the cover really leaves the graph free of short cycles, and the
    /// cover never contains vertices that were never on any short cycle.
    #[test]
    fn cover_vertices_lie_on_cycles(g in arb_graph(16, 60), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        let run = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
        let all_active = ActiveSet::all_active(g.num_vertices());
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in run.cover.iter() {
            prop_assert!(
                searcher.is_on_constrained_cycle(&g, &all_active, v, &constraint),
                "cover vertex {} is not on any constrained cycle of the full graph", v
            );
        }
    }

    /// The DARC edge transversal (the algorithm the baseline is built from)
    /// intersects every constrained cycle when viewed as an edge set.
    #[test]
    fn darc_edge_transversal_hits_every_cycle(g in arb_graph(14, 50), k in 3usize..5) {
        let constraint = HopConstraint::new(k);
        let transversal = tdb_core::darc::darc_edge_transversal(&g, &constraint);
        let selected: std::collections::HashSet<_> = transversal.edges.iter().copied().collect();
        let active = ActiveSet::all_active(g.num_vertices());
        for cycle in enumerate_cycles(&g, &active, &constraint, 100_000) {
            let hit = cycle.iter().enumerate().any(|(i, &u)| {
                let v = cycle[(i + 1) % cycle.len()];
                selected.contains(&tdb_graph::Edge::new(u, v))
            });
            prop_assert!(hit, "cycle {:?} misses the edge transversal", cycle);
        }
    }
}
