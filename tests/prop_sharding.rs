//! Property tests: the SCC-partitioned solve is equivalent to the
//! whole-graph solve on random multi-SCC graphs.
//!
//! The partition argument (every constrained cycle lives inside one strongly
//! connected component, and the extraction's id remap is monotone) claims
//! that sharding never changes the result. These cases stress it over random
//! component structures — including the degenerate shapes where partitioning
//! must gracefully do nothing: a single SCC spanning the whole graph, and an
//! all-trivial (acyclic) graph with no shards at all.
//!
//! Deterministic xoshiro256** cases instead of proptest (offline build);
//! every case reproduces from its printed seed.

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::Condensation;

/// A random graph with a planted multi-component macro structure: 1..=5
/// blocks, each either a cycle-guaranteed ring-plus-chords blob, a random
/// blob (any SCC structure), or a path (all-trivial), chained by one-way
/// bridges so that blocks never merge into one component.
fn random_multi_scc(rng: &mut Xoshiro256) -> CsrGraph {
    let blocks = 1 + rng.next_index(5);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut base = 0u32;
    for i in 0..blocks {
        let n = 3 + rng.next_index(12) as u32;
        match rng.next_index(3) {
            0 => {
                // Ring + random chords: one SCC of size n.
                for v in 0..n {
                    edges.push((base + v, base + (v + 1) % n));
                }
                for _ in 0..rng.next_index(3 * n as usize) {
                    let u = base + rng.next_bounded(n as u64) as u32;
                    let v = base + rng.next_bounded(n as u64) as u32;
                    if u != v {
                        edges.push((u, v));
                    }
                }
            }
            1 => {
                // Fully random block: arbitrary internal SCC structure.
                for (u, v) in random_edge_list(rng, n, 4 * n as usize) {
                    if u != v {
                        edges.push((base + u, base + v));
                    }
                }
            }
            _ => {
                // Directed path: all-trivial SCCs.
                for v in 0..n - 1 {
                    edges.push((base + v, base + v + 1));
                }
            }
        }
        if i + 1 < blocks {
            // One-way bridge to the next block keeps components separate.
            edges.push((base + rng.next_bounded(n as u64) as u32, base + n));
        }
        base += n;
    }
    graph_from_edges(&edges)
}

fn check_equivalence(g: &CsrGraph, k: usize, algorithm: Algorithm, seed_label: u64) {
    let constraint = HopConstraint::new(k);
    let plain = Solver::new(algorithm)
        .solve(g, &constraint)
        .expect("unbudgeted solve cannot fail");
    for threads in [1usize, 4] {
        let sharded = Solver::new(algorithm)
            .with_sharding(ShardingMode::Threads(threads))
            .solve(g, &constraint)
            .expect("unbudgeted solve cannot fail");
        assert_eq!(
            sharded.cover, plain.cover,
            "case {seed_label}, {algorithm}, k={k}, threads={threads}: covers differ"
        );
        assert_eq!(sharded.cover.len(), plain.cover.len());
        let v = verify_cover(g, &sharded.cover, &constraint);
        assert!(
            v.is_valid,
            "case {seed_label}, {algorithm}, k={k}: invalid, witness {:?}",
            v.witness
        );
    }
}

#[test]
fn partitioned_solve_equals_whole_graph_solve_on_random_multi_scc_graphs() {
    for case in 0..40u64 {
        let mut rng = Xoshiro256::seed_from_u64(0x5AD_u64 ^ (case << 8));
        let g = random_multi_scc(&mut rng);
        let k = 3 + rng.next_index(3);
        check_equivalence(&g, k, Algorithm::TdbPlusPlus, case);
        if case % 4 == 0 {
            // The slower families on a quarter of the cases.
            check_equivalence(&g, k, Algorithm::BurPlus, case);
            check_equivalence(&g, k, Algorithm::DarcDv, case);
        }
    }
}

#[test]
fn single_scc_graph_partitions_into_one_shard_and_agrees() {
    // A complete digraph is one SCC covering every vertex: the partition has
    // exactly one shard, which must behave as an identity transformation.
    let g = tdb_graph::gen::complete_digraph(9);
    let cond = Condensation::of(&g);
    assert_eq!(cond.non_trivial().count(), 1);
    assert_eq!(cond.trivial_vertices(), 0);
    for algorithm in [Algorithm::TdbPlusPlus, Algorithm::BurPlus] {
        check_equivalence(&g, 4, algorithm, u64::MAX);
    }
}

#[test]
fn all_trivial_graph_partitions_into_zero_shards_and_agrees() {
    // A DAG has no non-trivial SCC: the sharded path must produce the same
    // (empty) cover without ever invoking the algorithm.
    let g = tdb_graph::gen::layered_dag(5, 6);
    let cond = Condensation::of(&g);
    assert_eq!(cond.non_trivial().count(), 0);
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .with_sharding(ShardingMode::Auto)
        .solve(&g, &HopConstraint::new(5))
        .unwrap();
    assert!(run.cover.is_empty());
    assert_eq!(run.metrics.scc_released as usize, g.num_vertices());
    assert_eq!(run.metrics.cycle_queries, 0);
    check_equivalence(&g, 5, Algorithm::TdbPlusPlus, u64::MAX - 1);
}

#[test]
fn sharding_composes_with_two_cycle_modes_on_random_graphs() {
    for case in 0..12u64 {
        let mut rng = Xoshiro256::seed_from_u64(0x7C_u64 ^ (case << 9));
        let g = random_multi_scc(&mut rng);
        for mode in [TwoCycleMode::Integrated, TwoCycleMode::Separate] {
            let plain = Solver::new(Algorithm::TdbPlusPlus)
                .with_two_cycle_mode(mode)
                .solve(&g, &HopConstraint::new(4))
                .unwrap();
            let sharded = Solver::new(Algorithm::TdbPlusPlus)
                .with_two_cycle_mode(mode)
                .with_sharding(ShardingMode::Threads(2))
                .solve(&g, &HopConstraint::new(4))
                .unwrap();
            assert_eq!(sharded.cover, plain.cover, "case {case}, {mode:?}");
            assert!(
                is_valid_cover(&g, &sharded.cover, &HopConstraint::with_two_cycles(4)),
                "case {case}, {mode:?}"
            );
        }
    }
}
