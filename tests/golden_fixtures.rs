//! Golden-fixture snapshot tests: four small serialized graphs with pinned
//! cover sizes per algorithm.
//!
//! The fixtures under `tests/fixtures/*.tdbg` are checked-in binary graphs
//! (the `TDBG` codec from `tdb_graph::io`). Every algorithm is run against
//! each fixture at `k = 4`, in both two-cycle modes, and the resulting cover
//! sizes must match the table below **exactly** — a refactor that silently
//! changes any algorithm's result fails loudly here even if the new cover is
//! still valid.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! TDB_REGEN_FIXTURES=1 cargo test --test golden_fixtures -- --nocapture
//! ```
//!
//! which rewrites the fixture files and prints the new `GOLDEN` table to
//! paste into this file.

use std::path::PathBuf;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{erdos_renyi_gnm, preferential_attachment, small_world, PreferentialConfig};
use tdb_graph::io::{read_binary, write_binary};

const K: usize = 4;

/// The algorithms in `Algorithm::all()` order — the column order of `GOLDEN`.
fn algorithms() -> [Algorithm; 8] {
    Algorithm::all()
}

/// Expected cover sizes: `(fixture, [plain sizes; 8], [2-cycle sizes; 8])`,
/// columns in `Algorithm::all()` order (BUR, BUR+, DARC-DV, TDB, TDB+,
/// TDB++, TDB++X, TDB++/par).
const GOLDEN: [(&str, [usize; 8], [usize; 8]); 4] = [
    (
        "erdos_renyi",
        [14, 10, 24, 10, 10, 10, 10, 10],
        [14, 12, 25, 11, 11, 11, 11, 11],
    ),
    (
        "preferential",
        [8, 7, 35, 16, 16, 16, 16, 16],
        [19, 16, 38, 19, 19, 19, 19, 19],
    ),
    (
        "multi_scc",
        [3, 3, 3, 3, 3, 3, 3, 3],
        [3, 3, 3, 3, 3, 3, 3, 3],
    ),
    (
        "small_world",
        [6, 5, 7, 5, 5, 5, 5, 5],
        [6, 5, 7, 5, 5, 5, 5, 5],
    ),
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

/// The generator of each fixture (only used by the regeneration path; the
/// tests proper read the checked-in files).
fn generate(name: &str) -> CsrGraph {
    match name {
        "erdos_renyi" => erdos_renyi_gnm(36, 140, 5),
        "preferential" => preferential_attachment(&PreferentialConfig {
            num_vertices: 48,
            out_degree: 3,
            reciprocity: 0.4,
            random_rewire: 0.12,
            seed: 13,
        }),
        "multi_scc" => {
            // Three blocks (ring of 12, two triangles of 3) plus a tail.
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for v in 0..12u32 {
                edges.push((v, (v + 1) % 12));
            }
            edges.extend([(2, 7), (5, 11), (9, 3), (10, 1), (4, 0), (8, 2)]);
            edges.extend([(11, 12), (12, 13), (13, 14), (14, 12)]);
            edges.extend([(14, 15), (15, 16), (16, 17), (17, 15), (16, 15)]);
            edges.extend([(17, 18), (18, 19)]);
            graph_from_edges(&edges)
        }
        "small_world" => small_world(44, 2, 0.3, 21),
        other => panic!("unknown fixture {other:?}"),
    }
}

fn solve_sizes(g: &CsrGraph, constraint: &HopConstraint) -> [usize; 8] {
    let mut sizes = [0usize; 8];
    for (slot, algorithm) in sizes.iter_mut().zip(algorithms()) {
        *slot = Solver::new(algorithm)
            .solve(g, constraint)
            .expect("unbudgeted solve cannot fail")
            .cover_size();
    }
    sizes
}

#[test]
fn golden_fixture_cover_sizes_are_stable() {
    if std::env::var_os("TDB_REGEN_FIXTURES").is_some() {
        regenerate();
        return;
    }
    for (name, plain_sizes, two_cycle_sizes) in GOLDEN {
        let path = fixtures_dir().join(format!("{name}.tdbg"));
        let g = read_binary(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        let plain = solve_sizes(&g, &HopConstraint::new(K));
        let two = solve_sizes(&g, &HopConstraint::with_two_cycles(K));
        for (i, algorithm) in algorithms().into_iter().enumerate() {
            assert_eq!(
                plain[i], plain_sizes[i],
                "{name}: {algorithm} cover size drifted (k = {K})"
            );
            assert_eq!(
                two[i], two_cycle_sizes[i],
                "{name}: {algorithm} cover size drifted (k = {K}, 2-cycles)"
            );
        }
        // The fixture file is the source of truth — it must also still match
        // its generator, so a codec regression cannot hide behind a regen.
        let regen = generate(name);
        assert_eq!(g.num_vertices(), regen.num_vertices(), "{name}");
        assert_eq!(g.num_edges(), regen.num_edges(), "{name}");
    }
}

/// Sharding must agree with the pinned sizes too (it reuses the same table,
/// so any sharded drift is caught against the same goldens).
#[test]
fn golden_fixture_sizes_hold_under_sharding() {
    if std::env::var_os("TDB_REGEN_FIXTURES").is_some() {
        return;
    }
    for (name, plain_sizes, _) in GOLDEN {
        let g = read_binary(fixtures_dir().join(format!("{name}.tdbg"))).unwrap();
        for (i, algorithm) in algorithms().into_iter().enumerate() {
            let run = Solver::new(algorithm)
                .with_sharding(ShardingMode::Threads(2))
                .solve(&g, &HopConstraint::new(K))
                .unwrap();
            assert_eq!(
                run.cover_size(),
                plain_sizes[i],
                "{name}: {algorithm} sharded"
            );
        }
    }
}

fn regenerate() {
    let dir = fixtures_dir();
    std::fs::create_dir_all(&dir).expect("create fixtures dir");
    println!("const GOLDEN: [(&str, [usize; 8], [usize; 8]); 4] = [");
    for (name, _, _) in GOLDEN {
        let g = generate(name);
        write_binary(&g, dir.join(format!("{name}.tdbg"))).expect("write fixture");
        let plain = solve_sizes(&g, &HopConstraint::new(K));
        let two = solve_sizes(&g, &HopConstraint::with_two_cycles(K));
        println!("    ({name:?}, {plain:?}, {two:?}),");
    }
    println!("];");
}
