//! The cross-algorithm differential test kit — the reusable oracle for
//! future refactors.
//!
//! A deterministic scenario matrix
//! `graph family × hop bound × algorithm × sharding on/off × two-cycle mode`
//! is solved through the unified [`Solver`] API, and every configuration is
//! held to the properties the crate documents:
//!
//! * every cover is **valid** (verified independently by
//!   `tdb_core::verify`);
//! * algorithms that guarantee minimality (`BUR+` via Algorithm 7, the
//!   top-down family via Theorem 7) produce **minimal** covers in the
//!   `FollowConstraint` and `Integrated` modes;
//! * the SCC-**sharded** solve returns the **same cover** as the unsharded
//!   one (the partition argument: every constrained cycle lives inside one
//!   SCC, and the extraction's id remap is monotone);
//! * the **top-down variants** (`TDB`, `TDB+`, `TDB++`, `TDB++X`,
//!   `TDB++/par`) return **identical covers** — the filters only skip work,
//!   never change decisions (paper §VII-B);
//! * `Objective::MinWeight` under **all-1 weights** reproduces the
//!   `MinCardinality` cover **bit-exactly** in every configuration — the
//!   weight hooks are stable orderings and `u128` cross-multiplications
//!   that degenerate to the unweighted comparisons when costs are equal.
//!
//! Budgeted solves are covered by separate property tests below: a
//! [`Budget`] cap is never exceeded, and the reported residual is exactly
//! the set of uncovered constrained cycles (audited with the verifier).
//!
//! The whole matrix is also written to `target/differential/matrix.md` so CI
//! can publish it as a build artifact: a refactor that shifts any cover size
//! shows up as a diff of that table even before an assertion trips.

use std::fmt::Write as _;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::gen::{
    erdos_renyi_gnm, multi_scc_chain, preferential_attachment, small_world, MultiSccConfig,
    PreferentialConfig,
};
use tdb_graph::CostModel;

/// One graph family instance of the matrix, seeded and deterministic.
struct Family {
    name: &'static str,
    graph: CsrGraph,
}

/// A medium multi-SCC instance: three ring-plus-chords blocks of different
/// sizes chained by one-way bridges, plus an acyclic tail.
fn multi_scc_instance(seed: u64) -> CsrGraph {
    multi_scc_chain(&MultiSccConfig {
        component_sizes: vec![14, 10, 7],
        chords_per_component: vec![42, 30, 21],
        tail_len: 2,
        seed,
    })
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "erdos-renyi",
            graph: erdos_renyi_gnm(40, 170, 7),
        },
        Family {
            name: "preferential",
            graph: preferential_attachment(&PreferentialConfig {
                num_vertices: 50,
                out_degree: 3,
                reciprocity: 0.35,
                random_rewire: 0.1,
                seed: 11,
            }),
        },
        Family {
            name: "small-world",
            graph: small_world(40, 2, 0.25, 9),
        },
        Family {
            name: "multi-scc",
            graph: multi_scc_instance(23),
        },
    ]
}

const HOP_BOUNDS: [usize; 2] = [3, 5];
const TWO_CYCLE_MODES: [TwoCycleMode; 3] = [
    TwoCycleMode::FollowConstraint,
    TwoCycleMode::Integrated,
    TwoCycleMode::Separate,
];

/// Whether this algorithm guarantees a minimal cover in this two-cycle mode.
///
/// `BUR` skips the Algorithm-7 pruning pass by definition; `DARC-DV` maps an
/// edge-minimal line-graph transversal to vertices, which is not
/// vertex-minimal; and the `Separate` mode unions two independently minimal
/// covers, which the solver documents as possibly oversized.
fn guarantees_minimal(algorithm: Algorithm, mode: TwoCycleMode) -> bool {
    !matches!(algorithm, Algorithm::Bur | Algorithm::DarcDv) && mode != TwoCycleMode::Separate
}

/// The constraint a cover produced under `mode` must actually satisfy.
fn effective_constraint(k: usize, mode: TwoCycleMode) -> HopConstraint {
    match mode {
        TwoCycleMode::FollowConstraint => HopConstraint::new(k),
        TwoCycleMode::Integrated | TwoCycleMode::Separate => HopConstraint::with_two_cycles(k),
    }
}

fn mode_label(mode: TwoCycleMode) -> &'static str {
    match mode {
        TwoCycleMode::FollowConstraint => "plain",
        TwoCycleMode::Integrated => "2cyc-integrated",
        TwoCycleMode::Separate => "2cyc-separate",
    }
}

/// Run the full matrix, assert every documented property, and return the
/// markdown summary.
fn run_matrix() -> String {
    let mut summary = String::from(
        "# Differential matrix\n\n\
         Cover sizes per (graph family, k, two-cycle mode, algorithm), \
         unsharded vs sharded.\n\n\
         | family | k | mode | algorithm | unsharded | sharded | valid | minimal |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for family in families() {
        let g = &family.graph;
        for k in HOP_BOUNDS {
            for mode in TWO_CYCLE_MODES {
                let constraint = HopConstraint::new(k);
                let check = effective_constraint(k, mode);
                let mut top_down_reference: Option<CycleCover> = None;
                for algorithm in Algorithm::all() {
                    let label = format!("{}/k={k}/{}/{algorithm}", family.name, mode_label(mode));
                    let plain = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| panic!("{label}: unsharded solve failed: {e}"));
                    let sharded = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .with_sharding(ShardingMode::Threads(3))
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| panic!("{label}: sharded solve failed: {e}"));

                    // Sharded must reproduce the unsharded cover exactly: the
                    // default scan order is ascending and the extraction's id
                    // remap is monotone.
                    assert_eq!(
                        sharded.cover, plain.cover,
                        "{label}: sharded cover differs from unsharded"
                    );

                    // Objective axis: MinWeight under all-1 weights must be
                    // bit-identical to MinCardinality — every weight hook
                    // degenerates to the unweighted comparison when costs
                    // are equal. `from_fn` deliberately builds a PerVertex
                    // model (not Uniform) so the weight-aware code paths
                    // actually run.
                    let unit = CostModel::from_fn(g.num_vertices(), |_| 1);
                    let weighted = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .with_objective(Objective::MinWeight)
                        .with_costs(unit.clone())
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| panic!("{label}: all-1 MinWeight solve failed: {e}"));
                    assert_eq!(
                        weighted.cover, plain.cover,
                        "{label}: all-1 MinWeight cover differs from MinCardinality"
                    );
                    let weighted_sharded = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .with_objective(Objective::MinWeight)
                        .with_costs(unit)
                        .with_sharding(ShardingMode::Threads(3))
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| {
                            panic!("{label}: sharded all-1 MinWeight solve failed: {e}")
                        });
                    assert_eq!(
                        weighted_sharded.cover, plain.cover,
                        "{label}: sharded all-1 MinWeight cover differs from MinCardinality"
                    );

                    let verification = verify_cover(g, &plain.cover, &check);
                    assert!(
                        verification.is_valid,
                        "{label}: invalid cover, witness {:?}",
                        verification.witness
                    );
                    let minimal_required = guarantees_minimal(algorithm, mode);
                    if minimal_required {
                        assert!(
                            verification.is_minimal,
                            "{label}: non-minimal cover, redundant {:?}",
                            verification.redundant
                        );
                    }

                    // The top-down variants must agree vertex-for-vertex.
                    if matches!(
                        algorithm,
                        Algorithm::Tdb
                            | Algorithm::TdbPlus
                            | Algorithm::TdbPlusPlus
                            | Algorithm::TdbExtended
                            | Algorithm::TdbParallel
                    ) {
                        match &top_down_reference {
                            None => top_down_reference = Some(plain.cover.clone()),
                            Some(reference) => assert_eq!(
                                &plain.cover, reference,
                                "{label}: top-down variants must produce identical covers"
                            ),
                        }
                    }

                    writeln!(
                        summary,
                        "| {} | {k} | {} | {algorithm} | {} | {} | yes | {} |",
                        family.name,
                        mode_label(mode),
                        plain.cover.len(),
                        sharded.cover.len(),
                        if minimal_required {
                            "yes"
                        } else if verification.is_minimal {
                            "yes*"
                        } else {
                            "n/a"
                        },
                    )
                    .expect("writing to a String cannot fail");
                }
            }
        }
    }
    summary.push_str(
        "\n`yes*` = minimal in this run though the configuration does not guarantee it.\n",
    );
    summary
}

#[test]
fn differential_matrix_holds_across_all_configurations() {
    let summary = run_matrix();
    // Publish the matrix for the CI artifact; failure to write is not a test
    // failure (read-only checkouts still validate everything above).
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/target/differential");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = format!("{dir}/matrix.md");
        if let Err(e) = std::fs::write(&path, &summary) {
            eprintln!("note: could not write {path}: {e}");
        }
    }
    // 4 families x 2 hop bounds x 3 modes x 8 algorithms data rows, plus the
    // header row (the `|---|` separator does not start with a pipe + space).
    let rows = summary.lines().filter(|l| l.starts_with("| ")).count();
    assert_eq!(rows, 4 * 2 * 3 * 8 + 1, "matrix data rows + header");
}

/// Audit one budgeted report against the graph it was solved on:
///
/// * the budget cap is actually respected (vertices or cost, per variant);
/// * `total_cost` is the cost model's own sum over the kept cover;
/// * `exhausted` ⟺ the kept cover misses some constrained cycle ⟺ the
///   residual is non-empty (the enumeration is complete below the cap);
/// * every residual cycle is hop-bounded and **disjoint from the kept
///   cover** (otherwise it would not be residual); and
/// * the residual really is *all* that is missing: re-covering every
///   residual vertex on top of the kept cover passes the independent
///   verifier.
fn audit_budgeted_report(
    label: &str,
    g: &CsrGraph,
    report: &tdb_core::CoverReport,
    budget: Budget,
    costs: &CostModel,
    check: &HopConstraint,
) {
    match budget {
        Budget::None => {}
        Budget::MaxVertices(n) => assert!(
            report.cover_size() <= n,
            "{label}: {} vertices exceed the MaxVertices({n}) cap",
            report.cover_size()
        ),
        Budget::MaxCost(cap) => assert!(
            report.total_cost <= cap,
            "{label}: cost {} exceeds the MaxCost({cap}) cap",
            report.total_cost
        ),
    }
    assert_eq!(
        report.total_cost,
        costs.total(report.cover.iter()),
        "{label}: total_cost must be the model's sum over the kept cover"
    );

    let verification = verify_cover(g, &report.cover, check);
    assert_eq!(
        report.exhausted, !verification.is_valid,
        "{label}: exhausted must mean exactly 'the kept cover is incomplete'"
    );
    assert_eq!(
        report.residual.is_empty(),
        !report.exhausted,
        "{label}: residual cycles and the exhausted flag must agree"
    );
    assert!(
        report.residual.len() < DEFAULT_RESIDUAL_CAP,
        "{label}: test graphs must stay below the residual cap for a complete audit"
    );

    let mut patched = report.cover.clone();
    for cycle in &report.residual {
        assert!(
            check.covers_len(cycle.len()),
            "{label}: residual cycle {cycle:?} violates the hop bound"
        );
        for &v in cycle {
            assert!(
                !report.cover.contains(v),
                "{label}: residual cycle {cycle:?} passes through kept breaker {v}"
            );
            patched.insert(v);
        }
    }
    // Completeness: the residual listed *every* escaped cycle, so covering
    // all of their vertices must restore validity.
    assert!(
        verify_cover(g, &patched, check).is_valid,
        "{label}: covering every residual vertex must yield a valid cover"
    );
}

/// Budgeted solves across the graph families: caps are hard, reports are
/// self-consistent, and the residual audit passes for vertex budgets, cost
/// budgets (under skewed weights), and the unbudgeted degenerate case.
#[test]
fn budgeted_solves_respect_caps_and_residuals_audit_clean() {
    for family in families() {
        let g = &family.graph;
        let k = 4;
        let full = Solver::new(Algorithm::TdbPlusPlus)
            .solve(g, &HopConstraint::new(k))
            .unwrap();
        assert!(
            full.cover.len() >= 4,
            "{}: family too easy to exercise budgets",
            family.name
        );
        let skewed = CostModel::from_fn(g.num_vertices(), |v| 1 + u64::from(v) % 7);

        // (budget, costs, objective) scenarios, from degenerate to tight.
        let scenarios: Vec<(Budget, CostModel, Objective)> = vec![
            (Budget::None, CostModel::Uniform, Objective::MinCardinality),
            (
                Budget::MaxVertices(full.cover.len()),
                CostModel::Uniform,
                Objective::MinCardinality,
            ),
            (
                Budget::MaxVertices(full.cover.len() / 2),
                CostModel::Uniform,
                Objective::MinCardinality,
            ),
            (Budget::MaxVertices(1), skewed.clone(), Objective::MinWeight),
            (
                Budget::MaxCost(skewed.total(full.cover.iter()) / 2),
                skewed.clone(),
                Objective::MinWeight,
            ),
            (Budget::MaxCost(3), skewed.clone(), Objective::MinWeight),
        ];
        for (budget, costs, objective) in scenarios {
            let label = format!("{}/k={k}/{budget:?}/{objective:?}", family.name);
            let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, k);
            request.budget = budget;
            request.costs = costs.clone();
            request.objective = objective;
            let report = request
                .solve(g)
                .unwrap_or_else(|e| panic!("{label}: budgeted solve failed: {e}"));
            audit_budgeted_report(&label, g, &report, budget, &costs, &request.constraint());
        }

        // A generous vertex budget is a no-op: same cover as the plain solve.
        let mut roomy = CoverRequest::new(Algorithm::TdbPlusPlus, k);
        roomy.budget = Budget::MaxVertices(full.cover.len());
        let report = roomy.solve(g).unwrap();
        assert_eq!(
            report.cover, full.cover,
            "{}: a budget the cover fits under must not change it",
            family.name
        );
        assert!(!report.exhausted);
    }
}

/// The kit must catch what it claims to catch: a cover with one vertex
/// removed fails validation, a cover with one extra vertex fails minimality.
#[test]
fn differential_oracle_detects_broken_covers() {
    let g = multi_scc_instance(23);
    let constraint = HopConstraint::new(4);
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .unwrap();
    assert!(!run.cover.is_empty());

    let mut too_small = run.cover.clone();
    let dropped = too_small.iter().next().unwrap();
    too_small.remove(dropped);
    assert!(
        !verify_cover(&g, &too_small, &constraint).is_valid,
        "removing cover vertex {dropped} must expose a cycle"
    );

    let mut too_big = run.cover.clone();
    let extra = (0..g.num_vertices() as VertexId)
        .find(|&v| !too_big.contains(v))
        .expect("some vertex is uncovered");
    too_big.insert(extra);
    let v = verify_cover(&g, &too_big, &constraint);
    assert!(v.is_valid);
    assert!(
        !v.is_minimal,
        "vertex {extra} was added gratuitously and must be reported redundant"
    );
}
