//! The cross-algorithm differential test kit — the reusable oracle for
//! future refactors.
//!
//! A deterministic scenario matrix
//! `graph family × hop bound × algorithm × sharding on/off × two-cycle mode`
//! is solved through the unified [`Solver`] API, and every configuration is
//! held to the properties the crate documents:
//!
//! * every cover is **valid** (verified independently by
//!   `tdb_core::verify`);
//! * algorithms that guarantee minimality (`BUR+` via Algorithm 7, the
//!   top-down family via Theorem 7) produce **minimal** covers in the
//!   `FollowConstraint` and `Integrated` modes;
//! * the SCC-**sharded** solve returns the **same cover** as the unsharded
//!   one (the partition argument: every constrained cycle lives inside one
//!   SCC, and the extraction's id remap is monotone);
//! * the **top-down variants** (`TDB`, `TDB+`, `TDB++`, `TDB++X`,
//!   `TDB++/par`) return **identical covers** — the filters only skip work,
//!   never change decisions (paper §VII-B).
//!
//! The whole matrix is also written to `target/differential/matrix.md` so CI
//! can publish it as a build artifact: a refactor that shifts any cover size
//! shows up as a diff of that table even before an assertion trips.

use std::fmt::Write as _;

use tdb::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::gen::{
    erdos_renyi_gnm, multi_scc_chain, preferential_attachment, small_world, MultiSccConfig,
    PreferentialConfig,
};

/// One graph family instance of the matrix, seeded and deterministic.
struct Family {
    name: &'static str,
    graph: CsrGraph,
}

/// A medium multi-SCC instance: three ring-plus-chords blocks of different
/// sizes chained by one-way bridges, plus an acyclic tail.
fn multi_scc_instance(seed: u64) -> CsrGraph {
    multi_scc_chain(&MultiSccConfig {
        component_sizes: vec![14, 10, 7],
        chords_per_component: vec![42, 30, 21],
        tail_len: 2,
        seed,
    })
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "erdos-renyi",
            graph: erdos_renyi_gnm(40, 170, 7),
        },
        Family {
            name: "preferential",
            graph: preferential_attachment(&PreferentialConfig {
                num_vertices: 50,
                out_degree: 3,
                reciprocity: 0.35,
                random_rewire: 0.1,
                seed: 11,
            }),
        },
        Family {
            name: "small-world",
            graph: small_world(40, 2, 0.25, 9),
        },
        Family {
            name: "multi-scc",
            graph: multi_scc_instance(23),
        },
    ]
}

const HOP_BOUNDS: [usize; 2] = [3, 5];
const TWO_CYCLE_MODES: [TwoCycleMode; 3] = [
    TwoCycleMode::FollowConstraint,
    TwoCycleMode::Integrated,
    TwoCycleMode::Separate,
];

/// Whether this algorithm guarantees a minimal cover in this two-cycle mode.
///
/// `BUR` skips the Algorithm-7 pruning pass by definition; `DARC-DV` maps an
/// edge-minimal line-graph transversal to vertices, which is not
/// vertex-minimal; and the `Separate` mode unions two independently minimal
/// covers, which the solver documents as possibly oversized.
fn guarantees_minimal(algorithm: Algorithm, mode: TwoCycleMode) -> bool {
    !matches!(algorithm, Algorithm::Bur | Algorithm::DarcDv) && mode != TwoCycleMode::Separate
}

/// The constraint a cover produced under `mode` must actually satisfy.
fn effective_constraint(k: usize, mode: TwoCycleMode) -> HopConstraint {
    match mode {
        TwoCycleMode::FollowConstraint => HopConstraint::new(k),
        TwoCycleMode::Integrated | TwoCycleMode::Separate => HopConstraint::with_two_cycles(k),
    }
}

fn mode_label(mode: TwoCycleMode) -> &'static str {
    match mode {
        TwoCycleMode::FollowConstraint => "plain",
        TwoCycleMode::Integrated => "2cyc-integrated",
        TwoCycleMode::Separate => "2cyc-separate",
    }
}

/// Run the full matrix, assert every documented property, and return the
/// markdown summary.
fn run_matrix() -> String {
    let mut summary = String::from(
        "# Differential matrix\n\n\
         Cover sizes per (graph family, k, two-cycle mode, algorithm), \
         unsharded vs sharded.\n\n\
         | family | k | mode | algorithm | unsharded | sharded | valid | minimal |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for family in families() {
        let g = &family.graph;
        for k in HOP_BOUNDS {
            for mode in TWO_CYCLE_MODES {
                let constraint = HopConstraint::new(k);
                let check = effective_constraint(k, mode);
                let mut top_down_reference: Option<CycleCover> = None;
                for algorithm in Algorithm::all() {
                    let label = format!("{}/k={k}/{}/{algorithm}", family.name, mode_label(mode));
                    let plain = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| panic!("{label}: unsharded solve failed: {e}"));
                    let sharded = Solver::new(algorithm)
                        .with_two_cycle_mode(mode)
                        .with_sharding(ShardingMode::Threads(3))
                        .solve(g, &constraint)
                        .unwrap_or_else(|e| panic!("{label}: sharded solve failed: {e}"));

                    // Sharded must reproduce the unsharded cover exactly: the
                    // default scan order is ascending and the extraction's id
                    // remap is monotone.
                    assert_eq!(
                        sharded.cover, plain.cover,
                        "{label}: sharded cover differs from unsharded"
                    );

                    let verification = verify_cover(g, &plain.cover, &check);
                    assert!(
                        verification.is_valid,
                        "{label}: invalid cover, witness {:?}",
                        verification.witness
                    );
                    let minimal_required = guarantees_minimal(algorithm, mode);
                    if minimal_required {
                        assert!(
                            verification.is_minimal,
                            "{label}: non-minimal cover, redundant {:?}",
                            verification.redundant
                        );
                    }

                    // The top-down variants must agree vertex-for-vertex.
                    if matches!(
                        algorithm,
                        Algorithm::Tdb
                            | Algorithm::TdbPlus
                            | Algorithm::TdbPlusPlus
                            | Algorithm::TdbExtended
                            | Algorithm::TdbParallel
                    ) {
                        match &top_down_reference {
                            None => top_down_reference = Some(plain.cover.clone()),
                            Some(reference) => assert_eq!(
                                &plain.cover, reference,
                                "{label}: top-down variants must produce identical covers"
                            ),
                        }
                    }

                    writeln!(
                        summary,
                        "| {} | {k} | {} | {algorithm} | {} | {} | yes | {} |",
                        family.name,
                        mode_label(mode),
                        plain.cover.len(),
                        sharded.cover.len(),
                        if minimal_required {
                            "yes"
                        } else if verification.is_minimal {
                            "yes*"
                        } else {
                            "n/a"
                        },
                    )
                    .expect("writing to a String cannot fail");
                }
            }
        }
    }
    summary.push_str(
        "\n`yes*` = minimal in this run though the configuration does not guarantee it.\n",
    );
    summary
}

#[test]
fn differential_matrix_holds_across_all_configurations() {
    let summary = run_matrix();
    // Publish the matrix for the CI artifact; failure to write is not a test
    // failure (read-only checkouts still validate everything above).
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/target/differential");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = format!("{dir}/matrix.md");
        if let Err(e) = std::fs::write(&path, &summary) {
            eprintln!("note: could not write {path}: {e}");
        }
    }
    // 4 families x 2 hop bounds x 3 modes x 8 algorithms data rows, plus the
    // header row (the `|---|` separator does not start with a pipe + space).
    let rows = summary.lines().filter(|l| l.starts_with("| ")).count();
    assert_eq!(rows, 4 * 2 * 3 * 8 + 1, "matrix data rows + header");
}

/// The kit must catch what it claims to catch: a cover with one vertex
/// removed fails validation, a cover with one extra vertex fails minimality.
#[test]
fn differential_oracle_detects_broken_covers() {
    let g = multi_scc_instance(23);
    let constraint = HopConstraint::new(4);
    let run = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .unwrap();
    assert!(!run.cover.is_empty());

    let mut too_small = run.cover.clone();
    let dropped = too_small.iter().next().unwrap();
    too_small.remove(dropped);
    assert!(
        !verify_cover(&g, &too_small, &constraint).is_valid,
        "removing cover vertex {dropped} must expose a cycle"
    );

    let mut too_big = run.cover.clone();
    let extra = (0..g.num_vertices() as VertexId)
        .find(|&v| !too_big.contains(v))
        .expect("some vertex is uncovered");
    too_big.insert(extra);
    let v = verify_cover(&g, &too_big, &constraint);
    assert!(v.is_valid);
    assert!(
        !v.is_minimal,
        "vertex {extra} was added gratuitously and must be reported redundant"
    );
}
