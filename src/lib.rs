//! # tdb — breaking all hop-constrained cycles in billion-scale directed graphs
//!
//! A Rust implementation of the algorithms from *"TDB: Breaking All
//! Hop-Constrained Cycles in Billion-Scale Directed Graphs"* (ICDE 2023):
//! computing a small, minimal set of vertices that intersects every simple
//! cycle of length at most `k` in a directed graph.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! * [`graph`] (`tdb-graph`) — the directed-graph substrate: CSR storage,
//!   builders, activation masks, generators, I/O, line graph, SCC.
//! * [`cycle`] (`tdb-cycle`) — hop-constrained cycle search primitives: naive
//!   DFS, block/barrier DFS, BFS filter, bounded enumeration.
//! * [`core`] (`tdb-core`) — the cover algorithms (`BUR`, `BUR+`, `DARC-DV`,
//!   `TDB`, `TDB+`, `TDB++`, parallel extension) behind the unified
//!   [`Solver`](tdb_core::Solver) API, and the verifier.
//! * [`dynamic`] (`tdb-dynamic`) — incremental cover maintenance over
//!   streaming edge updates: a [`DeltaGraph`](tdb_graph::DeltaGraph) overlay
//!   plus the [`DynamicCover`](tdb_dynamic::DynamicCover) engine, reached
//!   through [`SolveDynamic::solve_dynamic`](tdb_dynamic::SolveDynamic).
//! * [`serve`] (`tdb-serve`) — a resident cover service: one writer thread
//!   batches updates through the dynamic engine and publishes immutable
//!   epoch-stamped snapshots, served to concurrent readers over a line-based
//!   TCP protocol ([`CoverServer`](tdb_serve::CoverServer) /
//!   [`ServeClient`](tdb_serve::ServeClient)).
//! * [`obs`] (`tdb-obs`) — zero-dependency observability: a process-global
//!   metrics registry (atomic counters, gauges, log2-bucket latency
//!   histograms with a Prometheus text exposition), a span tracer that
//!   exports Chrome trace-event JSON, and a structured flight recorder
//!   (`event!`) with request-id correlation — wired through the solver
//!   phases, the dynamic engine, and the serve protocol's `METRICS` /
//!   `HEALTH?` verbs and HTTP exposition endpoints.
//! * [`datasets`] (`tdb-datasets`) — the paper's Table II catalog and synthetic
//!   proxy synthesis.
//!
//! ## Quickstart
//!
//! Every algorithm is reached through one entry point: pick an
//! [`Algorithm`](tdb_core::Algorithm), build a [`Solver`](tdb_core::Solver),
//! and solve any graph.
//!
//! ```
//! use tdb::prelude::*;
//!
//! // A small transaction graph with two short money-flow cycles.
//! let graph = tdb::graph::builder::graph_from_edges(&[
//!     (0, 1), (1, 2), (2, 0),       // a -> b -> c -> a
//!     (2, 3), (3, 4), (4, 2),       // c -> d -> e -> c
//!     (4, 5),                        // dead end
//! ]);
//!
//! let constraint = HopConstraint::new(5);
//! let run = Solver::new(Algorithm::TdbPlusPlus)
//!     .solve(&graph, &constraint)
//!     .unwrap();
//!
//! // Vertex 2 sits on both cycles, so one vertex suffices.
//! assert_eq!(run.cover_size(), 1);
//! assert!(verify_cover(&graph, &run.cover, &constraint).is_valid_and_minimal());
//! ```
//!
//! A solver is configured once and reused: scan order, worker threads, a
//! wall-clock budget, 2-cycle handling (`with_two_cycles`, Table IV mode),
//! and SCC sharding (`with_sharding` — solve every strongly connected
//! component as an independent concurrent shard, exactly reproducing the
//! unsharded cover) all hang off the builder, and a budgeted solve returns
//! [`SolveError::BudgetExceeded`](tdb_core::SolveError) instead of running
//! unbounded.
//!
//! ## Streaming
//!
//! For live workloads, the same solver seeds an incrementally maintained
//! cover: edge insertions repair the cover by searching only for cycles
//! through the new edge, removals defer re-minimization, and the cover is
//! valid after every update.
//!
//! ```
//! use tdb::prelude::*;
//!
//! let graph = tdb::graph::gen::erdos_renyi_gnm(500, 2_000, 7);
//! let constraint = HopConstraint::new(4);
//! let mut live = Solver::new(Algorithm::TdbPlusPlus)
//!     .solve_dynamic(graph, &constraint)
//!     .unwrap();
//!
//! let mut batch = EdgeBatch::new();
//! batch.insert(0, 99).insert(99, 0).remove(0, 1);
//! let metrics = live.apply(&batch);
//! assert!(metrics.updates() >= 2);
//! assert!(live.is_valid());
//! ```
//!
//! ## Serving
//!
//! For deployments where many consumers query the cover while it is being
//! maintained, [`serve`] wraps the dynamic engine in a resident server:
//! updates stream through a single writer, every applied batch publishes an
//! immutable snapshot under a fresh epoch, and any number of readers answer
//! `COVER?` / `BREAKERS?` queries against the published snapshot without ever
//! blocking on the update path (see `examples/serve_demo.rs`).
//!
//! See `examples/` for end-to-end scenarios (fraud detection on an e-commerce
//! network, deadlock-potential analysis of a lock graph, clocked-register
//! placement in circuit design) and `crates/bench` for the harness that
//! regenerates every table and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tdb_core as core;
pub use tdb_cycle as cycle;
pub use tdb_datasets as datasets;
pub use tdb_dynamic as dynamic;
pub use tdb_graph as graph;
pub use tdb_obs as obs;
pub use tdb_serve as serve;

/// The most commonly used items across the workspace, re-exported together.
pub mod prelude {
    pub use tdb_core::prelude::*;
    pub use tdb_cycle::HopConstraint;
    pub use tdb_dynamic::{
        DynamicConfig, DynamicCover, EdgeBatch, EdgeOp, SolveDynamic, UpdateMetrics,
    };
    pub use tdb_graph::{
        ActiveSet, CsrGraph, DeltaGraph, Graph, GraphBuilder, GraphView, VertexId,
    };
    pub use tdb_serve::{CoverServer, HealthStatus, ServeClient, ServeConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let g = crate::graph::gen::directed_cycle(4);
        let run = Solver::new(Algorithm::TdbPlusPlus)
            .solve(&g, &HopConstraint::new(4))
            .unwrap();
        assert_eq!(run.cover_size(), 1);
    }
}
