//! The dataset catalog: Table II of the paper as data.

/// Broad structural class of a dataset, used to choose the proxy generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Social / voting / communication networks (skewed in-degree, noticeable
    /// reciprocity): Wiki-Vote, Slashdot, Wiki-Talk, Flickr, LiveJournal,
    /// Twitter.
    Social,
    /// Web crawls (heavily skewed, low reciprocity, strong locality):
    /// web-NotreDame, web-Stanford, web-Google, web-BerkStan, Wikipedia links.
    Web,
    /// Internet topology / peer-to-peer overlays (flatter degree
    /// distribution): as-caida, Gnutella.
    Network,
    /// Citation graphs (near-acyclic with small cycles from cross-citations):
    /// citeseer.
    Citation,
    /// Financial / transaction networks (dense, hub-heavy, highly cyclic):
    /// prosper-loans.
    Financial,
    /// E-mail interaction graphs: Email-EuAll.
    Email,
}

/// Published statistics of one evaluation dataset (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Short code used throughout the paper's tables (e.g. `"WKV"`).
    pub code: &'static str,
    /// Full dataset name (e.g. `"Wiki-Vote"`).
    pub name: &'static str,
    /// Published vertex count.
    pub vertices: usize,
    /// Published edge count.
    pub edges: usize,
    /// Published average degree (`d_avg` column).
    pub avg_degree: f64,
    /// Structural class driving proxy synthesis.
    pub class: GraphClass,
    /// Estimated fraction of reciprocated edges used for the proxy (2-cycle
    /// density); derived from the dataset class and the Table IV growth ratios.
    pub reciprocity: f64,
    /// Whether the paper could only run TDB++ on it (the four largest graphs in
    /// Table III).
    pub large_scale: bool,
}

impl DatasetSpec {
    /// Edge/vertex ratio of the published graph.
    pub fn density(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.edges as f64 / self.vertices as f64
        }
    }
}

/// The sixteen datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Dataset {
    WikiVote,
    AsCaida,
    Gnutella31,
    EmailEuAll,
    Slashdot0902,
    WebNotreDame,
    Citeseer,
    WebStanford,
    ProsperLoans,
    WikiTalk,
    WebGoogle,
    WebBerkStan,
    Flickr,
    LiveJournal,
    Wikipedia,
    TwitterWww,
}

impl Dataset {
    /// Every dataset, in the order of Table II.
    pub fn all() -> [Dataset; 16] {
        use Dataset::*;
        [
            WikiVote,
            AsCaida,
            Gnutella31,
            EmailEuAll,
            Slashdot0902,
            WebNotreDame,
            Citeseer,
            WebStanford,
            ProsperLoans,
            WikiTalk,
            WebGoogle,
            WebBerkStan,
            Flickr,
            LiveJournal,
            Wikipedia,
            TwitterWww,
        ]
    }

    /// The twelve small/medium datasets on which the paper runs all three
    /// algorithms (Figures 6–9, the upper block of Table III).
    pub fn small_and_medium() -> Vec<Dataset> {
        Dataset::all()
            .into_iter()
            .filter(|d| !d.spec().large_scale)
            .collect()
    }

    /// The four billion-scale-class graphs only TDB++ completes (FLK, LJ, WKP,
    /// TW).
    pub fn large_scale() -> Vec<Dataset> {
        Dataset::all()
            .into_iter()
            .filter(|d| d.spec().large_scale)
            .collect()
    }

    /// The two datasets used for the technique ablations (Figures 8–10): WKV
    /// and WGO.
    pub fn ablation_pair() -> [Dataset; 2] {
        [Dataset::WikiVote, Dataset::WebGoogle]
    }

    /// Look a dataset up by its paper code (`"WKV"`, `"WGO"`, ...).
    pub fn from_code(code: &str) -> Option<Dataset> {
        Dataset::all()
            .into_iter()
            .find(|d| d.spec().code.eq_ignore_ascii_case(code))
    }

    /// The published statistics of this dataset.
    pub fn spec(&self) -> DatasetSpec {
        use GraphClass::*;
        match self {
            Dataset::WikiVote => DatasetSpec {
                code: "WKV",
                name: "Wiki-Vote",
                vertices: 7_000,
                edges: 104_000,
                avg_degree: 29.1,
                class: Social,
                reciprocity: 0.06,
                large_scale: false,
            },
            Dataset::AsCaida => DatasetSpec {
                code: "ASC",
                name: "as-caida",
                vertices: 26_000,
                edges: 107_000,
                avg_degree: 8.1,
                class: Network,
                reciprocity: 0.55,
                large_scale: false,
            },
            Dataset::Gnutella31 => DatasetSpec {
                code: "GNU",
                name: "Gnutella31",
                vertices: 63_000,
                edges: 148_000,
                avg_degree: 4.7,
                class: Network,
                reciprocity: 0.02,
                large_scale: false,
            },
            Dataset::EmailEuAll => DatasetSpec {
                code: "EU",
                name: "Email-EuAll",
                vertices: 265_000,
                edges: 420_000,
                avg_degree: 3.2,
                class: Email,
                reciprocity: 0.15,
                large_scale: false,
            },
            Dataset::Slashdot0902 => DatasetSpec {
                code: "SAD",
                name: "Slashdot0902",
                vertices: 82_000,
                edges: 948_000,
                avg_degree: 23.1,
                class: Social,
                reciprocity: 0.55,
                large_scale: false,
            },
            Dataset::WebNotreDame => DatasetSpec {
                code: "WND",
                name: "web-NotreDame",
                vertices: 325_000,
                edges: 1_500_000,
                avg_degree: 9.2,
                class: Web,
                reciprocity: 0.25,
                large_scale: false,
            },
            Dataset::Citeseer => DatasetSpec {
                code: "CT",
                name: "citeseer",
                vertices: 384_000,
                edges: 1_700_000,
                avg_degree: 9.1,
                class: Citation,
                reciprocity: 0.05,
                large_scale: false,
            },
            Dataset::WebStanford => DatasetSpec {
                code: "WST",
                name: "web-Stanford",
                vertices: 281_000,
                edges: 2_300_000,
                avg_degree: 16.4,
                class: Web,
                reciprocity: 0.25,
                large_scale: false,
            },
            Dataset::ProsperLoans => DatasetSpec {
                code: "LOAN",
                name: "prosper-loans",
                vertices: 89_000,
                edges: 3_400_000,
                avg_degree: 76.1,
                class: Financial,
                reciprocity: 0.01,
                large_scale: false,
            },
            Dataset::WikiTalk => DatasetSpec {
                code: "WIT",
                name: "Wiki-Talk",
                vertices: 2_400_000,
                edges: 5_000_000,
                avg_degree: 4.2,
                class: Social,
                reciprocity: 0.12,
                large_scale: false,
            },
            Dataset::WebGoogle => DatasetSpec {
                code: "WGO",
                name: "web-Google",
                vertices: 875_000,
                edges: 5_100_000,
                avg_degree: 11.7,
                class: Web,
                reciprocity: 0.3,
                large_scale: false,
            },
            Dataset::WebBerkStan => DatasetSpec {
                code: "WBS",
                name: "web-BerkStan",
                vertices: 685_000,
                edges: 7_600_000,
                avg_degree: 22.2,
                class: Web,
                reciprocity: 0.25,
                large_scale: false,
            },
            Dataset::Flickr => DatasetSpec {
                code: "FLK",
                name: "Flickr",
                vertices: 2_300_000,
                edges: 33_100_000,
                avg_degree: 28.8,
                class: Social,
                reciprocity: 0.45,
                large_scale: true,
            },
            Dataset::LiveJournal => DatasetSpec {
                code: "LJ",
                name: "LiveJournal",
                vertices: 10_600_000,
                edges: 112_000_000,
                avg_degree: 21.0,
                class: Social,
                reciprocity: 0.6,
                large_scale: true,
            },
            Dataset::Wikipedia => DatasetSpec {
                code: "WKP",
                name: "Wikipedia",
                vertices: 18_200_000,
                edges: 172_000_000,
                avg_degree: 18.85,
                class: Web,
                reciprocity: 0.1,
                large_scale: true,
            },
            Dataset::TwitterWww => DatasetSpec {
                code: "TW",
                name: "Twitter(WWW)",
                vertices: 41_600_000,
                edges: 1_470_000_000,
                avg_degree: 70.5,
                class: Social,
                reciprocity: 0.2,
                large_scale: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_sixteen_unique_codes() {
        let all = Dataset::all();
        assert_eq!(all.len(), 16);
        let codes: std::collections::HashSet<_> = all.iter().map(|d| d.spec().code).collect();
        assert_eq!(codes.len(), 16);
    }

    #[test]
    fn split_matches_table_three() {
        assert_eq!(Dataset::small_and_medium().len(), 12);
        let large = Dataset::large_scale();
        assert_eq!(large.len(), 4);
        let codes: Vec<&str> = large.iter().map(|d| d.spec().code).collect();
        assert_eq!(codes, vec!["FLK", "LJ", "WKP", "TW"]);
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(Dataset::from_code("WKV"), Some(Dataset::WikiVote));
        assert_eq!(Dataset::from_code("wgo"), Some(Dataset::WebGoogle));
        assert_eq!(Dataset::from_code("nope"), None);
    }

    #[test]
    fn specs_are_internally_consistent() {
        for d in Dataset::all() {
            let s = d.spec();
            assert!(s.vertices > 0 && s.edges > 0);
            assert!(s.reciprocity >= 0.0 && s.reciprocity <= 1.0);
            assert!(s.density() > 0.5, "{}: density {}", s.code, s.density());
        }
    }

    #[test]
    fn ablation_pair_is_wkv_and_wgo() {
        let pair = Dataset::ablation_pair();
        assert_eq!(pair[0].spec().code, "WKV");
        assert_eq!(pair[1].spec().code, "WGO");
    }

    #[test]
    fn twitter_is_billion_scale() {
        let tw = Dataset::TwitterWww.spec();
        assert!(tw.edges > 1_000_000_000);
        assert!(tw.large_scale);
    }
}
