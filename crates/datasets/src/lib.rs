//! # tdb-datasets
//!
//! Catalog of the sixteen real-world graphs evaluated in the TDB paper
//! (Table II) and seeded synthetic *proxy* synthesis for them.
//!
//! The original SNAP / KONECT datasets cannot be redistributed with this
//! repository and the largest of them (Twitter-WWW, 1.47 B edges) would not fit
//! a development machine anyway. The experiment harness therefore generates
//! proxies: random graphs whose vertex count, edge count, degree skew and
//! reciprocity follow the published statistics of each dataset, scaled by a
//! user-chosen factor. The substitution is documented in `DESIGN.md` §4; the
//! shape of the paper's results (which algorithm wins, by how many orders of
//! magnitude, where DARC-DV and BUR+ stop being feasible) is driven by exactly
//! the properties the proxies reproduce.
//!
//! ```
//! use tdb_datasets::{Dataset, SynthesisConfig};
//! use tdb_graph::Graph;
//!
//! let spec = Dataset::WikiVote.spec();
//! assert_eq!(spec.code, "WKV");
//! let g = tdb_datasets::synthesize(Dataset::WikiVote, &SynthesisConfig::tiny());
//! assert!(g.num_edges() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod synth;

pub use catalog::{Dataset, DatasetSpec, GraphClass};
pub use synth::{synthesize, synthesize_spec, SynthesisConfig};
