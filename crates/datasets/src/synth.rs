//! Seeded synthesis of dataset proxies.
//!
//! Each catalog entry is mapped to one of the `tdb-graph` generator families
//! according to its [`GraphClass`], with the published vertex/edge counts
//! scaled by [`SynthesisConfig::scale`]:
//!
//! * social / e-mail / financial graphs → directed preferential attachment
//!   (heavy-tailed in-degree plus class-specific reciprocity),
//! * web crawls → R-MAT (power-law with the Graph500 parameters; the vertex
//!   count is rounded up to a power of two),
//! * internet / P2P topologies → uniform `G(n, m)` with a reciprocity pass,
//! * citation graphs → a mostly-acyclic preferential graph with a small
//!   reciprocal fraction.
//!
//! The generators are deterministic in the seed, so `EXPERIMENTS.md` can quote
//! exact measured cover sizes.

use tdb_graph::gen::{
    erdos_renyi_gnm, preferential_attachment, rmat, PreferentialConfig, RmatConfig, Xoshiro256,
};
use tdb_graph::{CsrGraph, Graph, GraphBuilder};

use crate::catalog::{Dataset, DatasetSpec, GraphClass};

/// Controls how a proxy is synthesized from a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// Multiplier applied to the published vertex and edge counts. `1.0`
    /// reproduces the full published size; the default experiment harness uses
    /// much smaller factors so the whole table fits a laptop budget.
    pub scale: f64,
    /// Base RNG seed; every dataset derives its own stream from it.
    pub seed: u64,
    /// Cap on the proxy's edge budget after scaling (guards the Twitter row,
    /// whose full size would be 1.47 B edges). Reciprocation can exceed the
    /// budget by the dataset's reciprocity fraction, so the realized edge count
    /// stays within roughly 2× of this value.
    pub max_edges: usize,
    /// Hard cap on the proxy's vertex count after scaling.
    pub max_vertices: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            scale: 1.0,
            seed: 42,
            max_edges: 50_000_000,
            max_vertices: 20_000_000,
        }
    }
}

impl SynthesisConfig {
    /// A configuration producing proxies a few thousand edges large — used by
    /// unit tests and doc examples.
    pub fn tiny() -> Self {
        SynthesisConfig {
            scale: 0.01,
            seed: 42,
            max_edges: 20_000,
            max_vertices: 10_000,
        }
    }

    /// The default configuration of the experiment harness: roughly 1/20 of the
    /// published sizes, capped so the largest proxies stay around a million
    /// edges.
    pub fn harness_default() -> Self {
        SynthesisConfig {
            scale: 0.05,
            seed: 42,
            max_edges: 2_000_000,
            max_vertices: 1_000_000,
        }
    }

    /// Scale with a custom factor, keeping the other defaults.
    pub fn with_scale(scale: f64) -> Self {
        SynthesisConfig {
            scale,
            ..SynthesisConfig::default()
        }
    }

    fn target_vertices(&self, spec: &DatasetSpec) -> usize {
        ((spec.vertices as f64 * self.scale).round() as usize).clamp(16, self.max_vertices)
    }

    fn target_edges(&self, spec: &DatasetSpec) -> usize {
        ((spec.edges as f64 * self.scale).round() as usize).clamp(32, self.max_edges)
    }
}

/// Derive a per-dataset seed so that different datasets built from the same
/// base seed do not share RNG streams.
fn dataset_seed(base: u64, spec: &DatasetSpec) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for b in spec.code.bytes() {
        h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
    }
    h
}

/// Synthesize a proxy graph for a catalog dataset.
pub fn synthesize(dataset: Dataset, config: &SynthesisConfig) -> CsrGraph {
    synthesize_spec(&dataset.spec(), config)
}

/// Synthesize a proxy graph directly from a [`DatasetSpec`] (useful for custom
/// what-if rows that are not in the catalog).
pub fn synthesize_spec(spec: &DatasetSpec, config: &SynthesisConfig) -> CsrGraph {
    let n = config.target_vertices(spec);
    let m = config.target_edges(spec);
    let seed = dataset_seed(config.seed, spec);
    match spec.class {
        GraphClass::Social | GraphClass::Email | GraphClass::Financial => {
            let out_degree = (m as f64 / n as f64).round().max(1.0) as usize;
            preferential_attachment(&PreferentialConfig {
                num_vertices: n,
                out_degree,
                reciprocity: spec.reciprocity,
                random_rewire: 0.15,
                seed,
            })
        }
        GraphClass::Web => {
            let scale_log2 = (n.max(2) as f64).log2().ceil() as u32;
            rmat(&RmatConfig {
                scale: scale_log2.min(26),
                num_edges: m,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                reciprocity: spec.reciprocity,
                seed,
            })
        }
        GraphClass::Network => {
            with_reciprocity(erdos_renyi_gnm(n, m, seed), spec.reciprocity, seed)
        }
        GraphClass::Citation => {
            // Citation graphs are close to DAGs with a thin layer of mutual
            // citations: a low-reciprocity preferential graph captures both the
            // skew and the sparse cycle population.
            let out_degree = (m as f64 / n as f64).round().max(1.0) as usize;
            preferential_attachment(&PreferentialConfig {
                num_vertices: n,
                out_degree,
                reciprocity: spec.reciprocity,
                random_rewire: 0.05,
                seed,
            })
        }
    }
}

/// Add reverse edges to a fraction `reciprocity` of the edges of `g`.
fn with_reciprocity(g: CsrGraph, reciprocity: f64, seed: u64) -> CsrGraph {
    if reciprocity <= 0.0 {
        return g;
    }
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD_EF01);
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges() * 2);
    b.reserve_vertices(g.num_vertices());
    for e in g.edges() {
        b.add_edge(e.source, e.target);
        if rng.next_bool(reciprocity) {
            b.add_edge(e.target, e.source);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::metrics::graph_stats;

    #[test]
    fn tiny_proxies_exist_for_every_dataset() {
        let cfg = SynthesisConfig::tiny();
        for d in Dataset::all() {
            let g = synthesize(d, &cfg);
            assert!(g.num_vertices() >= 16, "{:?}", d);
            assert!(g.num_edges() >= 16, "{:?}", d);
            // The edge budget is soft: reciprocation may add up to the
            // dataset's reciprocity fraction on top.
            assert!(g.num_edges() <= cfg.max_edges * 2, "{:?}", d);
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let cfg = SynthesisConfig::tiny();
        let a = synthesize(Dataset::WikiVote, &cfg);
        let b = synthesize(Dataset::WikiVote, &cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
        let other_seed = SynthesisConfig {
            seed: 7,
            ..SynthesisConfig::tiny()
        };
        let c = synthesize(Dataset::WikiVote, &other_seed);
        assert!(a.num_edges() != c.num_edges() || a.edges().zip(c.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn different_datasets_get_different_streams() {
        let cfg = SynthesisConfig::tiny();
        let a = synthesize(Dataset::AsCaida, &cfg);
        let b = synthesize(Dataset::Gnutella31, &cfg);
        assert!(
            a.num_vertices() != b.num_vertices() || a.edges().zip(b.edges()).any(|(x, y)| x != y)
        );
    }

    #[test]
    fn scaling_tracks_published_ratios() {
        let spec = Dataset::Slashdot0902.spec();
        let cfg = SynthesisConfig::with_scale(0.02);
        let g = synthesize(Dataset::Slashdot0902, &cfg);
        let target_n = (spec.vertices as f64 * 0.02) as usize;
        // Preferential attachment hits the vertex target exactly and the edge
        // target within a factor ~2 (reciprocation and dedup both move it).
        assert_eq!(g.num_vertices(), target_n);
        let target_m = spec.edges as f64 * 0.02;
        let m = g.num_edges() as f64;
        assert!(
            m > target_m * 0.4 && m < target_m * 2.5,
            "m = {m}, target {target_m}"
        );
    }

    #[test]
    fn reciprocity_ordering_is_respected() {
        let cfg = SynthesisConfig {
            scale: 0.05,
            ..SynthesisConfig::tiny()
        };
        let slashdot = synthesize(Dataset::Slashdot0902, &cfg); // reciprocity 0.55
        let loans = synthesize(Dataset::ProsperLoans, &cfg); // reciprocity 0.01
        let s = graph_stats(&slashdot);
        let l = graph_stats(&loans);
        assert!(
            s.reciprocity > l.reciprocity,
            "slashdot {} vs loans {}",
            s.reciprocity,
            l.reciprocity
        );
    }

    #[test]
    fn web_proxies_have_power_of_two_vertex_budget() {
        let cfg = SynthesisConfig::tiny();
        let g = synthesize(Dataset::WebGoogle, &cfg);
        assert!(g.num_vertices().is_power_of_two());
    }

    #[test]
    fn caps_limit_the_largest_graphs() {
        let cfg = SynthesisConfig {
            scale: 1.0,
            seed: 1,
            max_edges: 10_000,
            max_vertices: 5_000,
        };
        let g = synthesize(Dataset::TwitterWww, &cfg);
        assert!(g.num_edges() <= 10_000 * 2); // reciprocity can add a few
        assert!(g.num_vertices() <= 5_000);
    }

    #[test]
    fn harness_default_produces_medium_proxies() {
        let cfg = SynthesisConfig::harness_default();
        let g = synthesize(Dataset::WikiVote, &cfg);
        assert!(g.num_vertices() >= 200);
        assert!(g.num_edges() >= 1_000);
    }
}
