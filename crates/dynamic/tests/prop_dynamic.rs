//! Property-style tests for the incremental maintenance engine: after any
//! random insert/delete sequence the dynamic cover must agree with a
//! from-scratch solve of the final graph — valid per the independent verifier,
//! minimal after re-minimization, and of comparable size.
//!
//! Deterministic random cases driven by the vendored xoshiro256** RNG replace
//! proptest (the workspace builds offline, matching `prop_core.rs`); each case
//! is reproducible from its printed seed.

use tdb_core::prelude::*;
use tdb_core::verify::verify_by_enumeration;
use tdb_dynamic::{DynamicConfig, DynamicCover, EdgeBatch, EdgeOp, SolveDynamic};
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::{CsrGraph, Graph, GraphView, VertexId};

fn random_graph(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> CsrGraph {
    graph_from_edges(&random_edge_list(rng, n, max_edges))
}

/// A random stream of insertions and removals over `n` vertices. Removals are
/// drawn from the live edge set so a meaningful fraction actually hits.
fn random_ops(rng: &mut Xoshiro256, g: &CsrGraph, n: u32, count: usize) -> Vec<EdgeOp> {
    let mut live: Vec<(VertexId, VertexId)> = g.edges().map(|e| (e.source, e.target)).collect();
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let remove = !live.is_empty() && rng.next_index(3) == 0;
        if remove {
            let idx = rng.next_index(live.len());
            let (u, v) = live.swap_remove(idx);
            ops.push(EdgeOp::Remove(u, v));
        } else {
            let u = rng.next_index(n as usize) as VertexId;
            let v = rng.next_index(n as usize) as VertexId;
            if u == v {
                continue;
            }
            live.push((u, v));
            ops.push(EdgeOp::Insert(u, v));
        }
    }
    ops
}

/// After an arbitrary update sequence, the dynamic cover is valid on the final
/// graph (checked both by the block verifier and by brute-force enumeration),
/// and after re-minimization it is minimal and within a small factor of the
/// from-scratch solver's cover size.
#[test]
fn incremental_matches_scratch_after_random_churn() {
    for case in 0..32u64 {
        let mut rng = Xoshiro256::seed_from_u64(9000 + case);
        let g = random_graph(&mut rng, 16, 50);
        let k = 3 + rng.next_index(3);
        let constraint = HopConstraint::new(k);
        let ops = random_ops(&mut rng, &g, 16, 60);

        let mut dynamic = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(g, &constraint)
            .unwrap();
        for chunk in ops.chunks(10) {
            let batch: EdgeBatch = chunk.iter().copied().collect();
            dynamic.apply(&batch);
            // The headline invariant: valid after *every* batch.
            assert!(dynamic.is_valid(), "case {case}: invalid mid-stream");
        }

        let final_graph = dynamic.materialize();
        assert!(
            verify_by_enumeration(&final_graph, dynamic.cover(), &constraint, 1_000_000).is_ok(),
            "case {case}: brute-force found an uncovered cycle"
        );

        dynamic.minimize();
        let v = verify_cover(&final_graph, dynamic.cover(), &constraint);
        assert!(v.is_valid, "case {case}: invalid after minimize");
        assert!(
            v.is_minimal,
            "case {case}: redundant after minimize: {:?}",
            v.redundant
        );

        // Size parity with a from-scratch solve. Minimal covers are not
        // unique, so exact equality is not required — but the maintained
        // cover must stay in the same league as the static solver's.
        let scratch = Solver::new(Algorithm::TdbPlusPlus)
            .solve(&final_graph, &constraint)
            .unwrap();
        assert!(
            dynamic.cover().len() <= 2 * scratch.cover_size() + 2,
            "case {case}: dynamic {} vs scratch {}",
            dynamic.cover().len(),
            scratch.cover_size()
        );
        if scratch.cover_size() == 0 {
            assert!(dynamic.cover().is_empty(), "case {case}");
        }
    }
}

/// Tearing a graph all the way down leaves an empty cover, and rebuilding it
/// edge-for-edge leaves a cover equivalent to solving the rebuilt graph.
#[test]
fn teardown_and_rebuild_round_trip() {
    for case in 0..16u64 {
        let mut rng = Xoshiro256::seed_from_u64(11_000 + case);
        let g = random_graph(&mut rng, 14, 40);
        let constraint = HopConstraint::new(4);
        let edges: Vec<(VertexId, VertexId)> = g.edges().map(|e| (e.source, e.target)).collect();

        let mut dynamic = DynamicCover::new(g, constraint);
        for &(u, v) in &edges {
            dynamic.remove_edge(u, v);
        }
        assert_eq!(dynamic.graph().edge_count(), 0, "case {case}");
        dynamic.minimize();
        assert!(
            dynamic.cover().is_empty(),
            "case {case}: empty graph, nonempty cover"
        );

        for &(u, v) in &edges {
            dynamic.insert_edge(u, v);
        }
        assert!(dynamic.is_valid(), "case {case}");
        dynamic.minimize();
        let rebuilt = dynamic.materialize();
        assert_eq!(rebuilt.num_edges(), edges.len(), "case {case}");
        let v = verify_cover(&rebuilt, dynamic.cover(), &constraint);
        assert!(v.is_valid && v.is_minimal, "case {case}");
    }
}

/// The engine behaves identically across compaction policies: compacting
/// aggressively, lazily, or never must produce the same cover trajectory.
#[test]
fn compaction_policy_does_not_change_results() {
    for case in 0..12u64 {
        let mut rng = Xoshiro256::seed_from_u64(13_000 + case);
        let g = random_graph(&mut rng, 16, 50);
        let constraint = HopConstraint::new(4);
        let ops = random_ops(&mut rng, &g, 16, 50);

        let covers: Vec<Vec<VertexId>> = [1usize, 16, usize::MAX]
            .into_iter()
            .map(|threshold| {
                let mut d = Solver::new(Algorithm::TdbPlusPlus)
                    .solve_dynamic_with_config(
                        g.clone(),
                        &constraint,
                        DynamicConfig {
                            compaction_threshold: threshold,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                for &op in &ops {
                    match op {
                        EdgeOp::Insert(u, v) => {
                            d.insert_edge(u, v);
                        }
                        EdgeOp::Remove(u, v) => {
                            d.remove_edge(u, v);
                        }
                    }
                }
                d.minimize();
                assert!(d.is_valid(), "case {case}, threshold {threshold}");
                d.cover().iter().collect()
            })
            .collect();
        assert_eq!(covers[0], covers[1], "case {case}: threshold 1 vs 16");
        assert_eq!(covers[1], covers[2], "case {case}: threshold 16 vs never");
    }
}
