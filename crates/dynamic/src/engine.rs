//! The incremental cover maintenance engine.
//!
//! # Invariants
//!
//! A [`DynamicCover`] keeps a hop-constrained cycle cover **valid after every
//! applied update** without re-solving:
//!
//! * **Insertion** of `(u, v)` can only expose constrained cycles that contain
//!   the new edge. If either endpoint is already covered there is nothing to
//!   do; otherwise the engine repeatedly runs the edge-anchored bidirectional
//!   search ([`EdgeCycleSearcher`]) on the reduced graph and *breaks* each
//!   witness by adding one of its vertices to the cover, until no uncovered
//!   cycle through the edge remains. Every other cycle of the graph was
//!   already covered, so validity is restored exactly when the loop exits.
//! * **Removal** of an edge only destroys cycles, so the cover stays valid
//!   unconditionally — but vertices may have become redundant. The engine
//!   marks the cover *dirty* and re-minimizes lazily (on demand via
//!   [`DynamicCover::minimize`], or per batch with
//!   [`DynamicConfig::auto_minimize`]) by running the paper's Algorithm 7
//!   (`tdb_core::minimal`) directly over the [`DeltaGraph`] overlay.
//!
//! Minimality is therefore *eventual*: always restorable in one
//! [`DynamicCover::minimize`] call, while validity is unconditional — the
//! property a fraud- or deadlock-detection service actually needs between
//! batches.
//!
//! The overlay is compacted back into a clean CSR once the delta exceeds a
//! threshold, keeping neighbor scans fast under sustained churn.

use std::time::Instant;

use tdb_core::minimal::{minimal_prune_candidates_with, SearchEngine};
use tdb_core::solver::{SolveContext, SolveError, SolveScratch, Solver, TwoCycleMode};
use tdb_core::{Algorithm, CycleCover, Objective, RunMetrics};
use tdb_cycle::{EdgeCycleSearcher, HopConstraint};
use tdb_graph::scc::tarjan_scc;
use tdb_graph::{ActiveSet, CostModel, CsrGraph, DeltaGraph, FixedBitSet, GraphView, VertexId};

use crate::batch::{EdgeBatch, EdgeOp, UpdateMetrics};

/// Tuning knobs of a [`DynamicCover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Compact the [`DeltaGraph`] once its overlay holds this many entries.
    /// `0` selects an automatic threshold of `max(1024, base_edges / 4)`,
    /// recomputed after every compaction.
    pub compaction_threshold: usize,
    /// After this many repairs for a single inserted edge, fall back to
    /// covering the edge's source endpoint, which breaks every remaining
    /// cycle through the edge at once. Guards against pathological inserts
    /// that thread thousands of distinct cycles.
    pub max_breakers_per_insert: usize,
    /// Re-minimize automatically at the end of every [`DynamicCover::apply`]
    /// call that left the cover dirty. Off by default: minimization costs one
    /// cycle query per cover vertex, which sustained streams amortize better
    /// on demand.
    pub auto_minimize: bool,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            compaction_threshold: 0,
            max_breakers_per_insert: 16,
            auto_minimize: false,
        }
    }
}

/// A hop-constrained cycle cover maintained incrementally under edge updates.
///
/// ```
/// use tdb_dynamic::{DynamicCover, SolveDynamic};
/// use tdb_core::{Algorithm, HopConstraint, Solver};
/// use tdb_graph::builder::graph_from_edges;
///
/// let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
/// let constraint = HopConstraint::new(4);
/// let mut dynamic = Solver::new(Algorithm::TdbPlusPlus)
///     .solve_dynamic(g, &constraint)
///     .unwrap();
/// assert_eq!(dynamic.cover().len(), 1);
///
/// // Streaming updates keep the cover valid without re-solving.
/// dynamic.insert_edge(1, 3);
/// dynamic.insert_edge(3, 0);     // new cycle 0 -> 1 -> 3 -> 0 is repaired
/// assert!(dynamic.is_valid());
/// dynamic.remove_edge(1, 2);     // cover may now be oversized ...
/// dynamic.minimize();            // ... minimal again on demand
/// assert!(dynamic.is_valid());
/// ```
#[derive(Debug)]
pub struct DynamicCover {
    graph: DeltaGraph,
    cover: CycleCover,
    constraint: HopConstraint,
    config: DynamicConfig,
    /// Complement of the cover: the reduced graph the searches run on.
    active: ActiveSet,
    searcher: EdgeCycleSearcher,
    dirty: bool,
    /// Component id per vertex as of the last [`DynamicCover::minimize`]
    /// (`None` until the first full minimize establishes the invariant that
    /// every cover vertex is non-redundant).
    components: Option<Vec<u32>>,
    /// Vertices touched since the last minimize: endpoints of applied edge
    /// updates plus every breaker added by insert repairs. Marking breakers
    /// too is what makes component-scoped minimization sound — a breaker can
    /// land on another cover vertex's witness cycle, and its mark taints that
    /// component for re-checking. Deduplicated through `dirty_mask`, so the
    /// list is bounded by the vertex count no matter how long the stream runs
    /// between minimizes.
    dirty_vertices: Vec<VertexId>,
    /// `dirty_mask[v]` mirrors membership of `v` in `dirty_vertices`.
    dirty_mask: Vec<bool>,
    /// Reusable component marks for [`DynamicCover::minimize_candidates`]
    /// (component ids of the touched vertices), sized to the component map.
    component_marks: FixedBitSet,
    /// Warm solve scratch handed to the minimize pass, so repeated minimizes
    /// reuse one set of engine allocations instead of re-allocating per call.
    solve_scratch: SolveScratch,
    /// Vertex cost model steering insert repairs: with non-uniform costs the
    /// breaker heuristic maximizes degree per unit cost instead of raw degree.
    costs: CostModel,
    totals: UpdateMetrics,
}

impl DynamicCover {
    /// Seed a dynamic cover by solving `graph` with the default static
    /// algorithm (`TDB++`).
    pub fn new(graph: CsrGraph, constraint: HopConstraint) -> Self {
        Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(graph, &constraint)
            .expect("unbudgeted solve cannot fail")
    }

    /// Wrap an existing valid cover of `graph` without re-solving.
    ///
    /// The caller asserts validity; a cover that misses a constrained cycle
    /// stays invalid until the offending region is touched by updates. Use
    /// [`DynamicCover::is_valid`] to audit.
    pub fn from_cover(graph: CsrGraph, cover: CycleCover, constraint: HopConstraint) -> Self {
        Self::from_cover_with_config(graph, cover, constraint, DynamicConfig::default())
    }

    /// [`DynamicCover::from_cover`] with explicit tuning knobs.
    pub fn from_cover_with_config(
        graph: CsrGraph,
        cover: CycleCover,
        constraint: HopConstraint,
        config: DynamicConfig,
    ) -> Self {
        let graph = DeltaGraph::new(graph);
        let n = graph.vertex_count();
        let active = cover.reduced_active_set(n);
        DynamicCover {
            searcher: EdgeCycleSearcher::new(n),
            graph,
            cover,
            constraint,
            config,
            active,
            dirty: false,
            components: None,
            dirty_vertices: Vec::new(),
            dirty_mask: vec![false; n],
            component_marks: FixedBitSet::new(0),
            solve_scratch: SolveScratch::default(),
            costs: CostModel::Uniform,
            totals: UpdateMetrics::default(),
        }
    }

    /// Attach a vertex cost model: insert repairs then pick the breaker
    /// maximizing degree per unit cost (u128 cross-multiplied, so uniform or
    /// all-equal costs reproduce the unweighted choice bit-for-bit), and
    /// [`UpdateMetrics::breaker_cost`] accumulates the cost of added breakers.
    pub fn with_vertex_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// The engine's vertex cost model ([`CostModel::Uniform`] by default).
    pub fn vertex_costs(&self) -> &CostModel {
        &self.costs
    }

    /// Total cost of the current cover under the engine's cost model.
    pub fn cover_cost(&self) -> u64 {
        self.costs.total(self.cover.iter())
    }

    /// The current cover. Valid for the current graph at every point; minimal
    /// whenever [`DynamicCover::is_dirty`] is `false`.
    pub fn cover(&self) -> &CycleCover {
        &self.cover
    }

    /// The maintained graph (base + delta).
    pub fn graph(&self) -> &DeltaGraph {
        &self.graph
    }

    /// The hop constraint being maintained.
    pub fn constraint(&self) -> &HopConstraint {
        &self.constraint
    }

    /// The engine's tuning knobs.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Whether the cover might currently be non-minimal (never invalid).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Counters accumulated since construction.
    pub fn totals(&self) -> &UpdateMetrics {
        &self.totals
    }

    /// Materialize the current graph as a clean [`CsrGraph`] (for verification
    /// or hand-off to the static solvers).
    pub fn materialize(&self) -> CsrGraph {
        self.graph.materialize()
    }

    /// Extract an immutable, self-consistent copy of the engine state — the
    /// serving layer's snapshot hook.
    ///
    /// Graph and cover are captured at the same instant, so the pair satisfies
    /// the engine's invariant: the cover is valid for exactly this graph. The
    /// copy is cheap enough to take once per update batch: the graph clone
    /// shares the CSR base by reference count ([`DeltaGraph`] overlays and the
    /// cover list are the only per-call copies), so the cost is `O(n)` vector
    /// headers plus the live delta, not `O(n + m)` adjacency.
    pub fn state(&self) -> CoverState {
        CoverState {
            graph: self.graph.clone(),
            cover_cost: self.cover_cost(),
            cover: self.cover.clone(),
            costs: self.costs.clone(),
            constraint: self.constraint,
            dirty: self.dirty,
            totals: self.totals,
        }
    }

    /// Full validity audit: does the cover intersect every constrained cycle
    /// of the *current* graph? Costs a static verification pass — meant for
    /// tests and acceptance checks, not the hot path (the engine maintains
    /// this invariant by construction).
    pub fn is_valid(&self) -> bool {
        let g = self.materialize();
        tdb_core::verify::is_valid_cover(&g, &self.cover, &self.constraint)
    }

    /// Insert the directed edge `(u, v)` and repair the cover.
    ///
    /// Returns the number of vertices added to the cover (0 for duplicate
    /// edges and for edges with a covered endpoint). The cover is valid again
    /// when this returns.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> usize {
        let start = Instant::now();
        let mut window = UpdateMetrics::default();
        let added = self.insert_inner(u, v, &mut window);
        self.maybe_compact(&mut window);
        window.elapsed = start.elapsed();
        publish_window(&window);
        self.totals.absorb(&window);
        added
    }

    /// Remove the directed edge `(u, v)`.
    ///
    /// Returns whether the edge existed. The cover remains valid; it is
    /// marked dirty for lazy re-minimization.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let start = Instant::now();
        let mut window = UpdateMetrics::default();
        let removed = self.remove_inner(u, v, &mut window);
        self.maybe_compact(&mut window);
        window.elapsed = start.elapsed();
        publish_window(&window);
        self.totals.absorb(&window);
        removed
    }

    /// Apply a batch of updates in order, returning this batch's metrics.
    ///
    /// The cover is valid after every individual operation; compaction and
    /// (optional) re-minimization are amortized across the batch.
    pub fn apply(&mut self, batch: &EdgeBatch) -> UpdateMetrics {
        let _span = tdb_obs::trace::span("dynamic/apply");
        let start = Instant::now();
        let mut window = UpdateMetrics::default();
        for op in batch {
            match op {
                EdgeOp::Insert(u, v) => {
                    self.insert_inner(u, v, &mut window);
                }
                EdgeOp::Remove(u, v) => {
                    self.remove_inner(u, v, &mut window);
                }
            }
            self.maybe_compact(&mut window);
        }
        if self.config.auto_minimize && self.dirty {
            let (removed, checked) = self.minimize_inner();
            window.pruned += removed as u64;
            window.minimize_checked += checked as u64;
        }
        window.elapsed = start.elapsed();
        tdb_obs::histogram!("tdb_dynamic_apply_seconds").record(window.elapsed);
        publish_window(&window);
        self.totals.absorb(&window);
        window
    }

    /// Re-minimize the cover (Algorithm 7 over the live overlay), clearing the
    /// dirty flag. Returns the number of vertices removed.
    ///
    /// The pass is **component-scoped**: every simple cycle lives inside one
    /// strongly connected component, so a cover vertex can only have gained
    /// or lost witness cycles if its component was touched since the last
    /// minimize. The engine tracks touched vertices (update endpoints and
    /// added breakers) and only re-examines cover vertices whose component —
    /// in the component map of the *previous* minimize — contains one, plus
    /// vertices that did not exist back then. The first call (no map yet)
    /// examines the full cover. `totals().minimize_checked` counts the
    /// vertices actually examined.
    pub fn minimize(&mut self) -> usize {
        let _span = tdb_obs::trace::span("dynamic/minimize");
        let start = Instant::now();
        let (removed, checked) = self.minimize_inner();
        let mut window = UpdateMetrics {
            pruned: removed as u64,
            minimize_checked: checked as u64,
            ..Default::default()
        };
        window.elapsed = start.elapsed();
        tdb_obs::histogram!("tdb_dynamic_minimize_seconds").record(window.elapsed);
        publish_window(&window);
        self.totals.absorb(&window);
        removed
    }

    /// Force a delta compaction regardless of the threshold.
    pub fn compact(&mut self) {
        let _span = tdb_obs::trace::span("dynamic/compact");
        self.graph.compact();
        self.totals.compactions += 1;
        tdb_obs::counter!("tdb_dynamic_compactions_total").inc();
        tdb_obs::event!(
            tdb_obs::Level::Info,
            "dynamic/compact",
            compactions = self.totals.compactions,
            edges = self.graph.edge_count(),
        );
    }

    fn insert_inner(&mut self, u: VertexId, v: VertexId, window: &mut UpdateMetrics) -> usize {
        if !self.graph.insert_edge(u, v) {
            window.noops += 1;
            return 0;
        }
        window.inserts += 1;
        self.sync_capacity();
        self.mark_dirty(u);
        self.mark_dirty(v);
        if self.cover.contains(u) || self.cover.contains(v) {
            // Every cycle through (u, v) passes through a covered endpoint.
            return 0;
        }
        let mut added = 0usize;
        loop {
            window.edge_queries += 1;
            let Some(cycle) = self.searcher.find_cycle_through_edge(
                &self.graph,
                &self.active,
                u,
                v,
                &self.constraint,
            ) else {
                break;
            };
            window.cycles_repaired += 1;
            let breaker = if added >= self.config.max_breakers_per_insert {
                u // covers the edge itself: breaks all remaining cycles at once
            } else {
                Self::pick_breaker(&self.graph, &cycle, &self.costs)
            };
            self.cover.insert(breaker);
            self.active.deactivate(breaker);
            self.mark_dirty(breaker);
            added += 1;
            window.breakers_added += 1;
            window.breaker_cost = window.breaker_cost.saturating_add(self.costs.cost(breaker));
            if breaker == u || breaker == v {
                break; // endpoint covered: nothing through (u, v) survives
            }
        }
        if added > 0 {
            // A breaker can sit on another cover vertex's witness cycle and
            // make it redundant, so minimality is no longer guaranteed.
            self.dirty = true;
        }
        added
    }

    fn remove_inner(&mut self, u: VertexId, v: VertexId, window: &mut UpdateMetrics) -> bool {
        if !self.graph.remove_edge(u, v) {
            window.noops += 1;
            return false;
        }
        window.removes += 1;
        self.mark_dirty(u);
        self.mark_dirty(v);
        // Destroying cycles never invalidates the cover, but cover vertices
        // whose every witness cycle used (u, v) are now redundant.
        if !self.cover.is_empty() {
            self.dirty = true;
        }
        true
    }

    /// The cover vertices that must be re-examined for redundancy: everything
    /// on the first call, afterwards only vertices whose component (as mapped
    /// at the previous minimize) contains a touched vertex, plus vertices
    /// newer than that map.
    ///
    /// Soundness of skipping the rest: a skipped vertex `v` was non-redundant
    /// at the previous minimize, i.e. it had a witness cycle `C` inside its
    /// then-component `P(v)`. `P(v)` containing no touched vertex means no
    /// edge incident to `P(v)` was inserted or removed (both endpoints of an
    /// intra-component edge would be marked) and no breaker landed in `P(v)`,
    /// so `C` still exists and still avoids every other cover vertex —
    /// pruning elsewhere only *removes* cover vertices, which cannot cover
    /// `C`. Hence `v` is still non-redundant.
    fn minimize_candidates(&mut self) -> Vec<VertexId> {
        let Some(map) = &self.components else {
            return self.cover.iter().collect();
        };
        // Component ids are dense in 0..map.len(), so a reusable bitset over
        // that range replaces the old per-call `HashSet<u32>`.
        let marks = &mut self.component_marks;
        marks.grow(map.len(), false);
        marks.clear_all();
        for &d in &self.dirty_vertices {
            if let Some(&c) = map.get(d as usize) {
                marks.insert(c as usize);
            }
        }
        self.cover
            .iter()
            .filter(|&v| match map.get(v as usize) {
                Some(&c) => marks.contains(c as usize),
                None => true, // vertex born after the map: always re-examine
            })
            .collect()
    }

    /// Record `v` as touched since the last minimize (idempotent).
    fn mark_dirty(&mut self, v: VertexId) {
        let idx = v as usize;
        if idx >= self.dirty_mask.len() {
            self.dirty_mask.resize(idx + 1, false);
        }
        if !self.dirty_mask[idx] {
            self.dirty_mask[idx] = true;
            self.dirty_vertices.push(v);
        }
    }

    fn minimize_inner(&mut self) -> (usize, usize) {
        // Nothing happened since the map was last refreshed: skip the SCC
        // pass entirely (a periodic minimize tick on a quiet stream must be
        // free). The first minimize (no map yet) always runs in full, which
        // is what handles caller-supplied covers of unknown minimality.
        if self.components.is_some() && !self.dirty && self.dirty_vertices.is_empty() {
            return (0, 0);
        }
        let candidates = self.minimize_candidates();
        let mut metrics = RunMetrics::new(
            "dynamic-minimize",
            self.constraint.max_hops,
            self.constraint.include_two_cycles,
        );
        let mut ctx = SolveContext::new();
        ctx.restore_scratch(std::mem::take(&mut self.solve_scratch));
        let removed = minimal_prune_candidates_with(
            &self.graph,
            &mut self.cover,
            &candidates,
            &self.constraint,
            SearchEngine::Block,
            &mut metrics,
            &mut ctx,
        )
        .unwrap_or_else(|e: SolveError| unreachable!("unbudgeted pruning cannot fail: {e}"));
        self.solve_scratch = ctx.take_scratch();
        self.active = self.cover.reduced_active_set(self.graph.vertex_count());
        self.dirty = false;
        // Refresh the component map for the next round and forget the dirt it
        // has now accounted for.
        self.components = Some(tarjan_scc(&self.graph).component);
        for &v in &self.dirty_vertices {
            self.dirty_mask[v as usize] = false;
        }
        self.dirty_vertices.clear();
        (removed, candidates.len())
    }

    /// Breaker heuristic: the vertex of the witness cycle with the highest
    /// degree per unit cost. Hubs sit on many cycles, so covering them
    /// preempts future repairs — the same bias the static top-down scan
    /// exhibits on skewed graphs — while the cost divisor steers repairs away
    /// from expensive vertices under a [`CostModel::PerVertex`] model.
    /// Deterministic: the comparison is the u128 cross-multiplication
    /// `deg(x) * cost(best) > deg(best) * cost(x)`, which with all-equal
    /// costs reduces to the strict `deg(x) > deg(best)` of the unweighted
    /// engine, so ties still resolve to the earliest cycle position.
    fn pick_breaker(graph: &DeltaGraph, cycle: &[VertexId], costs: &CostModel) -> VertexId {
        let mut best = cycle[0];
        let mut best_deg = (graph.out_deg(best) + graph.in_deg(best)) as u128;
        let mut best_cost = costs.cost(best) as u128;
        for &x in &cycle[1..] {
            let deg = (graph.out_deg(x) + graph.in_deg(x)) as u128;
            let cost = costs.cost(x) as u128;
            if deg * best_cost > best_deg * cost {
                best = x;
                best_deg = deg;
                best_cost = cost;
            }
        }
        best
    }

    /// Grow the activation mask and searcher scratch after the graph gained
    /// vertices (cheap no-op otherwise). Extends in place: freshly minted
    /// vertices are never in the cover, so they join the mask as active.
    fn sync_capacity(&mut self) {
        let n = self.graph.vertex_count();
        self.active.ensure_len(n, true);
        self.searcher.ensure_capacity(n);
    }

    fn maybe_compact(&mut self, window: &mut UpdateMetrics) {
        let threshold = if self.config.compaction_threshold == 0 {
            (self.graph.base().edge_count() / 4).max(1024)
        } else {
            self.config.compaction_threshold
        };
        if self.graph.delta_len() >= threshold {
            let _span = tdb_obs::trace::span("dynamic/compact");
            self.graph.compact();
            window.compactions += 1;
        }
    }
}

/// Publish one update window's counts to the global metrics registry (the
/// per-engine running totals stay in `UpdateMetrics`; this mirrors them into
/// the process-wide exposition).
fn publish_window(window: &UpdateMetrics) {
    tdb_obs::counter!("tdb_dynamic_updates_total").add(window.updates());
    tdb_obs::counter!("tdb_dynamic_breakers_added_total").add(window.breakers_added);
    tdb_obs::counter!("tdb_dynamic_pruned_total").add(window.pruned);
    tdb_obs::counter!("tdb_dynamic_edge_queries_total").add(window.edge_queries);
    tdb_obs::counter!("tdb_dynamic_compactions_total").add(window.compactions);
}

/// An immutable copy of a [`DynamicCover`]'s state at one instant, produced by
/// [`DynamicCover::state`].
///
/// The graph and the cover are consistent with each other by construction —
/// the engine only hands out states between updates, never mid-repair — so a
/// holder can audit validity ([`CoverState::is_valid`]) or serve membership
/// queries against it long after the live engine has moved on.
#[derive(Debug, Clone)]
pub struct CoverState {
    /// The graph at capture time (CSR base shared, overlay copied).
    pub graph: DeltaGraph,
    /// The cover at capture time, valid for [`CoverState::graph`].
    pub cover: CycleCover,
    /// Total cover cost under the engine's cost model at capture time
    /// (equals the cover size when costs are uniform).
    pub cover_cost: u64,
    /// The engine's vertex cost model at capture time (Arc-backed, so the
    /// copy is cheap).
    pub costs: CostModel,
    /// The hop constraint the cover maintains.
    pub constraint: HopConstraint,
    /// Whether the engine considered the cover possibly non-minimal.
    pub dirty: bool,
    /// Engine counters accumulated up to the capture.
    pub totals: UpdateMetrics,
}

impl CoverState {
    /// Number of vertices of the captured graph.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges of the captured graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Full validity audit of the captured pair: does the cover intersect
    /// every constrained cycle of the captured graph? Costs a static
    /// verification pass over a materialized copy — meant for tests, sampled
    /// audits, and acceptance checks.
    pub fn is_valid(&self) -> bool {
        let g = self.graph.materialize();
        tdb_core::verify::is_valid_cover(&g, &self.cover, &self.constraint)
    }
}

/// Extension trait giving [`Solver`] a dynamic entry point.
///
/// Lives here (rather than on `Solver` itself) because `tdb-core` cannot
/// depend on this crate; importing the trait — it is in `tdb::prelude` —
/// makes `solver.solve_dynamic(graph, &constraint)` read exactly like the
/// static `solver.solve(&graph, &constraint)`.
pub trait SolveDynamic {
    /// Solve `graph` statically, then wrap graph and cover in a
    /// [`DynamicCover`] ready for streaming updates.
    fn solve_dynamic(
        &self,
        graph: CsrGraph,
        constraint: &HopConstraint,
    ) -> Result<DynamicCover, SolveError>;

    /// [`SolveDynamic::solve_dynamic`] with explicit engine tuning.
    fn solve_dynamic_with_config(
        &self,
        graph: CsrGraph,
        constraint: &HopConstraint,
        config: DynamicConfig,
    ) -> Result<DynamicCover, SolveError>;
}

impl SolveDynamic for Solver {
    fn solve_dynamic(
        &self,
        graph: CsrGraph,
        constraint: &HopConstraint,
    ) -> Result<DynamicCover, SolveError> {
        self.solve_dynamic_with_config(graph, constraint, DynamicConfig::default())
    }

    fn solve_dynamic_with_config(
        &self,
        graph: CsrGraph,
        constraint: &HopConstraint,
        config: DynamicConfig,
    ) -> Result<DynamicCover, SolveError> {
        let run = self.solve(&graph, constraint)?;
        // A solver in a 2-cycle mode (`with_two_cycles` / `TwoCycleMode`)
        // seeds a cover for lengths 2..=k even when the caller passed a plain
        // constraint. The engine must maintain what the seed actually covers,
        // or the first update would silently drop the Table IV semantics
        // (insert repairs skipping new 2-cycles, minimize stripping vertices
        // that only break 2-cycles).
        let maintained = match self.two_cycle_mode() {
            TwoCycleMode::FollowConstraint => *constraint,
            TwoCycleMode::Integrated | TwoCycleMode::Separate => {
                HopConstraint::with_two_cycles(constraint.max_hops)
            }
        };
        // Mirror the static solver's gating: the engine goes weight-aware
        // exactly when the seeding solve did.
        let costs = if self.objective() == Objective::MinWeight {
            self.costs().clone()
        } else {
            CostModel::Uniform
        };
        Ok(
            DynamicCover::from_cover_with_config(graph, run.cover, maintained, config)
                .with_vertex_costs(costs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::verify::verify_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_cycle, erdos_renyi_gnm};
    use tdb_graph::Graph;

    fn seeded(g: CsrGraph, k: usize) -> DynamicCover {
        DynamicCover::new(g, HopConstraint::new(k))
    }

    #[test]
    fn insertion_exposing_a_cycle_is_repaired() {
        // A path 0 -> 1 -> 2: no cycles, empty cover.
        let mut d = seeded(graph_from_edges(&[(0, 1), (1, 2)]), 4);
        assert!(d.cover().is_empty());
        assert_eq!(
            d.insert_edge(2, 0),
            1,
            "closing the triangle needs a breaker"
        );
        assert!(d.is_valid());
        assert_eq!(d.cover().len(), 1);
        // Duplicate insert is a no-op.
        assert_eq!(d.insert_edge(2, 0), 0);
        assert_eq!(d.totals().noops, 1);
    }

    #[test]
    fn covered_endpoint_makes_insertion_free() {
        let mut d = seeded(directed_cycle(3), 4);
        let covered = d.cover().iter().next().unwrap();
        // Any new edge touching the covered vertex cannot expose a cycle.
        let far = (covered + 1) % 3;
        assert_eq!(d.insert_edge(far, covered), 0);
        assert_eq!(d.totals().edge_queries, 0, "no search should run");
        assert!(d.is_valid());
    }

    #[test]
    fn removal_keeps_validity_and_minimize_restores_minimality() {
        // Two triangles sharing vertex 2.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let mut d = seeded(g, 4);
        assert_eq!(d.cover().len(), 1, "shared vertex 2 covers both");
        // Removing an edge of the first triangle cannot invalidate.
        assert!(d.remove_edge(0, 1));
        assert!(d.is_valid());
        assert!(d.is_dirty());
        // Now only the second triangle remains; vertex 2 is still needed.
        assert_eq!(d.minimize(), 0);
        assert!(!d.is_dirty());
        // Removing the second triangle's edge leaves no cycles at all.
        assert!(d.remove_edge(3, 4));
        assert_eq!(d.minimize(), 1, "the lone cover vertex is now redundant");
        assert!(d.cover().is_empty());
        assert!(d.is_valid());
    }

    #[test]
    fn absent_removal_is_a_noop() {
        let mut d = seeded(directed_cycle(4), 4);
        assert!(!d.remove_edge(0, 2));
        assert!(!d.is_dirty());
        assert_eq!(d.totals().noops, 1);
    }

    #[test]
    fn batch_apply_tracks_metrics_and_stays_valid() {
        let mut d = seeded(graph_from_edges(&[(0, 1), (1, 2), (2, 3)]), 5);
        let mut batch = EdgeBatch::new();
        batch.insert(3, 0).insert(2, 0).remove(0, 1).insert(0, 1);
        let m = d.apply(&batch);
        assert_eq!(m.inserts + m.removes + m.noops, 4);
        assert!(m.updates() >= 3);
        assert!(d.is_valid());
        let v = verify_cover(&d.materialize(), d.cover(), d.constraint());
        assert!(v.is_valid);
    }

    #[test]
    fn auto_minimize_config_keeps_cover_minimal_per_batch() {
        let g = erdos_renyi_gnm(40, 160, 3);
        let constraint = HopConstraint::new(4);
        let mut d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic_with_config(
                g,
                &constraint,
                DynamicConfig {
                    auto_minimize: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut batch = EdgeBatch::new();
        for i in 0..20u32 {
            batch.remove(i % 40, (i * 7 + 1) % 40);
            batch.insert((i * 3) % 40, (i * 11 + 2) % 40);
        }
        d.apply(&batch);
        assert!(!d.is_dirty());
        let v = verify_cover(&d.materialize(), d.cover(), d.constraint());
        assert!(v.is_valid, "auto-minimized cover invalid");
        assert!(v.is_minimal, "auto-minimized cover not minimal");
    }

    #[test]
    fn vertex_growth_through_insertions() {
        let mut d = seeded(graph_from_edges(&[(0, 1)]), 4);
        // Grow the graph with a brand-new triangle on fresh vertex ids.
        assert_eq!(d.insert_edge(1, 7), 0);
        assert_eq!(d.insert_edge(7, 8), 0);
        let added = d.insert_edge(8, 1);
        assert_eq!(added, 1, "new cycle over grown vertices must be repaired");
        assert!(d.is_valid());
        assert_eq!(d.graph().vertex_count(), 9);
    }

    #[test]
    fn two_cycle_constraints_are_maintained() {
        let mut d = DynamicCover::new(
            graph_from_edges(&[(0, 1), (1, 2)]),
            HopConstraint::with_two_cycles(4),
        );
        assert!(d.cover().is_empty());
        assert_eq!(
            d.insert_edge(1, 0),
            1,
            "the 2-cycle {{0, 1}} needs a breaker"
        );
        assert!(d.is_valid());
    }

    #[test]
    fn compaction_threshold_triggers_and_preserves_state() {
        let g = erdos_renyi_gnm(30, 120, 5);
        let constraint = HopConstraint::new(4);
        let mut d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic_with_config(
                g,
                &constraint,
                DynamicConfig {
                    compaction_threshold: 8,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut batch = EdgeBatch::new();
        for i in 0..30u32 {
            batch.insert((i * 13 + 1) % 30, (i * 17 + 4) % 30);
        }
        let m = d.apply(&batch);
        assert!(m.compactions > 0, "threshold of 8 must have fired");
        assert!(d.graph().delta_len() < 8 + 1);
        assert!(d.is_valid());
    }

    #[test]
    fn fallback_breaker_bounds_repair_work() {
        // A dense bipartite-ish shape where inserting (hub, sink) exposes many
        // distinct cycles at once.
        let mut edges = Vec::new();
        for i in 1..=12u32 {
            edges.push((0, i)); // hub fans out
            edges.push((i, 13)); // all feed the sink
        }
        let mut d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic_with_config(
                graph_from_edges(&edges),
                &HopConstraint::new(3),
                DynamicConfig {
                    max_breakers_per_insert: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(d.cover().is_empty());
        // Closing sink -> hub exposes twelve 3-cycles; the cap forces the
        // endpoint fallback after two individual breakers.
        let added = d.insert_edge(13, 0);
        assert!(added <= 3, "cap 2 + endpoint fallback, got {added}");
        assert!(d.is_valid());
        d.minimize();
        let v = verify_cover(&d.materialize(), d.cover(), d.constraint());
        assert!(v.is_valid && v.is_minimal);
    }

    #[test]
    fn two_cycle_solver_mode_is_carried_into_maintenance() {
        // Regression: a solver in Table IV mode seeds a 2..=k cover; the
        // engine must keep maintaining 2..=k, not the caller's plain 3..=k.
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2), (2, 3)]);
        for mode in [TwoCycleMode::Integrated, TwoCycleMode::Separate] {
            let mut d = Solver::new(Algorithm::TdbPlusPlus)
                .with_two_cycle_mode(mode)
                .solve_dynamic(g.clone(), &HopConstraint::new(4))
                .unwrap();
            assert!(d.constraint().include_two_cycles, "{mode:?}");
            assert!(!d.cover().is_empty(), "{mode:?}: the 2-cycle needs cover");
            // minimize() must not strip the 2-cycle breaker...
            d.minimize();
            assert!(d.is_valid(), "{mode:?} after minimize");
            assert!(!d.cover().is_empty(), "{mode:?}: stripped by minimize");
            // ...and a freshly streamed 2-cycle (on uncovered vertices 2, 3)
            // must be repaired.
            assert_eq!(d.insert_edge(3, 2), 1, "{mode:?}: new 2-cycle ignored");
            assert!(d.is_valid(), "{mode:?} after update");
        }
    }

    #[test]
    fn minimize_is_component_scoped_after_the_first_pass() {
        // Two disjoint triangles: TDB++ covers them with {2, 5}.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let mut d = seeded(g, 4);
        assert_eq!(d.cover().as_slice(), &[2, 5]);
        // First minimize is a full pass and establishes the component map.
        assert_eq!(d.minimize(), 0);
        assert_eq!(d.totals().minimize_checked, 2);
        // Break only the second triangle: vertex 5 loses its witness, but the
        // untouched first triangle must not be re-searched.
        assert!(d.remove_edge(3, 4));
        assert_eq!(d.minimize(), 1);
        assert_eq!(
            d.totals().minimize_checked,
            3,
            "only the dirty component's cover vertex may be re-examined"
        );
        assert_eq!(d.cover().as_slice(), &[2]);
        assert!(d.is_valid());
        let v = verify_cover(&d.materialize(), d.cover(), d.constraint());
        assert!(v.is_valid && v.is_minimal);
        // A minimize with no pending dirt examines nothing at all.
        assert_eq!(d.minimize(), 0);
        assert_eq!(d.totals().minimize_checked, 3);
    }

    #[test]
    fn breaker_insertions_taint_their_component_for_minimize() {
        // Soundness regression for the component-scoped pass: a breaker added
        // by an insert repair can land on another cover vertex's witness
        // cycle; the breaker's own dirty mark must force that component to be
        // re-examined, or the stale vertex would survive minimize.
        let mut d = seeded(graph_from_edges(&[(0, 1), (1, 2), (2, 0)]), 4);
        assert_eq!(d.cover().as_slice(), &[2]);
        d.minimize(); // establish the component map
                      // Add a second triangle 0 -> 1 -> 3 -> 0 sharing the edge (0, 1):
                      // its repair picks a breaker among {0, 1, 3}, and 0 and 1 both lie on
                      // vertex 2's only witness cycle.
        assert_eq!(d.insert_edge(1, 3), 0);
        let added = d.insert_edge(3, 0);
        assert_eq!(added, 1);
        assert!(d.is_valid());
        d.minimize();
        let v = verify_cover(&d.materialize(), d.cover(), d.constraint());
        assert!(v.is_valid, "witness {:?}", v.witness);
        assert!(v.is_minimal, "redundant {:?}", v.redundant);
    }

    #[test]
    fn state_is_a_point_in_time_copy() {
        let mut d = seeded(graph_from_edges(&[(0, 1), (1, 2)]), 4);
        let before = d.state();
        assert!(before.cover.is_empty());
        assert!(before.is_valid());
        // Mutate the live engine: the captured state must not move.
        assert_eq!(d.insert_edge(2, 0), 1);
        assert!(!before.graph.contains_edge(2, 0));
        assert!(before.cover.is_empty());
        assert!(before.is_valid(), "old state audits against the old graph");
        let after = d.state();
        assert!(after.graph.contains_edge(2, 0));
        assert_eq!(after.cover.len(), 1);
        assert!(after.is_valid());
        assert_eq!(after.edge_count(), 3);
        assert_eq!(after.totals.inserts, 1);
    }

    #[test]
    fn coalesced_batch_reaches_the_same_graph() {
        let g = erdos_renyi_gnm(30, 120, 11);
        let constraint = HopConstraint::new(4);
        let mut raw = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(g.clone(), &constraint)
            .unwrap();
        let mut coalesced = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(g, &constraint)
            .unwrap();
        let mut batch = EdgeBatch::new();
        for i in 0..40u32 {
            let (u, v) = ((i * 7) % 30, (i * 13 + 1) % 30);
            if u == v {
                continue;
            }
            batch.insert(u, v);
            if i % 3 == 0 {
                batch.remove(u, v); // flap: nets out to the remove
            }
        }
        raw.apply(&batch);
        let mut thin = batch.clone();
        let dropped = thin.coalesce();
        assert!(dropped > 0);
        coalesced.apply(&thin);
        // Same final edge set either way, and both covers valid for it.
        let a = raw.materialize();
        let b = coalesced.materialize();
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
        assert!(raw.is_valid() && coalesced.is_valid());
    }

    #[test]
    fn weighted_repair_prefers_cheap_breakers() {
        // Path 0 -> 1 -> 2 with vertex 1 a hub (extra spokes raise its
        // degree). Unweighted repair of the closing edge picks the hub;
        // with the hub 100x more expensive the repair avoids it.
        let edges = &[(0, 1), (1, 2), (1, 5), (5, 1), (6, 1), (1, 6)];
        let base = || {
            let mut g: Vec<(u32, u32)> = edges.to_vec();
            g.push((3, 4)); // padding so vertex ids reach 6
            graph_from_edges(&g)
        };
        let k = HopConstraint::new(3);
        // k=3 without 2-cycles: the seed graph has no constrained cycle yet,
        // so the empty cover is valid until the closing edge arrives.
        let mut plain_cover =
            DynamicCover::from_cover(base(), CycleCover::from_vertices(vec![]), k);
        assert!(plain_cover.is_valid());
        assert_eq!(plain_cover.insert_edge(2, 0), 1);
        let unweighted_breaker = plain_cover.cover().iter().next().unwrap();
        assert_eq!(unweighted_breaker, 1, "hub wins on degree");

        let costs = CostModel::from_fn(7, |v| if v == 1 { 100 } else { 1 });
        let mut weighted = DynamicCover::from_cover(base(), CycleCover::from_vertices(vec![]), k)
            .with_vertex_costs(costs.clone());
        assert_eq!(weighted.insert_edge(2, 0), 1);
        let weighted_breaker = weighted.cover().iter().next().unwrap();
        assert_ne!(weighted_breaker, 1, "expensive hub must be avoided");
        assert!(weighted.is_valid());
        assert_eq!(weighted.totals().breaker_cost, 1);
        assert_eq!(weighted.cover_cost(), 1);
        assert_eq!(weighted.state().cover_cost, 1);

        // All-equal costs reproduce the unweighted choice bit-for-bit.
        let flat = CostModel::from_fn(7, |_| 1);
        let mut flat_cover = DynamicCover::from_cover(base(), CycleCover::from_vertices(vec![]), k)
            .with_vertex_costs(flat);
        assert_eq!(flat_cover.insert_edge(2, 0), 1);
        assert_eq!(
            flat_cover.cover().as_slice(),
            plain_cover.cover().as_slice(),
            "all-1 weights must not change the repair"
        );
    }

    #[test]
    fn solve_dynamic_threads_the_solver_cost_model() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let costs = CostModel::from_fn(3, |v| (v as u64 + 1) * 10);
        let d = Solver::new(Algorithm::TdbPlusPlus)
            .with_objective(Objective::MinWeight)
            .with_costs(costs)
            .solve_dynamic(g.clone(), &HopConstraint::new(4))
            .unwrap();
        assert!(!d.vertex_costs().is_uniform());
        // Without MinWeight the costs stay behind: uniform engine.
        let d = Solver::new(Algorithm::TdbPlusPlus)
            .with_costs(CostModel::from_fn(3, |_| 7))
            .solve_dynamic(g, &HopConstraint::new(4))
            .unwrap();
        assert!(d.vertex_costs().is_uniform());
    }

    #[test]
    fn solve_dynamic_seeds_from_any_algorithm() {
        let g = erdos_renyi_gnm(25, 100, 8);
        let constraint = HopConstraint::new(4);
        for algorithm in [
            Algorithm::BurPlus,
            Algorithm::TdbPlusPlus,
            Algorithm::DarcDv,
        ] {
            let mut d = Solver::new(algorithm)
                .solve_dynamic(g.clone(), &constraint)
                .unwrap();
            assert!(d.is_valid(), "{algorithm}");
            d.insert_edge(3, 17);
            d.insert_edge(17, 3);
            d.remove_edge(0, 1);
            assert!(d.is_valid(), "{algorithm} after updates");
        }
    }
}
