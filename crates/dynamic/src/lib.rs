//! # tdb-dynamic
//!
//! Incremental maintenance of a hop-constrained cycle cover over **streaming
//! edge updates** — the subsystem that turns the static TDB solvers into
//! something a live service can sit on.
//!
//! The workloads that motivate the paper (fraud rings in transaction
//! networks, deadlock cycles in lock graphs) are inherently streaming: edges
//! arrive and expire continuously. Re-solving from scratch on every change
//! wastes almost all of its work, because a single edge update can only
//! affect cycles *through that edge*. This crate exploits exactly that
//! locality, following the shape of customizable route-planning engines — a
//! static index plus a cheap update layer in front of it:
//!
//! * [`tdb_graph::DeltaGraph`] — a CSR base plus inserted/tombstoned edge
//!   overlays with merged neighbor iteration, compacted back into a clean CSR
//!   once the delta grows past a threshold;
//! * [`DynamicCover`] — the maintenance engine. `insert_edge` searches only
//!   for new constrained cycles through the inserted edge (a bounded
//!   bidirectional search from `tdb-cycle`) and repairs by adding breaker
//!   vertices; `remove_edge` keeps validity for free and defers minimality to
//!   a lazy re-minimization pass (`tdb_core::minimal`, the paper's
//!   Algorithm 7) run directly over the overlay;
//! * [`EdgeBatch`] / [`DynamicCover::apply`] — batched updates with
//!   per-batch [`UpdateMetrics`], amortizing compaction and re-minimization
//!   so throughput scales past per-edge bookkeeping;
//! * [`SolveDynamic`] — the entry point: any configured
//!   [`Solver`](tdb_core::Solver) (any seed [`Algorithm`](tdb_core::Algorithm))
//!   gains `solve_dynamic(graph, &constraint)`.
//!
//! **Invariant:** the cover is *valid after every applied update* — no
//! intermediate state exposes an uncovered constrained cycle. Minimality is
//! restored on demand ([`DynamicCover::minimize`]) or automatically per batch
//! ([`DynamicConfig::auto_minimize`]).
//!
//! Re-minimization is **component-scoped**: every constrained cycle lives
//! inside one strongly connected component, so only cover vertices whose
//! component was touched since the last minimize (by an update endpoint or a
//! repair breaker) can have changed redundancy status. The engine tracks the
//! touched set against the SCC map of the previous minimize and re-examines
//! just those vertices ([`UpdateMetrics::minimize_checked`] counts them) —
//! under localized churn a refresh re-checks a handful of cover vertices
//! instead of the whole cover.
//!
//! ```
//! use tdb_core::{Algorithm, HopConstraint, Solver};
//! use tdb_dynamic::{EdgeBatch, SolveDynamic};
//! use tdb_graph::gen::erdos_renyi_gnm;
//!
//! let graph = erdos_renyi_gnm(200, 800, 42);
//! let constraint = HopConstraint::new(4);
//! let mut dynamic = Solver::new(Algorithm::TdbPlusPlus)
//!     .solve_dynamic(graph, &constraint)
//!     .unwrap();
//!
//! let mut batch = EdgeBatch::new();
//! batch.insert(0, 100).insert(100, 0).remove(0, 1);
//! let metrics = dynamic.apply(&batch);
//! assert!(metrics.updates() >= 2);
//! assert!(dynamic.is_valid());
//!
//! dynamic.minimize(); // minimal again on demand
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;

pub use batch::{EdgeBatch, EdgeOp, UpdateMetrics};
pub use engine::{CoverState, DynamicConfig, DynamicCover, SolveDynamic};
