//! Edge update batches and per-batch metrics.

use std::time::Duration;

use tdb_graph::VertexId;

/// One streaming edge update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Insert the directed edge `(source, target)`.
    Insert(VertexId, VertexId),
    /// Remove the directed edge `(source, target)`.
    Remove(VertexId, VertexId),
}

impl EdgeOp {
    /// The edge endpoints `(source, target)` of the operation.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeOp::Insert(u, v) | EdgeOp::Remove(u, v) => (u, v),
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeOp::Insert(..))
    }
}

/// An ordered batch of edge updates, applied atomically with respect to the
/// cover invariant: [`crate::DynamicCover::apply`] processes the operations in
/// order and the cover is valid after every single one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    ops: Vec<EdgeOp>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// A batch holding the given operations in order.
    pub fn from_ops(ops: Vec<EdgeOp>) -> Self {
        EdgeBatch { ops }
    }

    /// Queue an already-constructed operation.
    pub fn push(&mut self, op: EdgeOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Queue an insertion.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.ops.push(EdgeOp::Insert(u, v));
        self
    }

    /// Queue a removal.
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.ops.push(EdgeOp::Remove(u, v));
        self
    }

    /// The queued operations in application order.
    pub fn ops(&self) -> &[EdgeOp] {
        &self.ops
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop all queued operations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Collapse the batch to its net effect, returning the number of
    /// operations dropped.
    ///
    /// After the batch is applied, an edge's presence is decided by the *last*
    /// operation naming it — an insert leaves it present, a removal leaves it
    /// absent — regardless of what the graph held before the batch (earlier
    /// operations on the same edge are overwritten, and
    /// [`crate::DynamicCover::apply`] treats redundant operations as no-ops).
    /// Coalescing therefore keeps exactly one operation per edge, the last
    /// one, in the order of those last occurrences:
    ///
    /// * repeated operations dedupe (`insert e, insert e` → `insert e`),
    /// * an insert/delete pair cancels down to the delete (`insert e, remove
    ///   e` → `remove e`, a pure no-op when `e` was never present), and
    ///   symmetrically a delete/insert pair to the insert.
    ///
    /// The final graph is identical to applying the raw batch, while the
    /// engine skips the intermediate repair work — in the serving layer's
    /// batching window, a flapping edge costs one operation instead of a
    /// cycle search per flap. The cover-validity guarantee is unaffected:
    /// the coalesced batch is itself applied one operation at a time.
    pub fn coalesce(&mut self) -> usize {
        use std::collections::HashMap;
        if self.ops.len() < 2 {
            return 0;
        }
        let before = self.ops.len();
        let mut last_at: HashMap<(VertexId, VertexId), usize> =
            HashMap::with_capacity(self.ops.len());
        for (idx, op) in self.ops.iter().enumerate() {
            last_at.insert(op.endpoints(), idx);
        }
        let mut idx = 0usize;
        self.ops.retain(|op| {
            let keep = last_at[&op.endpoints()] == idx;
            idx += 1;
            keep
        });
        before - self.ops.len()
    }
}

impl FromIterator<EdgeOp> for EdgeBatch {
    fn from_iter<T: IntoIterator<Item = EdgeOp>>(iter: T) -> Self {
        EdgeBatch {
            ops: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a EdgeBatch {
    type Item = EdgeOp;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, EdgeOp>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter().copied()
    }
}

/// Counters and timings for one [`crate::DynamicCover::apply`] call (also
/// accumulated across the engine's lifetime as
/// [`crate::DynamicCover::totals`]) — the streaming counterpart of
/// `tdb_core::RunMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateMetrics {
    /// Edge insertions that changed the graph.
    pub inserts: u64,
    /// Edge removals that changed the graph.
    pub removes: u64,
    /// Operations that were no-ops (duplicate insert, absent removal).
    pub noops: u64,
    /// Newly exposed constrained cycles found by the edge-anchored search.
    pub cycles_repaired: u64,
    /// Vertices added to the cover to break those cycles.
    pub breakers_added: u64,
    /// Total vertex cost of the added breakers under the engine's cost model
    /// (equals `breakers_added` when costs are uniform).
    pub breaker_cost: u64,
    /// Edge-anchored cycle queries issued (including the final miss per edge).
    pub edge_queries: u64,
    /// Vertices removed by lazy re-minimization during this window.
    pub pruned: u64,
    /// Cover vertices actually re-examined by re-minimization. The
    /// component-scoped minimize skips cover vertices whose strongly
    /// connected component saw no update, so under localized churn this stays
    /// far below the cover size.
    pub minimize_checked: u64,
    /// Delta compactions triggered.
    pub compactions: u64,
    /// Wall-clock time spent inside the engine.
    pub elapsed: Duration,
}

impl UpdateMetrics {
    /// Total graph-changing updates (`inserts + removes`).
    pub fn updates(&self) -> u64 {
        self.inserts + self.removes
    }

    /// Updates per second of engine time (`NaN` when no time was recorded).
    pub fn updates_per_sec(&self) -> f64 {
        self.updates() as f64 / self.elapsed.as_secs_f64()
    }

    /// Fold another window's counters into this accumulator.
    pub fn absorb(&mut self, other: &UpdateMetrics) {
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.noops += other.noops;
        self.cycles_repaired += other.cycles_repaired;
        self.breakers_added += other.breakers_added;
        self.breaker_cost = self.breaker_cost.saturating_add(other.breaker_cost);
        self.edge_queries += other.edge_queries;
        self.pruned += other.pruned;
        self.minimize_checked += other.minimize_checked;
        self.compactions += other.compactions;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_and_iteration() {
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).remove(2, 3).insert(1, 2);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let ops: Vec<EdgeOp> = (&batch).into_iter().collect();
        assert_eq!(
            ops,
            vec![
                EdgeOp::Insert(0, 1),
                EdgeOp::Remove(2, 3),
                EdgeOp::Insert(1, 2)
            ]
        );
        assert_eq!(ops[0].endpoints(), (0, 1));
        assert!(ops[0].is_insert());
        assert!(!ops[1].is_insert());
        batch.clear();
        assert!(batch.is_empty());
        let collected: EdgeBatch = ops.into_iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn coalesce_keeps_the_last_op_per_edge_in_order() {
        let mut batch = EdgeBatch::new();
        batch
            .insert(0, 1) // overwritten by the later remove(0, 1)
            .insert(2, 3)
            .remove(0, 1)
            .insert(2, 3) // duplicate
            .insert(4, 5)
            .remove(4, 5)
            .insert(4, 5); // flap settles on insert
        let dropped = batch.coalesce();
        assert_eq!(dropped, 4);
        assert_eq!(
            batch.ops(),
            &[
                EdgeOp::Remove(0, 1),
                EdgeOp::Insert(2, 3),
                EdgeOp::Insert(4, 5)
            ]
        );
        // Idempotent.
        assert_eq!(batch.coalesce(), 0);
    }

    #[test]
    fn coalesce_on_tiny_batches_is_a_noop() {
        let mut empty = EdgeBatch::new();
        assert_eq!(empty.coalesce(), 0);
        let mut one = EdgeBatch::new();
        one.insert(1, 2);
        assert_eq!(one.coalesce(), 0);
        assert_eq!(one.ops(), &[EdgeOp::Insert(1, 2)]);
    }

    #[test]
    fn coalesce_distinguishes_edge_directions() {
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).insert(1, 0).remove(0, 1);
        batch.coalesce();
        assert_eq!(batch.ops(), &[EdgeOp::Insert(1, 0), EdgeOp::Remove(0, 1)]);
    }

    #[test]
    fn metrics_absorb_and_rates() {
        let mut a = UpdateMetrics {
            inserts: 6,
            removes: 4,
            elapsed: Duration::from_millis(500),
            ..Default::default()
        };
        let b = UpdateMetrics {
            inserts: 10,
            breakers_added: 2,
            elapsed: Duration::from_millis(500),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.updates(), 20);
        assert_eq!(a.breakers_added, 2);
        assert!((a.updates_per_sec() - 20.0).abs() < 1e-9);
    }
}
