//! End-to-end request correlation: a slow `BREAKERS?` request must produce a
//! `serve/slow_query` flight-recorder event whose request id matches the
//! ids stamped on the snapshot-reader spans in the drained trace, and whose
//! phase breakdown names those spans.
//!
//! This file is its own test binary (one test), so it owns the process-global
//! tracer and flight recorder for its lifetime.

use std::time::Duration;

use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_dynamic::SolveDynamic;
use tdb_graph::builder::graph_from_edges;
use tdb_serve::{CoverServer, EngineConfig, ServeClient, ServeConfig};

fn str_field<'e>(event: &'e tdb_obs::event::Event, key: &str) -> Option<&'e str> {
    event.fields.iter().find_map(|(k, v)| match v {
        tdb_obs::event::Value::Str(s) if *k == key => Some(s.as_ref()),
        _ => None,
    })
}

#[test]
fn slow_breakers_event_and_reader_spans_share_one_request_id() {
    tdb_obs::trace::set_enabled(true);
    tdb_obs::event::set_enabled(true);
    let _ = tdb_obs::trace::drain();
    let _ = tdb_obs::event::drain();

    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(
            graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]),
            &HopConstraint::new(4),
        )
        .unwrap();
    let server = CoverServer::start(
        dynamic,
        ServeConfig {
            engine: EngineConfig {
                batch_window: Duration::from_millis(1),
                ..Default::default()
            },
            // Every request overruns a zero threshold: the BREAKERS? below is
            // deterministically captured as a slow query.
            slow_request_threshold: Some(Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap();

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let answer = client.breakers(0, 2).unwrap();
    assert!(!answer.breakers.is_empty(), "2 is reachable from 0");
    client.shutdown().unwrap();
    server.join();

    tdb_obs::trace::set_enabled(false);
    tdb_obs::event::set_enabled(false);
    let spans = tdb_obs::trace::drain();
    let events = tdb_obs::event::drain();

    // The slow-query record for the BREAKERS? request.
    let slow: Vec<_> = events
        .iter()
        .filter(|e| e.target == "serve/slow_query" && str_field(e, "verb") == Some("BREAKERS?"))
        .collect();
    assert_eq!(
        slow.len(),
        1,
        "exactly one slow BREAKERS? record: {slow:#?}"
    );
    let slow = slow[0];
    assert_ne!(slow.request_id, 0, "slow-query events are correlated");
    assert_eq!(str_field(slow, "args"), Some("0 2"));

    // The snapshot-reader spans for that same request carry the same id.
    let breaker_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "serve/breakers")
        .collect();
    assert_eq!(breaker_spans.len(), 1, "one BREAKERS? was served");
    assert_eq!(
        breaker_spans[0].request_id, slow.request_id,
        "the reader span and the slow-query event correlate"
    );
    for inner in ["serve/bfs_forward", "serve/bfs_backward"] {
        let span = spans
            .iter()
            .find(|s| s.name == inner)
            .unwrap_or_else(|| panic!("{inner} span recorded"));
        assert_eq!(span.request_id, slow.request_id, "{inner} correlates");
    }

    // The phase breakdown in the event names the reader span.
    let phases = str_field(slow, "phases").expect("phases field present");
    assert!(
        phases.contains("serve/breakers"),
        "breakdown lists the reader phase: {phases:?}"
    );
    assert!(
        str_field(slow, "latency_us").is_none(),
        "latency is numeric, not a string"
    );
    assert!(
        slow.fields.iter().any(|(k, _)| *k == "latency_us"),
        "latency recorded"
    );
}
