//! The snapshot-consistency property under concurrent churn.
//!
//! While writer clients stream randomized edge updates through the engine,
//! reader threads continuously sample published snapshots and check, for
//! every single sample:
//!
//! * **audit validity** — the snapshot's cover is a valid hop-constrained
//!   cover *of the snapshot's own graph version* (re-verified from scratch
//!   with the offline auditor, not trusted from the engine);
//! * **no torn reads** — the audit itself is the tear detector: a cover paired
//!   with the wrong graph version fails it, and membership answered via the
//!   snapshot agrees with the snapshot's own cover set;
//! * **monotone epochs** — the sequence of epochs any one reader observes
//!   never decreases.
//!
//! The engine is driven in-process (no TCP) so the test churns as fast as the
//! writer can apply — the transport is covered by `server_protocol.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_dynamic::{EdgeOp, SolveDynamic};
use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
use tdb_graph::VertexId;
use tdb_serve::{CoverEngine, EngineConfig};

const VERTICES: u64 = 160;
const SEED_EDGES: usize = 480;
const K: usize = 4;
const UPDATES_PER_WRITER: usize = 600;
const WRITERS: usize = 2;
const READERS: usize = 3;

fn random_op(rng: &mut Xoshiro256) -> EdgeOp {
    let u = rng.next_bounded(VERTICES) as VertexId;
    let mut v = rng.next_bounded(VERTICES - 1) as VertexId;
    if v >= u {
        v += 1; // no self-loops
    }
    // Bias towards insertions so the graph stays cyclic enough to matter.
    if rng.next_bool(0.65) {
        EdgeOp::Insert(u, v)
    } else {
        EdgeOp::Remove(u, v)
    }
}

#[test]
fn every_sampled_snapshot_is_audit_valid_with_monotone_epochs() {
    let graph = erdos_renyi_gnm(VERTICES as usize, SEED_EDGES, 0x5eed);
    let cover = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph, &HopConstraint::new(K))
        .unwrap();
    let engine = CoverEngine::start(
        cover,
        EngineConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(200),
            minimize_every: 8,
            ..Default::default()
        },
    );
    let snapshots = engine.snapshots();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let snapshots = Arc::clone(&snapshots);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut sampled = 0usize;
                let mut audited = 0usize;
                let mut rng = Xoshiro256::seed_from_u64(0xc0ffee + r as u64);
                while !done.load(Ordering::Acquire) {
                    let snap = snapshots.load();
                    let epoch = snap.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "reader {r}: epoch went backwards ({last_epoch} -> {epoch})"
                    );
                    last_epoch = epoch;
                    sampled += 1;
                    // Membership through the snapshot API agrees with the
                    // snapshot's own cover set (same immutable object — a torn
                    // view would be a pairing of different versions).
                    let probe = rng.next_bounded(VERTICES) as VertexId;
                    assert_eq!(snap.contains(probe), snap.cover().contains(probe));
                    // Full offline audit of cover-vs-graph, every sample.
                    assert!(
                        snap.audit_valid(),
                        "reader {r}: snapshot at epoch {epoch} failed the audit"
                    );
                    audited += 1;
                }
                // One last sample after the writers are done.
                let snap = snapshots.load();
                assert!(snap.epoch() >= last_epoch);
                assert!(snap.audit_valid());
                (sampled, audited)
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let queue = engine.queue();
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xdead + w as u64);
                for _ in 0..UPDATES_PER_WRITER {
                    assert!(queue.send(random_op(&mut rng)), "engine died mid-churn");
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let mut total_sampled = 0usize;
    for r in readers {
        let (sampled, audited) = r.join().unwrap();
        assert_eq!(sampled, audited, "every sampled snapshot must be audited");
        assert!(sampled > 0, "readers must observe at least one snapshot");
        total_sampled += sampled;
    }

    let cover = engine.shutdown();
    assert!(cover.is_valid(), "final engine state must be valid");
    let stats_enqueued = (WRITERS * UPDATES_PER_WRITER) as u64;
    assert!(total_sampled > 0);
    assert!(
        snapshots.epoch() >= 1,
        "churn of {stats_enqueued} ops must publish at least one new epoch"
    );
}
