//! End-to-end tests of the TCP transport: protocol round trips, update
//! visibility across epochs, concurrent clients, graceful shutdown.

use std::time::{Duration, Instant};

use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_dynamic::SolveDynamic;
use tdb_graph::builder::graph_from_edges;
use tdb_graph::{GraphView, VertexId};
use tdb_serve::{ClientError, CoverServer, EngineConfig, ServeClient, ServeConfig};

fn start_server(edges: &[(VertexId, VertexId)], k: usize) -> CoverServer {
    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(graph_from_edges(edges), &HopConstraint::new(k))
        .unwrap();
    CoverServer::start(
        dynamic,
        ServeConfig {
            engine: EngineConfig {
                batch_window: Duration::from_millis(1),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap()
}

fn wait_for_epoch(client: &mut ServeClient, at_least: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let epoch = client.stat_u64("epoch").unwrap();
        if epoch >= at_least {
            return epoch;
        }
        assert!(
            Instant::now() < deadline,
            "epoch {at_least} never published"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn cover_breakers_and_snapshot_round_trip() {
    // Two triangles sharing vertex 2: cover = {2}.
    let server = start_server(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)], 4);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    client.ping().unwrap();
    let hit = client.cover(2).unwrap();
    assert!(hit.contained);
    assert_eq!(hit.cost, 1, "uniform costs: total cost = cover size");
    assert!(!hit.exhausted, "the resident cover is always complete");
    let miss = client.cover(0).unwrap();
    assert!(!miss.contained);
    assert_eq!(hit.epoch, miss.epoch, "quiet server stays on one epoch");

    let b = client.breakers(1, 2).unwrap();
    assert_eq!(b.breakers, vec![2]);

    let explain = client.explain(2).unwrap();
    let field = |key: &str| {
        explain
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(field("vertex"), "2");
    assert_eq!(field("in_cover"), "1");
    assert_eq!(field("cost"), "1");
    assert_eq!(field("cycles"), "2", "vertex 2 breaks both triangles");
    assert_eq!(field("truncated"), "0");
    assert!(client.explain(999).is_err(), "out-of-range vertex is ERR");

    let residual = client.residual().unwrap();
    let field = |key: &str| {
        residual
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(field("count"), "0", "a healthy service has no residual");
    assert_eq!(field("truncated"), "0");

    let snap = client.snapshot().unwrap();
    let get = |key: &str| {
        snap.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(get("vertices"), "5");
    assert_eq!(get("edges"), "6");
    assert_eq!(get("cover"), "1");
    assert_eq!(get("k"), "4");

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn updates_become_visible_at_a_later_epoch() {
    let server = start_server(&[(0, 1), (1, 2)], 4);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    assert!(!client.cover(0).unwrap().contained);
    assert_eq!(client.breakers(2, 0).unwrap().breakers, vec![] as Vec<u32>);

    client.insert(2, 0).unwrap(); // closes the triangle
    wait_for_epoch(&mut client, 1);
    // Exactly one vertex of the triangle must now be covered.
    let covered: Vec<bool> = (0..3).map(|v| client.cover(v).unwrap().contained).collect();
    assert_eq!(covered.iter().filter(|&&c| c).count(), 1, "{covered:?}");
    // And BREAKERS? on the new edge implicates it.
    let b = client.breakers(2, 0).unwrap();
    assert_eq!(b.breakers.len(), 1);
    assert!(covered[b.breakers[0] as usize]);

    // Deleting an edge of the triangle leaves the cover valid (periodic
    // minimize may or may not have pruned yet — validity is the invariant).
    client.delete(0, 1).unwrap();
    let applied_target = client.stat_u64("enqueued").unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    while client.stat_u64("applied").unwrap() < applied_target {
        assert!(Instant::now() < deadline, "updates never drained");
        std::thread::sleep(Duration::from_millis(2));
    }

    client.shutdown().unwrap();
    let cover = server.join();
    assert!(cover.is_valid());
    assert!(cover.graph().contains_edge(2, 0));
    assert!(!cover.graph().contains_edge(0, 1));
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let server = start_server(&[(0, 1), (1, 0)], 4);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    // An out-of-range vertex is answered (OUT), not an error.
    assert!(!client.cover(999).unwrap().contained);
    // `BREAKERS?` with equal endpoints is legal and empty.
    assert!(client.breakers(3, 3).unwrap().breakers.is_empty());

    // Malformed input draws ERR but the connection keeps serving. Speak the
    // raw protocol over a plain TcpStream.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut lines = BufReader::new(raw.try_clone().unwrap());
    let mut say = |raw: &mut std::net::TcpStream, req: &str| {
        writeln!(raw, "{req}").unwrap();
        let mut line = String::new();
        lines.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };
    assert!(say(&mut raw, "FROBNICATE 1 2").starts_with("ERR "));
    assert!(say(&mut raw, "COVER?").starts_with("ERR "));
    assert!(say(&mut raw, "INSERT 1 not-a-number").starts_with("ERR "));
    // ...and the very same connection still answers well-formed requests.
    assert_eq!(say(&mut raw, "PING"), "OK PONG");

    assert!(client.stat_u64("errors").unwrap() >= 3);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn concurrent_clients_share_one_server() {
    let server = start_server(&[(0, 1), (1, 2), (2, 0)], 4);
    let addr = server.local_addr();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                let mut hits = 0usize;
                // 99 queries, 33 per triangle vertex — exactly one of the
                // three is covered, so every reader must count 33 hits.
                for v in 0..99u32 {
                    if c.cover(v % 3).unwrap().contained {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    for r in readers {
        assert_eq!(r.join().unwrap(), 33);
    }
    let stats = server.server_stats();
    assert!(stats.connections.load(std::sync::atomic::Ordering::Relaxed) >= 4);
    server.shutdown();
}

#[test]
fn shutdown_via_client_unblocks_join_and_later_connects_fail() {
    let server = start_server(&[(0, 1), (1, 0)], 4);
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    let cover = server.join();
    assert!(cover.is_valid());
    // The listener is gone; a fresh connect (or a request on the old
    // connection) now fails.
    let mut failed = false;
    for _ in 0..50 {
        match ServeClient::connect(addr) {
            Err(ClientError::Io(_)) => {
                failed = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(
        failed,
        "connections must stop being accepted after shutdown"
    );
}

#[test]
fn metrics_verb_serves_prometheus_exposition() {
    let server = start_server(&[(0, 1), (1, 2), (2, 0)], 4);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    // Generate some traffic so the per-verb histograms have samples and the
    // writer publishes at least one post-seed epoch.
    client.cover(2).unwrap();
    client.insert(2, 3).unwrap();
    client.insert(3, 0).unwrap();
    wait_for_epoch(&mut client, 1);
    client.stats().unwrap();

    let exposition = client.metrics().unwrap();
    // Serve-layer metrics from the engine registry.
    assert!(exposition.contains("# TYPE tdb_serve_epoch_publish_seconds histogram"));
    assert!(
        exposition.contains("tdb_serve_epoch_publish_seconds_count"),
        "epoch latency histogram present:\n{exposition}"
    );
    assert!(exposition.contains("# TYPE tdb_serve_request_seconds_cover histogram"));
    assert!(exposition.contains("tdb_serve_request_seconds_insert_count"));
    assert!(exposition.contains("tdb_serve_ops_applied_total 2"));
    // Process-global metrics: the seed solve and the dynamic repairs ran in
    // this process, so the solver and dynamic instrumentation is populated.
    assert!(exposition.contains("# TYPE tdb_solve_scan_seconds histogram"));
    assert!(exposition.contains("tdb_dynamic_apply_seconds_count"));
    assert!(exposition.contains("tdb_solves_total"));

    // The epoch latency histogram actually recorded the applied batches.
    let count_line = exposition
        .lines()
        .find(|l| l.starts_with("tdb_serve_epoch_publish_seconds_count"))
        .unwrap();
    let batches: u64 = count_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(batches >= 1, "at least one batch published: {count_line}");

    // The connection keeps working after the multi-line response.
    client.ping().unwrap();
    let hit = client.cover(2).unwrap();
    assert!(hit.contained);
    server.shutdown();
}

#[test]
fn hostile_label_values_cannot_break_metrics_framing() {
    // A label value containing the exposition's own framing header (and a
    // backslash and quote for good measure) must be escaped to a single
    // line, so the `OK METRICS <n>` line count stays truthful and the
    // connection survives the round trip.
    let server = start_server(&[(0, 1), (1, 2), (2, 0)], 4);
    let hostile = "evil\nOK METRICS 0\nERR \"quoted\\path\"";
    server
        .registry()
        .labeled_gauge("tdb_test_hostile_info", &[("origin", hostile)])
        .set(1);

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let exposition = client.metrics().unwrap();
    let line = exposition
        .lines()
        .find(|l| l.starts_with("tdb_test_hostile_info"))
        .expect("hostile gauge rendered");
    assert!(
        line.contains("\\nOK METRICS 0\\n"),
        "newlines are escaped, not emitted: {line}"
    );
    assert!(line.contains("\\\\path"), "backslashes escaped: {line}");
    assert!(line.contains("\\\"quoted"), "quotes escaped: {line}");
    assert!(
        line.ends_with("\"} 1"),
        "still one well-formed sample: {line}"
    );

    // Framing stayed intact: the connection still answers afterwards.
    client.ping().unwrap();
    assert!(client.cover(0).unwrap().contained || !exposition.is_empty());
    server.shutdown();
}
