//! The operational surfaces, exercised offline over raw sockets: the
//! HTTP/1.0 exposition endpoints (`/metrics`, `/healthz`, `/events`), the
//! `HEALTH?` verb, and the watchdog's stall classification and recovery
//! under an injected writer sleep.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_dynamic::SolveDynamic;
use tdb_graph::builder::graph_from_edges;
use tdb_serve::{
    health::reasons, CoverServer, EngineConfig, HealthConfig, ServeClient, ServeConfig,
};

fn start_server(config: ServeConfig) -> CoverServer {
    let dynamic = Solver::new(Algorithm::TdbPlusPlus)
        .solve_dynamic(
            graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]),
            &HopConstraint::new(4),
        )
        .unwrap();
    CoverServer::start(dynamic, config).unwrap()
}

/// A raw HTTP/1.0 request: returns (status code, body).
fn http_request(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(
        addr,
        &format!("GET {path} HTTP/1.0\r\nHost: test\r\nUser-Agent: offline-smoke\r\n\r\n"),
    )
}

#[test]
fn http_endpoints_serve_metrics_health_and_events() {
    tdb_obs::event::set_enabled(true);
    let server = start_server(ServeConfig {
        engine: EngineConfig {
            batch_window: Duration::from_millis(1),
            ..Default::default()
        },
        http_addr: Some("127.0.0.1:0".to_string()),
        // Zero threshold: the cover query below is recorded as a slow query,
        // so /events deterministically has at least one correlated record.
        slow_request_threshold: Some(Duration::ZERO),
        ..Default::default()
    });
    let http = server.http_addr().expect("http listener configured");

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.cover(0).unwrap();

    // /metrics: serve-layer registry, build info, and the drop counters the
    // exporter refreshes on every scrape.
    let (status, body) = http_get(http, "/metrics");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("tdb_serve_request_seconds_cover"), "{body}");
    assert!(body.contains("tdb_build_info{"), "{body}");
    assert!(body.contains("version="), "{body}");
    assert!(body.contains("tdb_process_start_time_seconds"), "{body}");
    assert!(body.contains("tdb_obs_events_dropped_total"), "{body}");
    assert!(body.contains("tdb_obs_trace_dropped_total"), "{body}");

    // /healthz: a healthy writer answers 200 ok.
    let (status, body) = http_get(http, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok"), "{body}");

    // /events: the slow cover query is visible as JSON Lines, correlated.
    let (status, body) = http_get(http, "/events");
    assert_eq!(status, 200);
    let slow_line = body
        .lines()
        .find(|l| l.contains("serve/slow_query") && l.contains("COVER?"))
        .unwrap_or_else(|| panic!("slow-query event exposed: {body}"));
    assert!(slow_line.contains("\"request\":"), "{slow_line}");
    assert!(slow_line.contains("\"latency_us\":"), "{slow_line}");

    // Unknown paths and non-GET methods are rejected, with query strings
    // ignored for routing.
    assert_eq!(http_get(http, "/nope").0, 404);
    assert_eq!(http_get(http, "/healthz?verbose=1").0, 200);
    let (status, _) = http_request(http, "POST /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 405);

    // The line protocol still works alongside the HTTP listener.
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn watchdog_classifies_an_injected_stall_and_recovers() {
    let server = start_server(ServeConfig {
        engine: EngineConfig {
            batch_window: Duration::from_millis(1),
            health: HealthConfig {
                stall_after: Duration::from_millis(50),
                ..Default::default()
            },
            ..Default::default()
        },
        http_addr: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    });
    let http = server.http_addr().unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    // Healthy at start: the writer beats on every queue tick.
    assert_eq!(client.health_status().unwrap(), "ok");
    let pairs = client.health().unwrap();
    for key in [
        "status",
        "reasons",
        "heartbeat_age_ms",
        "publish_age_ms",
        "queue_depth",
        "queue_capacity",
        "batches_since_minimize",
        "epoch",
    ] {
        assert!(
            pairs.iter().any(|(k, _)| k == key),
            "HEALTH key {key} present: {pairs:?}"
        );
    }

    // Inject a writer nap much longer than the stall threshold and wait for
    // the watchdog to notice the heartbeat aging out.
    server.inject_writer_sleep(Duration::from_millis(400));
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let pairs = client.health().unwrap();
        let status = pairs.iter().find(|(k, _)| k == "status").unwrap().1.clone();
        if status == "stalled" {
            let reasons_field = &pairs.iter().find(|(k, _)| k == "reasons").unwrap().1;
            assert!(
                reasons_field.contains(reasons::WRITER_STALLED),
                "machine-readable reason present: {pairs:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stall never classified: {pairs:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // A stalled writer turns /healthz into a 503 for load balancers.
    let (status, body) = http_get(http, "/healthz");
    if status == 503 {
        assert!(body.starts_with("stalled"), "{body}");
        assert!(body.contains(reasons::WRITER_STALLED), "{body}");
    } // else: the nap ended between the two probes; the verb check above
      // already pinned the stalled classification.

    // Clearing the nap recovers the writer: the next heartbeat flips the
    // classification back to ok without a restart.
    server.inject_writer_sleep(Duration::ZERO);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if client.health_status().unwrap() == "ok" {
            break;
        }
        assert!(Instant::now() < deadline, "writer never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) = http_get(http, "/healthz");
    assert_eq!(status, 200, "{body}");

    client.shutdown().unwrap();
    server.join();
}
