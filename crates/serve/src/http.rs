//! Standard exposition: a minimal std-only HTTP/1.0 listener so stock
//! tooling can scrape the service without speaking the line protocol.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition of the engine registry plus
//!   the process-global registry (same body as the `METRICS` verb).
//! * `GET /healthz` — `200` with the watchdog status in the body, `503` when
//!   the writer is classified `stalled`.
//! * `GET /events` — recent flight-recorder events as JSON Lines (a
//!   non-consuming peek; post-mortem drains still see everything).
//!
//! The listener mirrors the line-protocol server's shape: a nonblocking
//! accept loop polling the shared shutdown flag, one thread per connection.
//! Each connection serves exactly one request and closes (HTTP/1.0, no
//! keep-alive), so handler threads are short-lived and need no registry.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tdb_obs::Registry;

use crate::health::{HealthMonitor, HealthStatus};

/// How often the accept loop re-checks the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Per-connection socket timeout: a scraper that stalls mid-request is
/// dropped rather than pinning a handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on request-line plus header bytes read from one connection.
const MAX_REQUEST_BYTES: u64 = 16 * 1024;

/// A running exposition listener.
#[derive(Debug)]
pub(crate) struct HttpExporter {
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl HttpExporter {
    /// Bind `addr` and start serving scrapes until `shutdown` flips.
    pub(crate) fn start(
        addr: &str,
        registry: Registry,
        health: Arc<HealthMonitor>,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<HttpExporter> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let accept = std::thread::Builder::new()
            .name("tdb-serve-http".into())
            .spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let registry = registry.clone();
                            let health = Arc::clone(&health);
                            let _ = std::thread::Builder::new()
                                .name("tdb-serve-http-conn".into())
                                .spawn(move || serve_connection(stream, &registry, &health));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
            .expect("spawning the http accept thread cannot fail");
        Ok(HttpExporter {
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Join the accept loop (the shared shutdown flag must already be set).
    pub(crate) fn wind_down(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn serve_connection(stream: TcpStream, registry: &Registry, health: &HealthMonitor) {
    if stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s.take(MAX_REQUEST_BYTES),
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close, ignoring
    // errors — the response does not depend on any header.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    let response = if method != "GET" {
        http_response(
            405,
            "Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        )
    } else {
        match path.split('?').next().unwrap_or(path) {
            "/metrics" => {
                tdb_obs::export_drop_counters();
                let mut body = registry.render_prometheus();
                body.push_str(&tdb_obs::global().render_prometheus());
                http_response(200, "OK", "text/plain; version=0.0.4", &body)
            }
            "/healthz" => {
                let report = health.evaluate();
                let mut body = String::from(report.status.as_str());
                for reason in &report.reasons {
                    body.push('\n');
                    body.push_str(reason);
                }
                body.push('\n');
                match report.status {
                    HealthStatus::Stalled => {
                        http_response(503, "Service Unavailable", "text/plain", &body)
                    }
                    _ => http_response(200, "OK", "text/plain", &body),
                }
            }
            "/events" => {
                let body = tdb_obs::event::jsonl(&tdb_obs::event::recent());
                http_response(200, "OK", "application/x-ndjson", &body)
            }
            _ => http_response(404, "Not Found", "text/plain", "not found\n"),
        }
    };
    let mut writer = stream;
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

fn http_response(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_have_http_10_framing() {
        let r = http_response(200, "OK", "text/plain", "hello\n");
        assert!(r.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(r.contains("Content-Length: 6\r\n"));
        assert!(r.ends_with("\r\n\r\nhello\n"));
    }
}
