//! A small blocking client for the line protocol — used by the load
//! generator, the examples, and the integration tests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tdb_graph::VertexId;

use crate::protocol::parse_kv;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The response line did not match the expected shape.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Malformed(l) => write!(f, "malformed response: {l:?}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A `COVER?` answer: membership plus the epoch it was answered against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverAnswer {
    /// Whether the vertex is in the cover.
    pub contained: bool,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Total vertex cost of the snapshot cover (`cost=` field).
    pub cost: u64,
    /// Whether the cover is knowingly incomplete (`exhausted=` field; always
    /// `false` from the resident engine).
    pub exhausted: bool,
}

/// A `BREAKERS?` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakersAnswer {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Implicated cover vertices, ascending.
    pub breakers: Vec<VertexId>,
}

/// A blocking connection to a [`crate::CoverServer`].
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connect to a server address (e.g. the value of
    /// [`crate::CoverServer::local_addr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn round_trip(&mut self, request: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let line = line.trim_end().to_string();
        if let Some(message) = line.strip_prefix("ERR ") {
            return Err(ClientError::Server(message.to_string()));
        }
        Ok(line)
    }

    /// `COVER? v`.
    pub fn cover(&mut self, v: VertexId) -> Result<CoverAnswer, ClientError> {
        let line = self.round_trip(&format!("COVER? {v}"))?;
        let mut tok = line.split_whitespace();
        match (tok.next(), tok.next(), tok.next(), tok.next(), tok.next()) {
            (
                Some("OK"),
                Some(inout @ ("IN" | "OUT")),
                Some(epoch),
                Some(cost),
                Some(exhausted),
            ) => {
                let parse = || -> Option<CoverAnswer> {
                    Some(CoverAnswer {
                        contained: inout == "IN",
                        epoch: epoch.parse().ok()?,
                        cost: cost.strip_prefix("cost=")?.parse().ok()?,
                        exhausted: match exhausted.strip_prefix("exhausted=")? {
                            "0" => false,
                            "1" => true,
                            _ => return None,
                        },
                    })
                };
                parse().ok_or_else(|| ClientError::Malformed(line.clone()))
            }
            _ => Err(ClientError::Malformed(line)),
        }
    }

    /// `BREAKERS? u v`.
    pub fn breakers(&mut self, u: VertexId, v: VertexId) -> Result<BreakersAnswer, ClientError> {
        let line = self.round_trip(&format!("BREAKERS? {u} {v}"))?;
        let malformed = || ClientError::Malformed(line.clone());
        let mut tok = line.split_whitespace();
        if tok.next() != Some("OK") || tok.next() != Some("BREAKERS") {
            return Err(malformed());
        }
        let epoch: u64 = tok
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        let count: usize = tok
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        let breakers: Vec<VertexId> = tok
            .map(|t| t.parse::<VertexId>().map_err(|_| malformed()))
            .collect::<Result<_, _>>()?;
        if breakers.len() != count {
            return Err(malformed());
        }
        Ok(BreakersAnswer { epoch, breakers })
    }

    /// `EXPLAIN? v` — the vertex's cost and witness-cycle count, as key →
    /// value pairs (`epoch`, `vertex`, `in_cover`, `cost`, `cycles`,
    /// `truncated`).
    pub fn explain(&mut self, v: VertexId) -> Result<Vec<(String, String)>, ClientError> {
        let line = self.round_trip(&format!("EXPLAIN? {v}"))?;
        parse_kv(&line, "EXPLAIN").map_err(|e| ClientError::Malformed(format!("{e}: {line:?}")))
    }

    /// `RESIDUAL?` — uncovered-cycle audit of the published snapshot, as key
    /// → value pairs (`epoch`, `count`, `truncated`).
    pub fn residual(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let line = self.round_trip("RESIDUAL?")?;
        parse_kv(&line, "RESIDUAL").map_err(|e| ClientError::Malformed(format!("{e}: {line:?}")))
    }

    /// `INSERT u v` — acknowledged at enqueue, visible in a later epoch.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Result<(), ClientError> {
        self.expect_exact(&format!("INSERT {u} {v}"), "OK QUEUED")
    }

    /// `DELETE u v` — acknowledged at enqueue, visible in a later epoch.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Result<(), ClientError> {
        self.expect_exact(&format!("DELETE {u} {v}"), "OK QUEUED")
    }

    /// `STATS` as key → value pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let line = self.round_trip("STATS")?;
        parse_kv(&line, "STATS").map_err(|e| ClientError::Malformed(format!("{e}: {line:?}")))
    }

    /// One numeric `STATS` field (convenience over [`ServeClient::stats`]).
    pub fn stat_u64(&mut self, key: &str) -> Result<u64, ClientError> {
        let pairs = self.stats()?;
        for (k, v) in &pairs {
            if k == key {
                return v
                    .parse()
                    .map_err(|_| ClientError::Malformed(format!("{key}={v}")));
            }
        }
        Err(ClientError::Malformed(format!("missing STATS key {key:?}")))
    }

    /// `SNAPSHOT` metadata as key → value pairs.
    pub fn snapshot(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let line = self.round_trip("SNAPSHOT")?;
        parse_kv(&line, "SNAPSHOT").map_err(|e| ClientError::Malformed(format!("{e}: {line:?}")))
    }

    /// `METRICS` — the server's full Prometheus-style text exposition (serve
    /// request/epoch latency histograms plus the process-global solver and
    /// dynamic-maintenance metrics).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let header = self.round_trip("METRICS")?;
        let count: usize = header
            .strip_prefix("OK METRICS ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| ClientError::Malformed(header.clone()))?;
        let mut body = String::new();
        let mut line = String::new();
        for _ in 0..count {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-exposition",
                )));
            }
            body.push_str(line.trim_end_matches(['\r', '\n']));
            body.push('\n');
        }
        Ok(body)
    }

    /// `HEALTH?` — the watchdog's classification as key → value pairs
    /// (`status`, `reasons`, `heartbeat_age_ms`, `publish_age_ms`,
    /// `queue_depth`, `queue_capacity`, `batches_since_minimize`, `epoch`).
    pub fn health(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let line = self.round_trip("HEALTH?")?;
        parse_kv(&line, "HEALTH").map_err(|e| ClientError::Malformed(format!("{e}: {line:?}")))
    }

    /// The `status` field of [`ServeClient::health`] (convenience).
    pub fn health_status(&mut self) -> Result<String, ClientError> {
        let pairs = self.health()?;
        pairs
            .into_iter()
            .find(|(k, _)| k == "status")
            .map(|(_, v)| v)
            .ok_or_else(|| ClientError::Malformed("missing HEALTH key \"status\"".into()))
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_exact("PING", "OK PONG")
    }

    /// `SHUTDOWN` — gracefully stop the server.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_exact("SHUTDOWN", "OK BYE")
    }

    fn expect_exact(&mut self, request: &str, expected: &str) -> Result<(), ClientError> {
        let line = self.round_trip(request)?;
        if line == expected {
            Ok(())
        } else {
            Err(ClientError::Malformed(line))
        }
    }
}
