//! # tdb-serve
//!
//! A resident hop-constrained cover service: the serving layer the paper's
//! headline scenarios (fraud-ring suspension, deadlock breaking) actually
//! need. A long-lived process loads a graph once, keeps a
//! [`tdb_dynamic::DynamicCover`] fresh under a single writer thread, and
//! answers any number of concurrent read queries against **epoch-published
//! immutable snapshots**, so reads never block on the update path.
//!
//! The crate is three layers:
//!
//! * **engine** — [`CoverEngine`]: the writer loop. Incoming edge updates are
//!   collected into an [`tdb_dynamic::EdgeBatch`] over a batching window,
//!   coalesced (a flapping edge nets out to one operation), applied through
//!   `DynamicCover`, periodically re-minimized (component-scoped), and the
//!   resulting state published as the next snapshot. The update queue is
//!   bounded: a deep queue blocks producers (backpressure), never readers.
//! * **snapshot** — [`CoverSnapshot`] and [`SnapshotCell`]: the publication
//!   mechanism, plus the read-side queries (`COVER?` membership,
//!   `BREAKERS?` via two hop-bounded BFS passes, per-breaker stats).
//! * **transport** — [`CoverServer`] / [`ServeClient`]: a line-based text
//!   protocol over TCP (`COVER?`, `BREAKERS?`, `INSERT`, `DELETE`, `STATS`,
//!   `SNAPSHOT`, `METRICS`, `HEALTH?`, `PING`, `SHUTDOWN`) with graceful
//!   shutdown; grammar in [`protocol`]. Every accepted line gets a request
//!   id that stamps the spans/events recorded while serving it, and
//!   over-threshold requests land in the flight recorder as
//!   `serve/slow_query` records.
//!
//! Two operational surfaces ride on top: the [`health`] watchdog (writer
//! heartbeat, queue saturation, publish staleness, minimize cadence —
//! `HEALTH?` over the wire) and an optional std-only HTTP/1.0 listener
//! ([`ServeConfig::http_addr`]) exposing `GET /metrics`, `GET /healthz`,
//! and `GET /events` to stock scrapers.
//!
//! # Soundness of epoch publication
//!
//! Every answer the service gives is *consistent as of some recently
//! published epoch*:
//!
//! 1. **Snapshots are internally consistent.** The writer captures
//!    [`tdb_dynamic::DynamicCover::state`] only between batch applications,
//!    and the engine's invariant is that the cover is valid after every
//!    applied operation — so each snapshot's cover is a valid hop-constrained
//!    cover *of that snapshot's graph*.
//! 2. **Publication is atomic.** A snapshot is one immutable heap object
//!    behind an `Arc`; publishing swaps the pointer under a lock held for a
//!    pointer-sized critical section. A reader holds either the old object or
//!    the new one — a torn half-old-half-new view cannot be constructed.
//! 3. **Epochs are monotone.** One writer stamps epochs `0, 1, 2, …` in
//!    publication order, so the epochs any single reader observes across
//!    requests never decrease, and `STATS`/read responses can be correlated.
//! 4. **Reads never wait for repairs.** Cycle search, cover repair, and
//!    minimization all happen on the writer thread *before* publication;
//!    the readers' lock acquisition only ever races the pointer swap itself.
//!
//! What the service does *not* promise is read-your-write freshness: updates
//! are acknowledged when enqueued (`OK QUEUED`) and become visible at a later
//! epoch. The protocol exposes epochs precisely so clients can wait for one.
//!
//! ```no_run
//! use tdb_core::{Algorithm, HopConstraint, Solver};
//! use tdb_dynamic::SolveDynamic;
//! use tdb_graph::builder::graph_from_edges;
//! use tdb_serve::{CoverServer, ServeClient, ServeConfig};
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
//! let dynamic = Solver::new(Algorithm::TdbPlusPlus)
//!     .solve_dynamic(graph, &HopConstraint::new(4))
//!     .unwrap();
//! let server = CoverServer::start(dynamic, ServeConfig::default()).unwrap();
//!
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let answer = client.cover(2).unwrap();
//! println!("vertex 2 covered: {} (epoch {})", answer.contained, answer.epoch);
//! client.insert(1, 3).unwrap();   // visible at a later epoch
//! client.shutdown().unwrap();
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod health;
mod http;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use client::{BreakersAnswer, ClientError, CoverAnswer, ServeClient};
pub use engine::{CoverEngine, EngineConfig, EngineStats, UpdateQueue};
pub use health::{HealthConfig, HealthMonitor, HealthReport, HealthStatus};
pub use server::{CoverServer, ServeConfig, ServerStats};
pub use snapshot::{
    BreakerScratch, BreakerStat, CoverSnapshot, ExplainAnswer, ResidualAnswer, SnapshotCell,
};
