//! TCP front end: thread-per-connection line protocol over a [`CoverEngine`].
//!
//! Readers are served from the epoch-published snapshot cell — a request
//! loads the current `Arc`, answers against that immutable object, and never
//! touches the engine. Updates go through the bounded queue; a connection
//! issuing updates into a full queue blocks (backpressure) without affecting
//! any reader connection.

use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdb_dynamic::DynamicCover;
use tdb_obs::{Counter, Histogram, Registry};

use crate::engine::{CoverEngine, EngineConfig, EngineStats, UpdateQueue};
use crate::health::HealthMonitor;
use crate::http::HttpExporter;
use crate::protocol::{
    breakers_response, cover_response, err_response, kv_response, metrics_response, parse_request,
    queued_response, Request,
};
use crate::snapshot::{BreakerScratch, SnapshotCell};

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Longest argument string kept verbatim in a slow-query record.
const SLOW_ARGS_CAP: usize = 120;

/// Configuration of a [`CoverServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`CoverServer::local_addr`]).
    pub addr: String,
    /// Writer-loop tuning.
    pub engine: EngineConfig,
    /// Bind address of the HTTP exposition listener (`GET /metrics`,
    /// `/healthz`, `/events`); `None` disables it. Port 0 picks a free port
    /// (see [`CoverServer::http_addr`]).
    pub http_addr: Option<String>,
    /// Requests at or above this latency are captured into the flight
    /// recorder as `serve/slow_query` events (verb, args, latency, phase
    /// breakdown); `None` disables the slow-query log.
    pub slow_request_threshold: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            http_addr: None,
            slow_request_threshold: Some(Duration::from_millis(250)),
        }
    }
}

/// Transport-level counters (engine counters live in [`EngineStats`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Read queries answered (`COVER?` + `BREAKERS?` + `SNAPSHOT`).
    pub reads: AtomicU64,
    /// Update operations acknowledged (`INSERT` + `DELETE`).
    pub queued: AtomicU64,
    /// Malformed or failed requests answered with `ERR`.
    pub errors: AtomicU64,
}

/// A running cover service: resident engine + TCP accept loop (+ optionally
/// the HTTP exposition listener).
#[derive(Debug)]
pub struct CoverServer {
    local_addr: SocketAddr,
    engine: Option<CoverEngine>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown: Arc<AtomicBool>,
    snapshots: Arc<SnapshotCell>,
    engine_stats: Arc<EngineStats>,
    server_stats: Arc<ServerStats>,
    health: Arc<HealthMonitor>,
    http: Option<HttpExporter>,
}

impl CoverServer {
    /// Start the engine over `cover` and begin accepting connections.
    pub fn start(cover: DynamicCover, config: ServeConfig) -> std::io::Result<CoverServer> {
        let engine = CoverEngine::start(cover, config.engine);
        let snapshots = engine.snapshots();
        let engine_stats = engine.stats();
        let registry = engine.registry();
        let health = engine.health();
        tdb_obs::registry::register_process_metrics(
            &registry,
            env!("CARGO_PKG_VERSION"),
            "default",
        );
        let verbs = Arc::new(VerbHistograms::register(&registry));
        let slow_requests = registry.counter("tdb_serve_slow_requests_total");
        let server_stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let http = match &config.http_addr {
            Some(addr) => Some(HttpExporter::start(
                addr,
                registry.clone(),
                Arc::clone(&health),
                Arc::clone(&shutdown),
            )?),
            None => None,
        };

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let snapshots = Arc::clone(&snapshots);
            let queue = engine.queue();
            let engine_stats = Arc::clone(&engine_stats);
            let server_stats = Arc::clone(&server_stats);
            let registry = registry.clone();
            let verbs = Arc::clone(&verbs);
            let health = Arc::clone(&health);
            let request_ids = Arc::new(AtomicU64::new(0));
            let slow_threshold = config.slow_request_threshold;
            std::thread::Builder::new()
                .name("tdb-serve-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                server_stats.connections.fetch_add(1, Ordering::Relaxed);
                                let conn = Connection {
                                    snapshots: Arc::clone(&snapshots),
                                    queue: queue.clone(),
                                    shutdown: Arc::clone(&shutdown),
                                    engine_stats: Arc::clone(&engine_stats),
                                    server_stats: Arc::clone(&server_stats),
                                    registry: registry.clone(),
                                    verbs: Arc::clone(&verbs),
                                    health: Arc::clone(&health),
                                    request_ids: Arc::clone(&request_ids),
                                    slow_threshold,
                                    slow_requests: slow_requests.clone(),
                                };
                                let handle = std::thread::Builder::new()
                                    .name("tdb-serve-conn".into())
                                    .spawn(move || conn.run(stream))
                                    .expect("spawning a connection thread cannot fail");
                                connections
                                    .lock()
                                    .expect("connection registry poisoned")
                                    .push(handle);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })
                .expect("spawning the accept thread cannot fail")
        };

        Ok(CoverServer {
            local_addr,
            engine: Some(engine),
            accept: Some(accept),
            connections,
            shutdown,
            snapshots,
            engine_stats,
            server_stats,
            health,
            http,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The HTTP exposition listener's bound address, when one is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().map(|h| h.local_addr())
    }

    /// The watchdog monitor (what `HEALTH?` and `GET /healthz` evaluate).
    pub fn health(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.health)
    }

    /// The engine's metric registry (serve-layer counters and histograms).
    pub fn registry(&self) -> Registry {
        self.engine.as_ref().expect("server is running").registry()
    }

    /// Test/chaos hook: see [`CoverEngine::inject_writer_sleep`].
    pub fn inject_writer_sleep(&self, nap: Duration) {
        self.engine
            .as_ref()
            .expect("server is running")
            .inject_writer_sleep(nap);
    }

    /// The snapshot cell — in-process consumers (audits, the load generator)
    /// read published snapshots directly from here, exactly like a connection
    /// handler does.
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.snapshots)
    }

    /// Engine counters.
    pub fn engine_stats(&self) -> Arc<EngineStats> {
        Arc::clone(&self.engine_stats)
    }

    /// Transport counters.
    pub fn server_stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.server_stats)
    }

    /// Whether a shutdown (owner- or client-initiated) is in progress.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Stop the server: no new connections, existing handlers wind down,
    /// queued updates are applied, a final epoch is published. Returns the
    /// engine state.
    pub fn shutdown(mut self) -> DynamicCover {
        self.shutdown.store(true, Ordering::Release);
        self.wind_down()
    }

    /// Block until a client-initiated `SHUTDOWN` stops the server, then wind
    /// down exactly like [`CoverServer::shutdown`].
    pub fn join(mut self) -> DynamicCover {
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(POLL);
        }
        self.wind_down()
    }

    fn wind_down(&mut self) -> DynamicCover {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(http) = self.http.as_mut() {
            http.wind_down();
        }
        let handles: Vec<_> = std::mem::take(
            &mut *self
                .connections
                .lock()
                .expect("connection registry poisoned"),
        );
        for h in handles {
            let _ = h.join();
        }
        let engine = self.engine.take().expect("wind_down runs once");
        engine.shutdown()
    }
}

impl Drop for CoverServer {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.shutdown.store(true, Ordering::Release);
            self.wind_down();
        }
    }
}

/// Per-request latency histograms, one per protocol verb, registered in the
/// engine's metric registry as `tdb_serve_request_seconds_<verb>`.
struct VerbHistograms {
    cover: Histogram,
    breakers: Histogram,
    explain: Histogram,
    residual: Histogram,
    insert: Histogram,
    delete: Histogram,
    stats: Histogram,
    snapshot: Histogram,
    metrics: Histogram,
    health: Histogram,
    ping: Histogram,
    shutdown: Histogram,
}

impl VerbHistograms {
    fn register(registry: &Registry) -> Self {
        let h = |verb: &str| registry.histogram(&format!("tdb_serve_request_seconds_{verb}"));
        VerbHistograms {
            cover: h("cover"),
            breakers: h("breakers"),
            explain: h("explain"),
            residual: h("residual"),
            insert: h("insert"),
            delete: h("delete"),
            stats: h("stats"),
            snapshot: h("snapshot"),
            metrics: h("metrics"),
            health: h("health"),
            ping: h("ping"),
            shutdown: h("shutdown"),
        }
    }

    fn for_request(&self, request: &Request) -> &Histogram {
        match request {
            Request::Cover(_) => &self.cover,
            Request::Breakers(..) => &self.breakers,
            Request::Explain(_) => &self.explain,
            Request::Residual => &self.residual,
            Request::Insert(..) => &self.insert,
            Request::Delete(..) => &self.delete,
            Request::Stats => &self.stats,
            Request::Snapshot => &self.snapshot,
            Request::Metrics => &self.metrics,
            Request::Health => &self.health,
            Request::Ping => &self.ping,
            Request::Shutdown => &self.shutdown,
        }
    }
}

/// Per-connection state and request dispatch.
struct Connection {
    snapshots: Arc<SnapshotCell>,
    queue: UpdateQueue,
    shutdown: Arc<AtomicBool>,
    engine_stats: Arc<EngineStats>,
    server_stats: Arc<ServerStats>,
    registry: Registry,
    verbs: Arc<VerbHistograms>,
    health: Arc<HealthMonitor>,
    /// Shared across connections: every accepted protocol line gets the next
    /// id, which stamps the spans and events recorded while serving it.
    request_ids: Arc<AtomicU64>,
    slow_threshold: Option<Duration>,
    slow_requests: Counter,
}

impl Connection {
    fn run(self, stream: TcpStream) {
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let mut writer = match stream.try_clone() {
            Ok(s) => BufWriter::new(s),
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut scratch = BreakerScratch::default();
        let mut line = String::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match reader.read_line(&mut line) {
                Ok(0) => return, // client closed the connection
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Keep whatever partial line arrived before the timeout;
                    // the next read_line appends the rest.
                    continue;
                }
                Err(_) => return,
            }
            if line.trim().is_empty() {
                line.clear();
                continue; // blank lines are keep-alives, not errors
            }
            // Correlate everything recorded while serving this line — spans
            // in the snapshot readers, flight-recorder events — under one
            // fresh request id, and capture a slow-query record when the
            // request overruns the configured threshold.
            let request_id = self.request_ids.fetch_add(1, Ordering::Relaxed) + 1;
            let scope = tdb_obs::request::begin(request_id);
            let started = Instant::now();
            let (response, stop) = self.respond(&line, &mut scratch);
            let latency = started.elapsed();
            if self.slow_threshold.is_some_and(|t| latency >= t) {
                self.record_slow_query(&line, latency);
            }
            drop(scope);
            line.clear();
            if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                return;
            }
            if stop {
                self.shutdown.store(true, Ordering::Release);
                return;
            }
        }
    }

    /// Capture a `serve/slow_query` flight-recorder event for the request
    /// just served: verb, (truncated) args, latency, and the span-phase
    /// breakdown accumulated on this thread. Runs inside the request scope,
    /// so the event carries the request id.
    fn record_slow_query(&self, line: &str, latency: Duration) {
        self.slow_requests.inc();
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().unwrap_or("").to_string();
        let mut args = tokens.collect::<Vec<_>>().join(" ");
        if args.len() > SLOW_ARGS_CAP {
            let mut cut = SLOW_ARGS_CAP;
            while !args.is_char_boundary(cut) {
                cut -= 1;
            }
            args.truncate(cut);
        }
        let mut phases = String::new();
        for p in tdb_obs::request::take_breakdown() {
            if !phases.is_empty() {
                phases.push(';');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut phases,
                format_args!("{}={:.1}us*{}", p.name, p.total_us, p.count),
            );
        }
        tdb_obs::event!(
            tdb_obs::Level::Warn,
            "serve/slow_query",
            verb = verb,
            args = args,
            latency_us = latency.as_micros() as u64,
            epoch = self.snapshots.epoch(),
            phases = phases
        );
    }

    /// Answer one request line; the flag says "this was SHUTDOWN".
    fn respond(&self, line: &str, scratch: &mut BreakerScratch) -> (String, bool) {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.server_stats.errors.fetch_add(1, Ordering::Relaxed);
                return (err_response(&e.0), false);
            }
        };
        let _timer = self.verbs.for_request(&request).start();
        let response = match request {
            Request::Cover(v) => {
                let snap = self.snapshots.load();
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                // The resident engine repairs after every update, so the
                // published cover is never knowingly incomplete; the
                // exhausted field is wired for budgeted serving.
                cover_response(snap.contains(v), snap.epoch(), snap.total_cost(), false)
            }
            Request::Breakers(u, v) => {
                let snap = self.snapshots.load();
                let breakers = snap.breakers_through(scratch, u, v);
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                breakers_response(snap.epoch(), &breakers)
            }
            Request::Explain(v) => {
                let snap = self.snapshots.load();
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                match snap.explain(v) {
                    Some(answer) => kv_response(
                        "EXPLAIN",
                        &[
                            ("epoch", snap.epoch().to_string()),
                            ("vertex", v.to_string()),
                            ("in_cover", u8::from(answer.in_cover).to_string()),
                            ("cost", answer.cost.to_string()),
                            ("cycles", answer.cycles_through.to_string()),
                            ("truncated", u8::from(answer.truncated).to_string()),
                        ],
                    ),
                    None => {
                        self.server_stats.errors.fetch_add(1, Ordering::Relaxed);
                        err_response(&format!("EXPLAIN?: vertex {v} out of range"))
                    }
                }
            }
            Request::Residual => {
                let snap = self.snapshots.load();
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                let answer = snap.residual();
                kv_response(
                    "RESIDUAL",
                    &[
                        ("epoch", snap.epoch().to_string()),
                        ("count", answer.count.to_string()),
                        ("truncated", u8::from(answer.truncated).to_string()),
                    ],
                )
            }
            Request::Insert(u, v) | Request::Delete(u, v) => {
                let op = match request {
                    Request::Insert(..) => tdb_dynamic::EdgeOp::Insert(u, v),
                    _ => tdb_dynamic::EdgeOp::Remove(u, v),
                };
                if self.queue.send(op) {
                    self.server_stats.queued.fetch_add(1, Ordering::Relaxed);
                    queued_response()
                } else {
                    self.server_stats.errors.fetch_add(1, Ordering::Relaxed);
                    err_response("engine is shut down")
                }
            }
            Request::Stats => {
                let e = &self.engine_stats;
                let s = &self.server_stats;
                kv_response(
                    "STATS",
                    &[
                        ("epoch", self.snapshots.epoch().to_string()),
                        ("enqueued", e.enqueued.get().to_string()),
                        ("applied", e.applied.get().to_string()),
                        ("coalesced", e.coalesced.get().to_string()),
                        ("batches", e.batches.get().to_string()),
                        ("updates", e.updates.get().to_string()),
                        ("breakers_added", e.breakers_added.get().to_string()),
                        ("pruned", e.pruned.get().to_string()),
                        ("minimizes", e.minimizes.get().to_string()),
                        ("queue", e.queue_depth.get().to_string()),
                        (
                            "connections",
                            s.connections.load(Ordering::Relaxed).to_string(),
                        ),
                        ("reads", s.reads.load(Ordering::Relaxed).to_string()),
                        ("queued", s.queued.load(Ordering::Relaxed).to_string()),
                        ("errors", s.errors.load(Ordering::Relaxed).to_string()),
                    ],
                )
            }
            Request::Metrics => {
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                tdb_obs::export_drop_counters();
                metrics_response(&self.registry, tdb_obs::global())
            }
            Request::Health => {
                let report = self.health.evaluate();
                kv_response(
                    "HEALTH",
                    &[
                        ("status", report.status.as_str().to_string()),
                        ("reasons", report.reasons.join(",")),
                        (
                            "heartbeat_age_ms",
                            report.heartbeat_age.as_millis().to_string(),
                        ),
                        ("publish_age_ms", report.publish_age.as_millis().to_string()),
                        ("queue_depth", report.queue_depth.to_string()),
                        ("queue_capacity", report.queue_capacity.to_string()),
                        (
                            "batches_since_minimize",
                            report.batches_since_minimize.to_string(),
                        ),
                        ("epoch", self.snapshots.epoch().to_string()),
                    ],
                )
            }
            Request::Snapshot => {
                let snap = self.snapshots.load();
                self.server_stats.reads.fetch_add(1, Ordering::Relaxed);
                kv_response(
                    "SNAPSHOT",
                    &[
                        ("epoch", snap.epoch().to_string()),
                        ("vertices", snap.vertex_count().to_string()),
                        ("edges", snap.edge_count().to_string()),
                        ("cover", snap.cover().len().to_string()),
                        ("k", snap.constraint().max_hops.to_string()),
                        ("dirty", u8::from(snap.dirty()).to_string()),
                    ],
                )
            }
            Request::Ping => "OK PONG".to_string(),
            Request::Shutdown => return ("OK BYE".to_string(), true),
        };
        (response, false)
    }
}
