//! The line-based text protocol spoken over TCP.
//!
//! One request per line, fields separated by single spaces, one response line
//! per request. The grammar (also in the README's "Serving" section):
//!
//! ```text
//! request  := "COVER?" SP vertex
//!           | "BREAKERS?" SP vertex SP vertex
//!           | "INSERT" SP vertex SP vertex
//!           | "DELETE" SP vertex SP vertex
//!           | "STATS" | "SNAPSHOT" | "PING" | "SHUTDOWN"
//! vertex   := decimal u32
//!
//! response := "OK" SP payload | "ERR" SP message
//! payload  := "IN" SP epoch | "OUT" SP epoch          (COVER?)
//!           | "BREAKERS" SP epoch SP count {SP vertex} (BREAKERS?)
//!           | "QUEUED"                                 (INSERT / DELETE)
//!           | "STATS" {SP key "=" value}               (STATS)
//!           | "SNAPSHOT" {SP key "=" value}            (SNAPSHOT)
//!           | "PONG"                                   (PING)
//!           | "BYE"                                    (SHUTDOWN)
//! ```
//!
//! Reads (`COVER?`, `BREAKERS?`, `SNAPSHOT`) are answered from the handler's
//! current snapshot and carry the epoch they were answered against. Updates
//! are acknowledged at *enqueue* time (`OK QUEUED`) and become visible in a
//! later epoch — the protocol makes the asynchrony explicit rather than
//! hiding it.

use std::fmt::Write as _;

use tdb_graph::VertexId;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `COVER? v` — is `v` in the current cover?
    Cover(VertexId),
    /// `BREAKERS? u v` — cover vertices implicated in constrained cycles
    /// through the (possibly hypothetical) edge `(u, v)`.
    Breakers(VertexId, VertexId),
    /// `INSERT u v` — enqueue an edge insertion.
    Insert(VertexId, VertexId),
    /// `DELETE u v` — enqueue an edge removal.
    Delete(VertexId, VertexId),
    /// `STATS` — live server and engine counters.
    Stats,
    /// `SNAPSHOT` — metadata of the current snapshot.
    Snapshot,
    /// `PING` — liveness probe.
    Ping,
    /// `SHUTDOWN` — gracefully stop the server.
    Shutdown,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn vertex(tok: Option<&str>, verb: &str) -> Result<VertexId, ParseError> {
    let tok = tok.ok_or_else(|| ParseError(format!("{verb}: missing vertex argument")))?;
    tok.parse::<VertexId>()
        .map_err(|_| ParseError(format!("{verb}: {tok:?} is not a vertex id")))
}

fn no_more(mut rest: std::str::SplitWhitespace<'_>, verb: &str) -> Result<(), ParseError> {
    match rest.next() {
        None => Ok(()),
        Some(extra) => Err(ParseError(format!("{verb}: unexpected argument {extra:?}"))),
    }
}

/// Parse one request line (leading/trailing whitespace tolerated).
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| ParseError("empty request".into()))?;
    let request = match verb {
        "COVER?" => Request::Cover(vertex(tokens.next(), verb)?),
        "BREAKERS?" => {
            Request::Breakers(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?)
        }
        "INSERT" => Request::Insert(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?),
        "DELETE" => Request::Delete(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?),
        "STATS" => Request::Stats,
        "SNAPSHOT" => Request::Snapshot,
        "PING" => Request::Ping,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(ParseError(format!("unknown verb {other:?}"))),
    };
    no_more(tokens, verb)?;
    Ok(request)
}

/// Format the `COVER?` response.
pub fn cover_response(contained: bool, epoch: u64) -> String {
    format!("OK {} {epoch}", if contained { "IN" } else { "OUT" })
}

/// Format the `BREAKERS?` response.
pub fn breakers_response(epoch: u64, breakers: &[VertexId]) -> String {
    let mut out = format!("OK BREAKERS {epoch} {}", breakers.len());
    for b in breakers {
        let _ = write!(out, " {b}");
    }
    out
}

/// Format the `INSERT` / `DELETE` acknowledgement.
pub fn queued_response() -> String {
    "OK QUEUED".to_string()
}

/// Format a `key=value` payload response (`STATS` / `SNAPSHOT`).
pub fn kv_response(kind: &str, pairs: &[(&str, String)]) -> String {
    let mut out = format!("OK {kind}");
    for (k, v) in pairs {
        let _ = write!(out, " {k}={v}");
    }
    out
}

/// Format an error response (single line; embedded newlines are flattened).
pub fn err_response(message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {flat}")
}

/// Split a `kv_response` payload back into pairs (client side).
pub fn parse_kv(line: &str, kind: &str) -> Option<Vec<(String, String)>> {
    let rest = line.strip_prefix("OK ")?.strip_prefix(kind)?;
    let mut pairs = Vec::new();
    for tok in rest.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        pairs.push((k.to_string(), v.to_string()));
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(parse_request("COVER? 17"), Ok(Request::Cover(17)));
        assert_eq!(
            parse_request("  BREAKERS? 3 4 "),
            Ok(Request::Breakers(3, 4))
        );
        assert_eq!(parse_request("INSERT 0 1"), Ok(Request::Insert(0, 1)));
        assert_eq!(parse_request("DELETE 1 0"), Ok(Request::Delete(1, 0)));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("SNAPSHOT"), Ok(Request::Snapshot));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));

        assert!(parse_request("").is_err());
        assert!(parse_request("COVER?").is_err(), "missing argument");
        assert!(parse_request("COVER? x").is_err(), "non-numeric vertex");
        assert!(parse_request("COVER? 1 2").is_err(), "extra argument");
        assert!(parse_request("BREAKERS? 1").is_err(), "one vertex short");
        assert!(parse_request("INSERT 1 -2").is_err(), "negative id");
        assert!(parse_request("EXPLODE 1").is_err(), "unknown verb");
        assert!(parse_request("STATS now").is_err(), "no-arg verb with arg");
    }

    #[test]
    fn responses_format_as_single_lines() {
        assert_eq!(cover_response(true, 9), "OK IN 9");
        assert_eq!(cover_response(false, 0), "OK OUT 0");
        assert_eq!(breakers_response(4, &[7, 9]), "OK BREAKERS 4 2 7 9");
        assert_eq!(breakers_response(1, &[]), "OK BREAKERS 1 0");
        assert_eq!(queued_response(), "OK QUEUED");
        assert_eq!(
            kv_response("SNAPSHOT", &[("epoch", "3".into()), ("cover", "12".into())]),
            "OK SNAPSHOT epoch=3 cover=12"
        );
        assert_eq!(err_response("bad\nthing"), "ERR bad thing");
    }

    #[test]
    fn kv_payloads_round_trip() {
        let line = kv_response("STATS", &[("a", "1".into()), ("b", "x".into())]);
        let pairs = parse_kv(&line, "STATS").unwrap();
        assert_eq!(
            pairs,
            vec![("a".into(), "1".into()), ("b".into(), "x".into())]
        );
        assert!(parse_kv("OK PONG", "STATS").is_none());
    }
}
