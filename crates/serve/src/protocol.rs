//! The line-based text protocol spoken over TCP.
//!
//! One request per line, fields separated by single spaces. Every response
//! is a single line, except `METRICS`, whose header announces how many
//! exposition lines follow. The grammar (also in the README's "Serving"
//! section):
//!
//! ```text
//! request  := "COVER?" SP vertex
//!           | "BREAKERS?" SP vertex SP vertex
//!           | "EXPLAIN?" SP vertex
//!           | "RESIDUAL?"
//!           | "HEALTH?"
//!           | "INSERT" SP vertex SP vertex
//!           | "DELETE" SP vertex SP vertex
//!           | "STATS" | "SNAPSHOT" | "METRICS" | "PING" | "SHUTDOWN"
//! vertex   := decimal u32
//!
//! response := "OK" SP payload | "ERR" SP message
//! payload  := ("IN" | "OUT") SP epoch
//!             SP "cost=" total SP "exhausted=" bit     (COVER?)
//!           | "BREAKERS" SP epoch SP count {SP vertex} (BREAKERS?)
//!           | "EXPLAIN" {SP key "=" value}             (EXPLAIN?)
//!           | "RESIDUAL" {SP key "=" value}            (RESIDUAL?)
//!           | "HEALTH" {SP key "=" value}              (HEALTH?)
//!           | "QUEUED"                                 (INSERT / DELETE)
//!           | "STATS" {SP key "=" value}               (STATS)
//!           | "SNAPSHOT" {SP key "=" value}            (SNAPSHOT)
//!           | "METRICS" SP count LF count * (line LF)  (METRICS)
//!           | "PONG"                                   (PING)
//!           | "BYE"                                    (SHUTDOWN)
//! ```
//!
//! The `COVER?` reply carries the cover's `cost=` (total vertex cost of the
//! snapshot cover under the engine's cost model; equals the cover size under
//! uniform costs) and `exhausted=` (`1` when the cover is known incomplete —
//! the resident engine maintains complete covers, so it always answers `0`;
//! the field keeps clients forward-compatible with budgeted serving).
//! `EXPLAIN? v` reports how load-bearing `v` is: its cost and the number of
//! constrained cycles only it breaks (keys `epoch`, `vertex`, `in_cover`,
//! `cost`, `cycles`, `truncated`). `RESIDUAL?` counts constrained cycles the
//! published cover fails to break (keys `epoch`, `count`, `truncated`) — the
//! wire-level completeness audit, `count=0` on a healthy service.
//! `HEALTH?` answers the watchdog's classification (keys `status` —
//! `ok`/`degraded`/`stalled` — `reasons` as comma-joined machine-readable
//! codes, `heartbeat_age_ms`, `publish_age_ms`, `queue_depth`,
//! `queue_capacity`, `batches_since_minimize`, `epoch`).
//!
//! `key` and `value` are percent-escaped ([`kv_response`] / [`parse_kv`]):
//! `%`, space, `=`, TAB, CR and LF appear as `%25` `%20` `%3d` `%09` `%0d`
//! `%0a`, so free-form values cannot break the one-line framing or the
//! `key=value` token shape. The `METRICS` body is Prometheus text exposition
//! (`# TYPE` lines, `name value` samples, histogram `_bucket`/`_sum`/
//! `_count` series) and is framed by the line count in its header instead.
//!
//! Reads (`COVER?`, `BREAKERS?`, `SNAPSHOT`) are answered from the handler's
//! current snapshot and carry the epoch they were answered against. Updates
//! are acknowledged at *enqueue* time (`OK QUEUED`) and become visible in a
//! later epoch — the protocol makes the asynchrony explicit rather than
//! hiding it.

use std::fmt::Write as _;

use tdb_graph::VertexId;
use tdb_obs::Registry;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `COVER? v` — is `v` in the current cover?
    Cover(VertexId),
    /// `BREAKERS? u v` — cover vertices implicated in constrained cycles
    /// through the (possibly hypothetical) edge `(u, v)`.
    Breakers(VertexId, VertexId),
    /// `EXPLAIN? v` — cost and witness-cycle count of vertex `v`.
    Explain(VertexId),
    /// `RESIDUAL?` — count of constrained cycles the cover fails to break.
    Residual,
    /// `HEALTH?` — the watchdog's current classification of the engine.
    Health,
    /// `INSERT u v` — enqueue an edge insertion.
    Insert(VertexId, VertexId),
    /// `DELETE u v` — enqueue an edge removal.
    Delete(VertexId, VertexId),
    /// `STATS` — live server and engine counters.
    Stats,
    /// `SNAPSHOT` — metadata of the current snapshot.
    Snapshot,
    /// `METRICS` — full Prometheus-style metric exposition.
    Metrics,
    /// `PING` — liveness probe.
    Ping,
    /// `SHUTDOWN` — gracefully stop the server.
    Shutdown,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn vertex(tok: Option<&str>, verb: &str) -> Result<VertexId, ParseError> {
    let tok = tok.ok_or_else(|| ParseError(format!("{verb}: missing vertex argument")))?;
    tok.parse::<VertexId>()
        .map_err(|_| ParseError(format!("{verb}: {tok:?} is not a vertex id")))
}

fn no_more(mut rest: std::str::SplitWhitespace<'_>, verb: &str) -> Result<(), ParseError> {
    match rest.next() {
        None => Ok(()),
        Some(extra) => Err(ParseError(format!("{verb}: unexpected argument {extra:?}"))),
    }
}

/// Parse one request line (leading/trailing whitespace tolerated).
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| ParseError("empty request".into()))?;
    let request = match verb {
        "COVER?" => Request::Cover(vertex(tokens.next(), verb)?),
        "BREAKERS?" => {
            Request::Breakers(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?)
        }
        "EXPLAIN?" => Request::Explain(vertex(tokens.next(), verb)?),
        "RESIDUAL?" => Request::Residual,
        "HEALTH?" => Request::Health,
        "INSERT" => Request::Insert(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?),
        "DELETE" => Request::Delete(vertex(tokens.next(), verb)?, vertex(tokens.next(), verb)?),
        "STATS" => Request::Stats,
        "SNAPSHOT" => Request::Snapshot,
        "METRICS" => Request::Metrics,
        "PING" => Request::Ping,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(ParseError(format!("unknown verb {other:?}"))),
    };
    no_more(tokens, verb)?;
    Ok(request)
}

/// Format the `COVER?` response. `cost` is the snapshot cover's total vertex
/// cost; `exhausted` marks a knowingly incomplete (budget-trimmed) cover.
pub fn cover_response(contained: bool, epoch: u64, cost: u64, exhausted: bool) -> String {
    format!(
        "OK {} {epoch} cost={cost} exhausted={}",
        if contained { "IN" } else { "OUT" },
        u8::from(exhausted)
    )
}

/// Format the `BREAKERS?` response.
pub fn breakers_response(epoch: u64, breakers: &[VertexId]) -> String {
    let mut out = format!("OK BREAKERS {epoch} {}", breakers.len());
    for b in breakers {
        let _ = write!(out, " {b}");
    }
    out
}

/// Format the `INSERT` / `DELETE` acknowledgement.
pub fn queued_response() -> String {
    "OK QUEUED".to_string()
}

/// Percent-escape the characters that would break the one-line framing or
/// the `key=value` token shape. Clean identifiers and numbers pass through
/// unchanged, so the wire format for the built-in counters is stable.
fn escape_kv(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3d"),
            '\t' => out.push_str("%09"),
            '\r' => out.push_str("%0d"),
            '\n' => out.push_str("%0a"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_kv`]; rejects malformed escapes with a typed error.
fn unescape_kv(token: &str, kind: &str) -> Result<String, ParseError> {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        let code = u32::from_str_radix(&hex, 16)
            .ok()
            .filter(|_| hex.len() == 2)
            .and_then(char::from_u32)
            .ok_or_else(|| {
                ParseError(format!("{kind}: bad percent-escape %{hex:?} in {token:?}"))
            })?;
        out.push(code);
    }
    Ok(out)
}

/// Format a `key=value` payload response (`STATS` / `SNAPSHOT`). Keys and
/// values are percent-escaped, so free-form strings (spaces, `=`, newlines)
/// survive the single-line, space-separated framing.
pub fn kv_response(kind: &str, pairs: &[(&str, String)]) -> String {
    let mut out = format!("OK {kind}");
    for (k, v) in pairs {
        let _ = write!(out, " {}={}", escape_kv(k), escape_kv(v));
    }
    out
}

/// Format an error response (single line; embedded newlines are flattened).
pub fn err_response(message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {flat}")
}

/// Split a `kv_response` payload back into pairs (client side), undoing the
/// percent-escaping. Fails with a typed error on a wrong response kind, a
/// token without `=`, or a malformed escape.
pub fn parse_kv(line: &str, kind: &str) -> Result<Vec<(String, String)>, ParseError> {
    let rest = line
        .strip_prefix("OK ")
        .and_then(|r| r.strip_prefix(kind))
        .ok_or_else(|| ParseError(format!("not an OK {kind} response: {line:?}")))?;
    let mut pairs = Vec::new();
    for tok in rest.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| ParseError(format!("{kind}: token {tok:?} is not key=value")))?;
        pairs.push((unescape_kv(k, kind)?, unescape_kv(v, kind)?));
    }
    Ok(pairs)
}

/// Format the `METRICS` response: a header announcing the line count, then
/// the engine registry's and the global registry's Prometheus exposition.
/// (The engine registry holds the serve-layer metrics; the global one holds
/// the solver/cycle/dynamic instrumentation.)
pub fn metrics_response(engine: &Registry, global: &Registry) -> String {
    let mut body = engine.render_prometheus();
    body.push_str(&global.render_prometheus());
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = format!("OK METRICS {}", lines.len());
    for line in lines {
        out.push('\n');
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(parse_request("COVER? 17"), Ok(Request::Cover(17)));
        assert_eq!(
            parse_request("  BREAKERS? 3 4 "),
            Ok(Request::Breakers(3, 4))
        );
        assert_eq!(parse_request("EXPLAIN? 12"), Ok(Request::Explain(12)));
        assert_eq!(parse_request("RESIDUAL?"), Ok(Request::Residual));
        assert_eq!(parse_request("HEALTH?"), Ok(Request::Health));
        assert!(parse_request("HEALTH? 1").is_err(), "no-arg verb with arg");
        assert_eq!(parse_request("INSERT 0 1"), Ok(Request::Insert(0, 1)));
        assert_eq!(parse_request("DELETE 1 0"), Ok(Request::Delete(1, 0)));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("SNAPSHOT"), Ok(Request::Snapshot));
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));

        assert!(parse_request("").is_err());
        assert!(parse_request("COVER?").is_err(), "missing argument");
        assert!(parse_request("COVER? x").is_err(), "non-numeric vertex");
        assert!(parse_request("COVER? 1 2").is_err(), "extra argument");
        assert!(parse_request("BREAKERS? 1").is_err(), "one vertex short");
        assert!(parse_request("EXPLAIN?").is_err(), "missing vertex");
        assert!(
            parse_request("RESIDUAL? 1").is_err(),
            "no-arg verb with arg"
        );
        assert!(parse_request("INSERT 1 -2").is_err(), "negative id");
        assert!(parse_request("EXPLODE 1").is_err(), "unknown verb");
        assert!(parse_request("STATS now").is_err(), "no-arg verb with arg");
    }

    #[test]
    fn responses_format_as_single_lines() {
        assert_eq!(
            cover_response(true, 9, 12, false),
            "OK IN 9 cost=12 exhausted=0"
        );
        assert_eq!(
            cover_response(false, 0, 0, true),
            "OK OUT 0 cost=0 exhausted=1"
        );
        assert_eq!(breakers_response(4, &[7, 9]), "OK BREAKERS 4 2 7 9");
        assert_eq!(breakers_response(1, &[]), "OK BREAKERS 1 0");
        assert_eq!(queued_response(), "OK QUEUED");
        assert_eq!(
            kv_response("SNAPSHOT", &[("epoch", "3".into()), ("cover", "12".into())]),
            "OK SNAPSHOT epoch=3 cover=12"
        );
        assert_eq!(err_response("bad\nthing"), "ERR bad thing");
    }

    #[test]
    fn kv_payloads_round_trip() {
        let line = kv_response("STATS", &[("a", "1".into()), ("b", "x".into())]);
        let pairs = parse_kv(&line, "STATS").unwrap();
        assert_eq!(
            pairs,
            vec![("a".into(), "1".into()), ("b".into(), "x".into())]
        );
        assert!(parse_kv("OK PONG", "STATS").is_err());
    }

    #[test]
    fn kv_values_with_metacharacters_survive_the_framing() {
        // Regression: spaces, `=`, `%`, and newlines in free-form values must
        // not break the one-line framing or the key=value token shape.
        let hostile = "a b=c%d\ne\tf\rg".to_string();
        let line = kv_response("STATS", &[("label", hostile.clone()), ("n", "7".into())]);
        assert_eq!(line.lines().count(), 1, "framing stays one line: {line:?}");
        let pairs = parse_kv(&line, "STATS").unwrap();
        assert_eq!(
            pairs,
            vec![("label".to_string(), hostile), ("n".into(), "7".into())]
        );
        // Hostile keys too.
        let line = kv_response("SNAPSHOT", &[("weird key=", "v".into())]);
        let pairs = parse_kv(&line, "SNAPSHOT").unwrap();
        assert_eq!(pairs, vec![("weird key=".to_string(), "v".to_string())]);
    }

    #[test]
    fn malformed_kv_payloads_are_typed_errors() {
        let no_eq = parse_kv("OK STATS justatoken", "STATS").unwrap_err();
        assert!(no_eq.0.contains("not key=value"), "{no_eq}");
        let bad_escape = parse_kv("OK STATS k=%zz", "STATS").unwrap_err();
        assert!(bad_escape.0.contains("bad percent-escape"), "{bad_escape}");
        let truncated = parse_kv("OK STATS k=%2", "STATS").unwrap_err();
        assert!(truncated.0.contains("bad percent-escape"), "{truncated}");
        let wrong_kind = parse_kv("OK SNAPSHOT a=1", "STATS").unwrap_err();
        assert!(wrong_kind.0.contains("not an OK STATS"), "{wrong_kind}");
    }

    #[test]
    fn metrics_response_frames_by_line_count() {
        let engine = Registry::new();
        engine.counter("tdb_serve_test_total").add(2);
        let global = Registry::new();
        global
            .histogram("tdb_solve_test_seconds")
            .observe_nanos(500);
        let response = metrics_response(&engine, &global);
        let mut lines = response.lines();
        let header = lines.next().unwrap();
        let count: usize = header.strip_prefix("OK METRICS ").unwrap().parse().unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), count, "header count matches body:\n{response}");
        assert!(body.contains(&"tdb_serve_test_total 2"));
        assert!(body
            .iter()
            .any(|l| l.starts_with("tdb_solve_test_seconds_bucket")));
    }
}
