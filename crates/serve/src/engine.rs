//! The resident engine: one writer thread draining an update queue into a
//! [`DynamicCover`] and publishing [`CoverSnapshot`]s.
//!
//! Update flow:
//!
//! 1. Producers (connection handlers, the load generator, in-process callers)
//!    enqueue [`EdgeOp`]s through a bounded channel. A full queue blocks the
//!    producer — that is the backpressure contract: writers slow down, readers
//!    never do.
//! 2. The writer thread collects operations into an [`EdgeBatch`] until the
//!    batching window closes (size cap or time cap, whichever first), then
//!    [`EdgeBatch::coalesce`]s the batch so a flapping edge costs one
//!    operation instead of one cycle repair per flap.
//! 3. The batch goes through [`DynamicCover::apply`] — the cover is valid
//!    after every operation — and every [`EngineConfig::minimize_every`]
//!    batches the writer runs the component-scoped [`DynamicCover::minimize`]
//!    to shed redundant breakers.
//! 4. The writer captures [`DynamicCover::state`] and publishes it as the next
//!    epoch. Readers pick it up on their next [`SnapshotCell::load`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdb_dynamic::{DynamicCover, EdgeBatch, EdgeOp};
use tdb_graph::VertexId;
use tdb_obs::{Counter, Gauge, Histogram, Registry};

use crate::health::{HealthConfig, HealthMonitor};
use crate::snapshot::{CoverSnapshot, SnapshotCell};

/// How often the idle writer loop wakes to heartbeat into the
/// [`HealthMonitor`] (and to notice an injected nap). Well under the default
/// [`HealthConfig::stall_after`], so an idle engine never looks stalled.
const HEARTBEAT_TICK: Duration = Duration::from_millis(25);

/// Tuning knobs of the [`CoverEngine`] writer loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum operations per applied batch.
    pub max_batch: usize,
    /// Maximum time the writer waits to fill a batch once it holds at least
    /// one operation. Shorter windows publish fresher epochs; longer windows
    /// amortize repairs and publication better.
    pub batch_window: Duration,
    /// Capacity of the update queue. Enqueueing into a full queue blocks the
    /// producer (backpressure); the depth is visible as
    /// [`EngineStats::queue_depth`].
    pub queue_capacity: usize,
    /// Run the component-scoped `minimize()` after every this many batches
    /// (`0` disables periodic minimization; the cover stays valid either way).
    pub minimize_every: usize,
    /// Watchdog thresholds (`HEALTH?` / `GET /healthz` classification).
    pub health: HealthConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 256,
            batch_window: Duration::from_millis(2),
            queue_capacity: 4096,
            minimize_every: 32,
            health: HealthConfig::default(),
        }
    }
}

/// Live counters of a running engine, shared between the writer thread, the
/// transport layer, and `STATS` queries. The counters are registered in the
/// engine's [`Registry`] (names prefixed `tdb_serve_`), so the same cells
/// answer `STATS`, `METRICS`, and in-process reads — approximate
/// point-in-time values are fine for monitoring.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Operations accepted into the queue.
    pub enqueued: Counter,
    /// Operations consumed by the writer (before coalescing).
    pub applied: Counter,
    /// Operations cancelled by window coalescing.
    pub coalesced: Counter,
    /// Batches applied.
    pub batches: Counter,
    /// Graph-changing updates (inserts + removes) applied.
    pub updates: Counter,
    /// Breakers added by insert repairs.
    pub breakers_added: Counter,
    /// Cover vertices shed by periodic minimization.
    pub pruned: Counter,
    /// Periodic minimize passes run.
    pub minimizes: Counter,
    /// Current queue depth (approximate).
    pub queue_depth: Gauge,
}

impl EngineStats {
    fn register(registry: &Registry) -> Self {
        EngineStats {
            enqueued: registry.counter("tdb_serve_ops_enqueued_total"),
            applied: registry.counter("tdb_serve_ops_applied_total"),
            coalesced: registry.counter("tdb_serve_ops_coalesced_total"),
            batches: registry.counter("tdb_serve_batches_total"),
            updates: registry.counter("tdb_serve_updates_total"),
            breakers_added: registry.counter("tdb_serve_breakers_added_total"),
            pruned: registry.counter("tdb_serve_pruned_total"),
            minimizes: registry.counter("tdb_serve_minimizes_total"),
            queue_depth: registry.gauge("tdb_serve_queue_depth"),
        }
    }
}

impl Default for EngineStats {
    /// Stand-alone stats (registered in a private throwaway registry) — for
    /// tests and in-process embedding without a server.
    fn default() -> Self {
        EngineStats::register(&Registry::new())
    }
}

/// A clonable producer handle into the engine's update queue.
#[derive(Debug, Clone)]
pub struct UpdateQueue {
    tx: SyncSender<Msg>,
    stats: Arc<EngineStats>,
}

impl UpdateQueue {
    /// Enqueue one edge operation, blocking while the queue is full
    /// (backpressure). Returns `false` if the engine has shut down.
    pub fn send(&self, op: EdgeOp) -> bool {
        self.stats.queue_depth.inc();
        if self.tx.send(Msg::Op(op, Instant::now())).is_ok() {
            self.stats.enqueued.inc();
            true
        } else {
            self.stats.queue_depth.dec();
            false
        }
    }

    /// Enqueue an insertion (see [`UpdateQueue::send`]).
    pub fn insert(&self, u: VertexId, v: VertexId) -> bool {
        self.send(EdgeOp::Insert(u, v))
    }

    /// Enqueue a removal (see [`UpdateQueue::send`]).
    pub fn remove(&self, u: VertexId, v: VertexId) -> bool {
        self.send(EdgeOp::Remove(u, v))
    }

    /// Non-blocking variant of [`UpdateQueue::send`]: returns `false` instead
    /// of blocking when the queue is full or the engine is gone.
    pub fn try_send(&self, op: EdgeOp) -> bool {
        self.stats.queue_depth.inc();
        match self.tx.try_send(Msg::Op(op, Instant::now())) {
            Ok(()) => {
                self.stats.enqueued.inc();
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.stats.queue_depth.dec();
                false
            }
        }
    }
}

enum Msg {
    /// An edge operation stamped with its enqueue time, so the writer can
    /// report enqueue→publish epoch latency.
    Op(EdgeOp, Instant),
    Shutdown,
}

/// A resident cover engine: the writer thread plus the handles the transport
/// layer needs (queue in, snapshots out, stats alongside).
#[derive(Debug)]
pub struct CoverEngine {
    queue: UpdateQueue,
    snapshots: Arc<SnapshotCell>,
    stats: Arc<EngineStats>,
    registry: Registry,
    health: Arc<HealthMonitor>,
    nap_ns: Arc<AtomicU64>,
    writer: Option<JoinHandle<DynamicCover>>,
    shutdown_tx: SyncSender<Msg>,
}

impl CoverEngine {
    /// Start the engine over a seeded dynamic cover, publishing the seed state
    /// as epoch 0 before any update is accepted.
    pub fn start(cover: DynamicCover, config: EngineConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        let registry = Registry::new();
        let stats = Arc::new(EngineStats::register(&registry));
        let epoch_latency = registry.histogram("tdb_serve_epoch_publish_seconds");
        let snapshots = Arc::new(SnapshotCell::new(CoverSnapshot::new(0, cover.state())));
        let health = Arc::new(HealthMonitor::new(
            config.health,
            config.queue_capacity,
            config.minimize_every,
            stats.queue_depth.clone(),
        ));
        let nap_ns = Arc::new(AtomicU64::new(0));
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_capacity);
        let queue = UpdateQueue {
            tx: tx.clone(),
            stats: Arc::clone(&stats),
        };
        let writer = {
            let snapshots = Arc::clone(&snapshots);
            let stats = Arc::clone(&stats);
            let health = Arc::clone(&health);
            let nap_ns = Arc::clone(&nap_ns);
            std::thread::Builder::new()
                .name("tdb-serve-writer".into())
                .spawn(move || {
                    writer_loop(
                        cover,
                        config,
                        rx,
                        snapshots,
                        stats,
                        epoch_latency,
                        health,
                        nap_ns,
                    )
                })
                .expect("spawning the writer thread cannot fail")
        };
        CoverEngine {
            queue,
            snapshots,
            stats,
            registry,
            health,
            nap_ns,
            writer: Some(writer),
            shutdown_tx: tx,
        }
    }

    /// The producer handle (clonable, one per connection).
    pub fn queue(&self) -> UpdateQueue {
        self.queue.clone()
    }

    /// The snapshot publication cell (share with readers).
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.snapshots)
    }

    /// Live engine counters.
    pub fn stats(&self) -> Arc<EngineStats> {
        Arc::clone(&self.stats)
    }

    /// The engine's metric registry: the [`EngineStats`] counters plus the
    /// enqueue→publish latency histogram (`tdb_serve_epoch_publish_seconds`).
    /// The transport layer registers its per-verb request histograms here,
    /// and the `METRICS` verb renders it.
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// The watchdog monitor the writer loop heartbeats into; evaluate it for
    /// `HEALTH?` / `GET /healthz` answers.
    pub fn health(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.health)
    }

    /// Test/chaos hook: make the writer sleep this long at the top of every
    /// loop iteration *without* heartbeating, simulating a wedged writer.
    /// `Duration::ZERO` clears the injection.
    pub fn inject_writer_sleep(&self, nap: Duration) {
        self.nap_ns.store(nap.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Graceful shutdown: the writer finishes operations already in the queue
    /// ahead of the shutdown marker, publishes a final epoch, and returns the
    /// engine state for inspection or persistence.
    pub fn shutdown(mut self) -> DynamicCover {
        let _ = self.shutdown_tx.send(Msg::Shutdown);
        let writer = self.writer.take().expect("shutdown runs once");
        writer.join().expect("writer thread panicked")
    }
}

impl Drop for CoverEngine {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = self.shutdown_tx.send(Msg::Shutdown);
            let _ = writer.join();
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal: called from exactly one site
fn writer_loop(
    mut cover: DynamicCover,
    config: EngineConfig,
    rx: Receiver<Msg>,
    snapshots: Arc<SnapshotCell>,
    stats: Arc<EngineStats>,
    epoch_latency: Histogram,
    health: Arc<HealthMonitor>,
    nap_ns: Arc<AtomicU64>,
) -> DynamicCover {
    let mut batch = EdgeBatch::new();
    let mut epoch = snapshots.epoch();
    let mut batches_since_minimize = 0usize;
    let mut shutting_down = false;
    health.beat();
    health.published();
    'serve: loop {
        // Injected nap (test/chaos hook): sleep *before* the beat, so the
        // heartbeat ages while the writer is wedged.
        let nap = nap_ns.load(Ordering::Relaxed);
        if nap > 0 {
            std::thread::sleep(Duration::from_nanos(nap));
        }
        health.beat();
        // Wait for the batch's first operation, waking every tick to
        // heartbeat while idle. Channel order is FIFO, so the first op is
        // also the oldest — its enqueue time bounds the enqueue→publish
        // latency of everything in the batch.
        let oldest_enqueued;
        match rx.recv_timeout(HEARTBEAT_TICK) {
            Ok(Msg::Op(op, enqueued)) => {
                stats.queue_depth.dec();
                oldest_enqueued = enqueued;
                batch.push(op);
            }
            Err(RecvTimeoutError::Timeout) => continue 'serve,
            Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => break 'serve,
        }
        // Fill the rest of the window: up to max_batch ops or batch_window
        // elapsed, whichever comes first.
        let window_closes = Instant::now() + config.batch_window;
        while batch.len() < config.max_batch {
            let now = Instant::now();
            let Some(remaining) = window_closes
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(Msg::Op(op, _enqueued)) => {
                    stats.queue_depth.dec();
                    batch.push(op);
                }
                Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
            }
        }

        let batch_span = tdb_obs::trace::span("serve/batch");
        let consumed = batch.len() as u64;
        let cancelled = batch.coalesce() as u64;
        let window = cover.apply(&batch);
        batch.clear();
        batches_since_minimize += 1;
        health.batch_applied();
        if config.minimize_every > 0 && batches_since_minimize >= config.minimize_every {
            let pruned = cover.minimize();
            stats.pruned.add(pruned as u64);
            stats.minimizes.inc();
            batches_since_minimize = 0;
            health.minimized();
            tdb_obs::event!(
                tdb_obs::Level::Debug,
                "serve/minimize",
                pruned = pruned,
                epoch = epoch + 1
            );
        }

        epoch += 1;
        snapshots.publish(CoverSnapshot::new(epoch, cover.state()));
        health.published();
        drop(batch_span);
        epoch_latency.record(oldest_enqueued.elapsed());
        stats.applied.add(consumed);
        stats.coalesced.add(cancelled);
        stats.batches.inc();
        stats.updates.add(window.updates());
        stats.breakers_added.add(window.breakers_added);
        if shutting_down {
            break 'serve;
        }
    }
    // Final epoch: leave the last published snapshot consistent with the
    // returned engine (a closing minimize also sheds leftover redundancy).
    if cover.is_dirty() {
        let pruned = cover.minimize();
        stats.pruned.add(pruned as u64);
        stats.minimizes.inc();
        snapshots.publish(CoverSnapshot::new(epoch + 1, cover.state()));
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{Algorithm, Solver};
    use tdb_cycle::HopConstraint;
    use tdb_dynamic::SolveDynamic;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::GraphView;

    fn engine_over(edges: &[(VertexId, VertexId)], k: usize, config: EngineConfig) -> CoverEngine {
        let d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(graph_from_edges(edges), &HopConstraint::new(k))
            .unwrap();
        CoverEngine::start(d, config)
    }

    fn wait_for_epoch(snapshots: &SnapshotCell, at_least: u64) -> u64 {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let e = snapshots.epoch();
            if e >= at_least {
                return e;
            }
            assert!(
                Instant::now() < deadline,
                "no epoch >= {at_least} published"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn seed_snapshot_is_published_before_any_update() {
        let engine = engine_over(&[(0, 1), (1, 2), (2, 0)], 4, EngineConfig::default());
        let snap = engine.snapshots().load();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.cover().len(), 1);
        assert!(snap.audit_valid());
        engine.shutdown();
    }

    #[test]
    fn updates_flow_through_to_new_epochs() {
        let engine = engine_over(
            &[(0, 1), (1, 2)],
            4,
            EngineConfig {
                batch_window: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let snapshots = engine.snapshots();
        assert!(engine.queue().insert(2, 0)); // closes the triangle
        wait_for_epoch(&snapshots, 1);
        let snap = snapshots.load();
        assert!(snap.graph().contains_edge(2, 0));
        assert_eq!(snap.cover().len(), 1, "insert repair must have run");
        assert!(snap.audit_valid());
        let cover = engine.shutdown();
        assert!(cover.is_valid());
    }

    #[test]
    fn shutdown_drains_queued_updates() {
        let engine = engine_over(
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
            6,
            EngineConfig {
                // Large window: the drain must not wait for it.
                batch_window: Duration::from_secs(5),
                ..Default::default()
            },
        );
        let queue = engine.queue();
        assert!(queue.insert(4, 0));
        assert!(queue.remove(0, 1));
        let cover = engine.shutdown();
        assert!(cover.graph().contains_edge(4, 0));
        assert!(!cover.graph().contains_edge(0, 1));
        assert!(cover.is_valid());
        assert!(!cover.is_dirty(), "closing minimize must run");
    }

    #[test]
    fn stats_count_applied_and_coalesced_ops() {
        let engine = engine_over(
            &[(0, 1), (1, 2)],
            4,
            EngineConfig {
                max_batch: 64,
                batch_window: Duration::from_millis(50),
                ..Default::default()
            },
        );
        let queue = engine.queue();
        // A flap that nets out to nothing new plus one real insert.
        assert!(queue.insert(5, 6));
        assert!(queue.remove(5, 6));
        assert!(queue.insert(5, 6));
        let stats = engine.stats();
        let deadline = Instant::now() + Duration::from_secs(10);
        while stats.applied.get() < 3 {
            assert!(Instant::now() < deadline, "ops not applied");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(stats.coalesced.get() >= 1);
        assert_eq!(stats.enqueued.get(), 3);
        // The engine registry carries the same counters plus batch latency.
        let exposition = engine.registry().render_prometheus();
        assert!(exposition.contains("tdb_serve_ops_enqueued_total 3"));
        assert!(exposition.contains("# TYPE tdb_serve_epoch_publish_seconds histogram"));
        engine.shutdown();
    }

    #[test]
    fn try_send_reports_backpressure_instead_of_blocking() {
        // queue_capacity 1 and a writer that can't drain (it is busy waiting
        // on its window only after the first op, so stuff the queue first).
        let engine = engine_over(
            &[(0, 1)],
            4,
            EngineConfig {
                queue_capacity: 1,
                batch_window: Duration::from_secs(2),
                max_batch: 1024,
                ..Default::default()
            },
        );
        let queue = engine.queue();
        // Fill until try_send refuses; bounded capacity guarantees it happens
        // within capacity + in-flight.
        let mut refused = false;
        for i in 0..64u32 {
            if !queue.try_send(EdgeOp::Insert(i + 10, i + 11)) {
                refused = true;
                break;
            }
        }
        assert!(refused, "a capacity-1 queue must exert backpressure");
        engine.shutdown();
    }
}
