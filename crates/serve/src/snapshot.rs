//! Epoch-published immutable cover snapshots.
//!
//! A [`CoverSnapshot`] is one immutable heap object: the graph and cover
//! captured together from the engine ([`tdb_dynamic::CoverState`]), stamped
//! with a publication epoch and enriched with per-breaker statistics. The
//! single writer publishes snapshots into a [`SnapshotCell`] by swapping an
//! `Arc` pointer; any number of readers load the current pointer and then
//! query their copy with no further synchronization.
//!
//! # Why readers can never observe a torn state
//!
//! * Graph and cover are cloned from the engine *between* updates, so every
//!   snapshot satisfies the engine invariant — the cover is valid for exactly
//!   the graph it is paired with.
//! * The pair lives in one `Arc`; publication replaces the pointer, never the
//!   pointee. A reader holds either the old object or the new one, whole.
//! * Epochs are assigned by the single writer, incremented once per
//!   publication, so the epoch sequence any one reader observes is monotone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use tdb_core::request::{BREAKER_CYCLE_CAP, DEFAULT_RESIDUAL_CAP};
use tdb_core::CycleCover;
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::reach::{BoundedBfs, Direction};
use tdb_cycle::HopConstraint;
use tdb_dynamic::{CoverState, UpdateMetrics};
use tdb_graph::{ActiveSet, CsrGraph, DeltaGraph, GraphView, VertexId};

/// Degree statistics of one cover vertex at publication time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStat {
    /// The cover vertex.
    pub vertex: VertexId,
    /// Its out-degree in the snapshot graph.
    pub out_deg: u32,
    /// Its in-degree in the snapshot graph.
    pub in_deg: u32,
}

impl BreakerStat {
    /// Total degree (`out + in`) — the service's proxy for how central the
    /// breaker is (hubs intersect many cycles).
    pub fn degree(&self) -> u32 {
        self.out_deg + self.in_deg
    }
}

/// One immutable published state of the service: graph + cover + metadata,
/// consistent by construction.
#[derive(Debug, Clone)]
pub struct CoverSnapshot {
    epoch: u64,
    state: CoverState,
    breakers: Vec<BreakerStat>,
    /// Lazily materialized CSR copy of the snapshot graph, built once on the
    /// first `EXPLAIN?` / `RESIDUAL?` query against this epoch and shared by
    /// all subsequent ones (the snapshot itself is immutable).
    materialized: OnceLock<Arc<CsrGraph>>,
}

/// The `EXPLAIN? v` answer computed against one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainAnswer {
    /// Whether `v` is in the snapshot cover.
    pub in_cover: bool,
    /// The vertex's cost under the snapshot's cost model.
    pub cost: u64,
    /// Hop-constrained cycles through `v` that no *other* cover vertex
    /// breaks — the vertex's witness count (0 for non-cover vertices that
    /// are fully shadowed by the cover).
    pub cycles_through: u64,
    /// The enumeration hit its cap; `cycles_through` is a lower bound.
    pub truncated: bool,
}

/// The `RESIDUAL?` answer computed against one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidualAnswer {
    /// Constrained cycles the snapshot cover does NOT break (0 for a valid
    /// cover — the resident engine's invariant).
    pub count: u64,
    /// The enumeration hit its cap; `count` is a lower bound.
    pub truncated: bool,
}

impl CoverSnapshot {
    /// Wrap an engine state as the snapshot for `epoch`, computing per-breaker
    /// statistics (one degree lookup per cover vertex).
    pub fn new(epoch: u64, state: CoverState) -> Self {
        let breakers = state
            .cover
            .iter()
            .map(|v| BreakerStat {
                vertex: v,
                out_deg: state.graph.out_deg(v) as u32,
                in_deg: state.graph.in_deg(v) as u32,
            })
            .collect();
        CoverSnapshot {
            epoch,
            state,
            breakers,
            materialized: OnceLock::new(),
        }
    }

    /// The snapshot graph as a clean CSR, materialized once per snapshot and
    /// cached (the backing store of the `EXPLAIN?` / `RESIDUAL?` cycle
    /// enumerations).
    fn materialized(&self) -> &CsrGraph {
        self.materialized
            .get_or_init(|| Arc::new(self.state.graph.materialize()))
    }

    /// Total cover cost under the engine's cost model at capture time
    /// (equals the cover size when costs are uniform).
    pub fn total_cost(&self) -> u64 {
        self.state.cover_cost
    }

    /// The cost of one vertex under the snapshot's cost model.
    pub fn vertex_cost(&self, v: VertexId) -> u64 {
        self.state.costs.cost(v)
    }

    /// The `EXPLAIN? v` query: how load-bearing is `v` for this snapshot?
    ///
    /// Counts the hop-constrained cycles through `v` that no other cover
    /// vertex intersects, by enumerating cycles in the reduced graph with
    /// `v` re-activated — the same witness semantics as
    /// `tdb_core::CoverReport::breaker_stats`. For a cover vertex this is
    /// the number of constrained cycles that would become uncovered if `v`
    /// were released (0 means `v` is redundant right now); for a non-cover
    /// vertex it is 0 whenever the cover is valid. The enumeration is capped
    /// at `tdb_core::request::BREAKER_CYCLE_CAP`; `truncated` marks a hit
    /// cap. Returns `None` for an out-of-range vertex id.
    pub fn explain(&self, v: VertexId) -> Option<ExplainAnswer> {
        let _span = tdb_obs::trace::span("serve/explain");
        let n = self.vertex_count();
        if v as usize >= n {
            return None;
        }
        let g = self.materialized();
        let mut active = self.state.cover.reduced_active_set(n);
        active.activate(v);
        let witnesses = enumerate_cycles(g, &active, &self.state.constraint, BREAKER_CYCLE_CAP);
        // Cycles that avoid v entirely are residual leaks of an invalid or
        // dirty cover, not witnesses for v.
        let through = witnesses.iter().filter(|c| c.contains(&v)).count();
        Some(ExplainAnswer {
            in_cover: self.contains(v),
            cost: self.vertex_cost(v),
            cycles_through: through as u64,
            truncated: witnesses.len() >= BREAKER_CYCLE_CAP,
        })
    }

    /// The `RESIDUAL?` query: count the constrained cycles the snapshot cover
    /// fails to break (capped at `tdb_core::request::DEFAULT_RESIDUAL_CAP`).
    ///
    /// The resident engine repairs after every update, so a healthy service
    /// answers 0 — the verb is the wire-level completeness audit.
    pub fn residual(&self) -> ResidualAnswer {
        let _span = tdb_obs::trace::span("serve/residual");
        let n = self.vertex_count();
        let g = self.materialized();
        let active = self.state.cover.reduced_active_set(n);
        let survivors = enumerate_cycles(g, &active, &self.state.constraint, DEFAULT_RESIDUAL_CAP);
        ResidualAnswer {
            count: survivors.len() as u64,
            truncated: survivors.len() >= DEFAULT_RESIDUAL_CAP,
        }
    }

    /// The publication epoch (0 is the seed snapshot, before any update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The captured graph.
    pub fn graph(&self) -> &DeltaGraph {
        &self.state.graph
    }

    /// The captured cover, valid for [`CoverSnapshot::graph`].
    pub fn cover(&self) -> &CycleCover {
        &self.state.cover
    }

    /// The hop constraint the cover maintains.
    pub fn constraint(&self) -> &HopConstraint {
        &self.state.constraint
    }

    /// Whether the engine considered the cover possibly non-minimal when the
    /// snapshot was taken (never invalid).
    pub fn dirty(&self) -> bool {
        self.state.dirty
    }

    /// Engine counters accumulated up to the capture.
    pub fn totals(&self) -> &UpdateMetrics {
        &self.state.totals
    }

    /// Number of vertices of the snapshot graph.
    pub fn vertex_count(&self) -> usize {
        self.state.vertex_count()
    }

    /// Number of edges of the snapshot graph.
    pub fn edge_count(&self) -> usize {
        self.state.edge_count()
    }

    /// Per-breaker degree statistics, in cover order (ascending vertex id).
    pub fn breaker_stats(&self) -> &[BreakerStat] {
        &self.breakers
    }

    /// Whether `v` is in the cover — the `COVER?` query.
    pub fn contains(&self, v: VertexId) -> bool {
        self.state.cover.contains(v)
    }

    /// Full validity audit of the snapshot against its own graph (static
    /// verification pass over a materialized copy; sampled audits only, not
    /// the read hot path).
    pub fn audit_valid(&self) -> bool {
        self.state.is_valid()
    }

    /// The `BREAKERS?` query: cover vertices implicated in hop-constrained
    /// cycles through the directed edge `(u, v)`.
    ///
    /// A cover vertex `w` is reported when `dist(v → w) + dist(w → u) ≤ k−1`
    /// in the snapshot graph, i.e. `w` lies on a closed walk of length ≤ `k`
    /// that uses `(u, v)`. For `w ∈ {u, v}` this degenerates to "some return
    /// path `v ⇝ u` of length ≤ `k−1` exists". Closed *walks* over-approximate
    /// simple cycles, so the answer is a complete candidate set: every breaker
    /// of a constrained simple cycle through the edge is included, and a few
    /// near-misses may be too. The edge itself does not have to be present —
    /// the query also answers the hypothetical "if `(u, v)` appeared, which
    /// suspended vertices would already break its cycles?".
    ///
    /// Cost: two hop-bounded BFS passes plus one distance lookup per cover
    /// vertex, using caller-provided scratch so concurrent readers share
    /// nothing.
    pub fn breakers_through(
        &self,
        scratch: &mut BreakerScratch,
        u: VertexId,
        v: VertexId,
    ) -> Vec<VertexId> {
        let _span = tdb_obs::trace::span("serve/breakers");
        let n = self.vertex_count();
        let k = self.state.constraint.max_hops;
        if u == v || k < 2 || u as usize >= n || v as usize >= n {
            return Vec::new();
        }
        scratch.fit(n);
        let budget = k - 1; // the edge (u, v) itself spends one hop
        {
            let _bfs = tdb_obs::trace::span("serve/bfs_forward");
            scratch.forward.run(
                &self.state.graph,
                &scratch.active,
                v,
                budget,
                Direction::Forward,
            );
        }
        {
            let _bfs = tdb_obs::trace::span("serve/bfs_backward");
            scratch.backward.run(
                &self.state.graph,
                &scratch.active,
                u,
                budget,
                Direction::Backward,
            );
        }
        self.state
            .cover
            .iter()
            .filter(
                |&w| match (scratch.forward.distance(w), scratch.backward.distance(w)) {
                    (Some(df), Some(db)) => (df + db) as usize <= budget,
                    _ => false,
                },
            )
            .collect()
    }
}

/// Reusable per-reader scratch for [`CoverSnapshot::breakers_through`].
///
/// Each connection handler owns one, so queries allocate nothing after the
/// first call and readers never contend on shared search state.
#[derive(Debug)]
pub struct BreakerScratch {
    forward: BoundedBfs,
    backward: BoundedBfs,
    active: ActiveSet,
}

impl BreakerScratch {
    /// Scratch sized for graphs with `n` vertices (grows on demand).
    pub fn new(n: usize) -> Self {
        BreakerScratch {
            forward: BoundedBfs::new(n),
            backward: BoundedBfs::new(n),
            active: ActiveSet::all_active(n),
        }
    }

    /// Resize to exactly `n` vertices if the current capacity differs.
    fn fit(&mut self, n: usize) {
        if self.forward.capacity() != n {
            self.forward = BoundedBfs::new(n);
            self.backward = BoundedBfs::new(n);
        }
        if self.active.len() != n {
            self.active = ActiveSet::all_active(n);
        }
    }
}

impl Default for BreakerScratch {
    fn default() -> Self {
        BreakerScratch::new(0)
    }
}

/// The publication point: a single writer swaps `Arc<CoverSnapshot>` pointers
/// in, readers clone the current pointer out.
///
/// The lock guards only the pointer swap (a few machine words); all graph
/// mutation, cycle repair, and snapshot construction happen outside it, so
/// readers are never blocked on the update path — at worst they wait for a
/// competing pointer copy.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<CoverSnapshot>>,
    /// Epoch mirror readable without touching the lock (`STATS` fast path).
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Initialize the cell with a seed snapshot (epoch as stamped).
    pub fn new(seed: CoverSnapshot) -> Self {
        let epoch = seed.epoch();
        SnapshotCell {
            current: RwLock::new(Arc::new(seed)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The most recently published snapshot.
    pub fn load(&self) -> Arc<CoverSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The current epoch without loading the snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new snapshot. Callers (the single writer) must stamp epochs
    /// monotonically; the cell enforces it with a debug assertion.
    pub fn publish(&self, snapshot: CoverSnapshot) {
        let epoch = snapshot.epoch();
        let next = Arc::new(snapshot);
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        debug_assert!(
            epoch >= slot.epoch(),
            "epoch regression: {epoch} < {}",
            slot.epoch()
        );
        *slot = next;
        self.epoch.store(epoch, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{Algorithm, Solver};
    use tdb_dynamic::SolveDynamic;
    use tdb_graph::builder::graph_from_edges;

    fn snapshot_of(edges: &[(VertexId, VertexId)], k: usize, epoch: u64) -> CoverSnapshot {
        let d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(graph_from_edges(edges), &HopConstraint::new(k))
            .unwrap();
        CoverSnapshot::new(epoch, d.state())
    }

    #[test]
    fn snapshot_exposes_consistent_metadata() {
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0)], 4, 3);
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.cover().len(), 1);
        assert_eq!(s.breaker_stats().len(), 1);
        let b = s.breaker_stats()[0];
        assert!(s.contains(b.vertex));
        assert_eq!(b.degree(), 2, "triangle vertices have in=out=1");
        assert!(s.audit_valid());
    }

    #[test]
    fn breakers_through_reports_cover_vertices_on_the_cycle() {
        // Two triangles sharing vertex 2; cover = {2}.
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)], 4, 1);
        assert_eq!(s.cover().as_slice(), &[2]);
        let mut scratch = BreakerScratch::default();
        // Edge (1, 2): the cycle 0 -> 1 -> 2 -> 0 passes through breaker 2.
        assert_eq!(s.breakers_through(&mut scratch, 1, 2), vec![2]);
        // Edge (3, 4) of the second triangle: breaker 2 again.
        assert_eq!(s.breakers_through(&mut scratch, 3, 4), vec![2]);
        // Hypothetical edge (4, 0): closing walk 0 ⇝ 4 needs 0->1->2->3->4,
        // 4 hops + the edge = 5 > k = 4, so no breaker is implicated.
        assert_eq!(
            s.breakers_through(&mut scratch, 4, 0),
            Vec::<VertexId>::new()
        );
        // Degenerate inputs.
        assert!(s.breakers_through(&mut scratch, 1, 1).is_empty());
        assert!(s.breakers_through(&mut scratch, 0, 99).is_empty());
    }

    #[test]
    fn explain_counts_witness_cycles_and_costs() {
        // Two triangles sharing vertex 2; cover = {2}.
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)], 4, 1);
        assert_eq!(s.cover().as_slice(), &[2]);
        assert_eq!(s.total_cost(), 1, "uniform costs: total = cover size");
        let e = s.explain(2).unwrap();
        assert!(e.in_cover);
        assert_eq!(e.cost, 1);
        assert_eq!(e.cycles_through, 2, "vertex 2 breaks both triangles");
        assert!(!e.truncated);
        // A non-cover vertex is fully shadowed: zero witnesses.
        let e = s.explain(0).unwrap();
        assert!(!e.in_cover);
        assert_eq!(e.cycles_through, 0);
        // Out-of-range id.
        assert!(s.explain(99).is_none());
    }

    #[test]
    fn residual_is_zero_for_a_valid_snapshot() {
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0)], 4, 0);
        let r = s.residual();
        assert_eq!(r.count, 0);
        assert!(!r.truncated);
        // An (invalidly) empty cover exposes the triangle.
        let d = tdb_dynamic::DynamicCover::from_cover(
            graph_from_edges(&[(0, 1), (1, 2), (2, 0)]),
            tdb_core::CycleCover::from_vertices(vec![]),
            HopConstraint::new(4),
        );
        let bare = CoverSnapshot::new(1, d.state());
        assert_eq!(bare.residual().count, 1);
    }

    #[test]
    fn cell_swaps_whole_snapshots_with_monotone_epochs() {
        let cell = SnapshotCell::new(snapshot_of(&[(0, 1), (1, 0)], 4, 0));
        assert_eq!(cell.epoch(), 0);
        let before = cell.load();
        cell.publish(snapshot_of(&[(0, 1), (1, 2), (2, 0)], 4, 1));
        assert_eq!(cell.epoch(), 1);
        let after = cell.load();
        // The old handle still sees the old, internally consistent state.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.edge_count(), 2);
        assert!(before.audit_valid());
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.edge_count(), 3);
        assert!(after.audit_valid());
    }
}
