//! Epoch-published immutable cover snapshots.
//!
//! A [`CoverSnapshot`] is one immutable heap object: the graph and cover
//! captured together from the engine ([`tdb_dynamic::CoverState`]), stamped
//! with a publication epoch and enriched with per-breaker statistics. The
//! single writer publishes snapshots into a [`SnapshotCell`] by swapping an
//! `Arc` pointer; any number of readers load the current pointer and then
//! query their copy with no further synchronization.
//!
//! # Why readers can never observe a torn state
//!
//! * Graph and cover are cloned from the engine *between* updates, so every
//!   snapshot satisfies the engine invariant — the cover is valid for exactly
//!   the graph it is paired with.
//! * The pair lives in one `Arc`; publication replaces the pointer, never the
//!   pointee. A reader holds either the old object or the new one, whole.
//! * Epochs are assigned by the single writer, incremented once per
//!   publication, so the epoch sequence any one reader observes is monotone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tdb_core::CycleCover;
use tdb_cycle::reach::{BoundedBfs, Direction};
use tdb_cycle::HopConstraint;
use tdb_dynamic::{CoverState, UpdateMetrics};
use tdb_graph::{ActiveSet, DeltaGraph, GraphView, VertexId};

/// Degree statistics of one cover vertex at publication time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStat {
    /// The cover vertex.
    pub vertex: VertexId,
    /// Its out-degree in the snapshot graph.
    pub out_deg: u32,
    /// Its in-degree in the snapshot graph.
    pub in_deg: u32,
}

impl BreakerStat {
    /// Total degree (`out + in`) — the service's proxy for how central the
    /// breaker is (hubs intersect many cycles).
    pub fn degree(&self) -> u32 {
        self.out_deg + self.in_deg
    }
}

/// One immutable published state of the service: graph + cover + metadata,
/// consistent by construction.
#[derive(Debug, Clone)]
pub struct CoverSnapshot {
    epoch: u64,
    state: CoverState,
    breakers: Vec<BreakerStat>,
}

impl CoverSnapshot {
    /// Wrap an engine state as the snapshot for `epoch`, computing per-breaker
    /// statistics (one degree lookup per cover vertex).
    pub fn new(epoch: u64, state: CoverState) -> Self {
        let breakers = state
            .cover
            .iter()
            .map(|v| BreakerStat {
                vertex: v,
                out_deg: state.graph.out_deg(v) as u32,
                in_deg: state.graph.in_deg(v) as u32,
            })
            .collect();
        CoverSnapshot {
            epoch,
            state,
            breakers,
        }
    }

    /// The publication epoch (0 is the seed snapshot, before any update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The captured graph.
    pub fn graph(&self) -> &DeltaGraph {
        &self.state.graph
    }

    /// The captured cover, valid for [`CoverSnapshot::graph`].
    pub fn cover(&self) -> &CycleCover {
        &self.state.cover
    }

    /// The hop constraint the cover maintains.
    pub fn constraint(&self) -> &HopConstraint {
        &self.state.constraint
    }

    /// Whether the engine considered the cover possibly non-minimal when the
    /// snapshot was taken (never invalid).
    pub fn dirty(&self) -> bool {
        self.state.dirty
    }

    /// Engine counters accumulated up to the capture.
    pub fn totals(&self) -> &UpdateMetrics {
        &self.state.totals
    }

    /// Number of vertices of the snapshot graph.
    pub fn vertex_count(&self) -> usize {
        self.state.vertex_count()
    }

    /// Number of edges of the snapshot graph.
    pub fn edge_count(&self) -> usize {
        self.state.edge_count()
    }

    /// Per-breaker degree statistics, in cover order (ascending vertex id).
    pub fn breaker_stats(&self) -> &[BreakerStat] {
        &self.breakers
    }

    /// Whether `v` is in the cover — the `COVER?` query.
    pub fn contains(&self, v: VertexId) -> bool {
        self.state.cover.contains(v)
    }

    /// Full validity audit of the snapshot against its own graph (static
    /// verification pass over a materialized copy; sampled audits only, not
    /// the read hot path).
    pub fn audit_valid(&self) -> bool {
        self.state.is_valid()
    }

    /// The `BREAKERS?` query: cover vertices implicated in hop-constrained
    /// cycles through the directed edge `(u, v)`.
    ///
    /// A cover vertex `w` is reported when `dist(v → w) + dist(w → u) ≤ k−1`
    /// in the snapshot graph, i.e. `w` lies on a closed walk of length ≤ `k`
    /// that uses `(u, v)`. For `w ∈ {u, v}` this degenerates to "some return
    /// path `v ⇝ u` of length ≤ `k−1` exists". Closed *walks* over-approximate
    /// simple cycles, so the answer is a complete candidate set: every breaker
    /// of a constrained simple cycle through the edge is included, and a few
    /// near-misses may be too. The edge itself does not have to be present —
    /// the query also answers the hypothetical "if `(u, v)` appeared, which
    /// suspended vertices would already break its cycles?".
    ///
    /// Cost: two hop-bounded BFS passes plus one distance lookup per cover
    /// vertex, using caller-provided scratch so concurrent readers share
    /// nothing.
    pub fn breakers_through(
        &self,
        scratch: &mut BreakerScratch,
        u: VertexId,
        v: VertexId,
    ) -> Vec<VertexId> {
        let n = self.vertex_count();
        let k = self.state.constraint.max_hops;
        if u == v || k < 2 || u as usize >= n || v as usize >= n {
            return Vec::new();
        }
        scratch.fit(n);
        let budget = k - 1; // the edge (u, v) itself spends one hop
        scratch.forward.run(
            &self.state.graph,
            &scratch.active,
            v,
            budget,
            Direction::Forward,
        );
        scratch.backward.run(
            &self.state.graph,
            &scratch.active,
            u,
            budget,
            Direction::Backward,
        );
        self.state
            .cover
            .iter()
            .filter(
                |&w| match (scratch.forward.distance(w), scratch.backward.distance(w)) {
                    (Some(df), Some(db)) => (df + db) as usize <= budget,
                    _ => false,
                },
            )
            .collect()
    }
}

/// Reusable per-reader scratch for [`CoverSnapshot::breakers_through`].
///
/// Each connection handler owns one, so queries allocate nothing after the
/// first call and readers never contend on shared search state.
#[derive(Debug)]
pub struct BreakerScratch {
    forward: BoundedBfs,
    backward: BoundedBfs,
    active: ActiveSet,
}

impl BreakerScratch {
    /// Scratch sized for graphs with `n` vertices (grows on demand).
    pub fn new(n: usize) -> Self {
        BreakerScratch {
            forward: BoundedBfs::new(n),
            backward: BoundedBfs::new(n),
            active: ActiveSet::all_active(n),
        }
    }

    /// Resize to exactly `n` vertices if the current capacity differs.
    fn fit(&mut self, n: usize) {
        if self.forward.capacity() != n {
            self.forward = BoundedBfs::new(n);
            self.backward = BoundedBfs::new(n);
        }
        if self.active.len() != n {
            self.active = ActiveSet::all_active(n);
        }
    }
}

impl Default for BreakerScratch {
    fn default() -> Self {
        BreakerScratch::new(0)
    }
}

/// The publication point: a single writer swaps `Arc<CoverSnapshot>` pointers
/// in, readers clone the current pointer out.
///
/// The lock guards only the pointer swap (a few machine words); all graph
/// mutation, cycle repair, and snapshot construction happen outside it, so
/// readers are never blocked on the update path — at worst they wait for a
/// competing pointer copy.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<CoverSnapshot>>,
    /// Epoch mirror readable without touching the lock (`STATS` fast path).
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Initialize the cell with a seed snapshot (epoch as stamped).
    pub fn new(seed: CoverSnapshot) -> Self {
        let epoch = seed.epoch();
        SnapshotCell {
            current: RwLock::new(Arc::new(seed)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The most recently published snapshot.
    pub fn load(&self) -> Arc<CoverSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The current epoch without loading the snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new snapshot. Callers (the single writer) must stamp epochs
    /// monotonically; the cell enforces it with a debug assertion.
    pub fn publish(&self, snapshot: CoverSnapshot) {
        let epoch = snapshot.epoch();
        let next = Arc::new(snapshot);
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        debug_assert!(
            epoch >= slot.epoch(),
            "epoch regression: {epoch} < {}",
            slot.epoch()
        );
        *slot = next;
        self.epoch.store(epoch, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::{Algorithm, Solver};
    use tdb_dynamic::SolveDynamic;
    use tdb_graph::builder::graph_from_edges;

    fn snapshot_of(edges: &[(VertexId, VertexId)], k: usize, epoch: u64) -> CoverSnapshot {
        let d = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(graph_from_edges(edges), &HopConstraint::new(k))
            .unwrap();
        CoverSnapshot::new(epoch, d.state())
    }

    #[test]
    fn snapshot_exposes_consistent_metadata() {
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0)], 4, 3);
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.cover().len(), 1);
        assert_eq!(s.breaker_stats().len(), 1);
        let b = s.breaker_stats()[0];
        assert!(s.contains(b.vertex));
        assert_eq!(b.degree(), 2, "triangle vertices have in=out=1");
        assert!(s.audit_valid());
    }

    #[test]
    fn breakers_through_reports_cover_vertices_on_the_cycle() {
        // Two triangles sharing vertex 2; cover = {2}.
        let s = snapshot_of(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)], 4, 1);
        assert_eq!(s.cover().as_slice(), &[2]);
        let mut scratch = BreakerScratch::default();
        // Edge (1, 2): the cycle 0 -> 1 -> 2 -> 0 passes through breaker 2.
        assert_eq!(s.breakers_through(&mut scratch, 1, 2), vec![2]);
        // Edge (3, 4) of the second triangle: breaker 2 again.
        assert_eq!(s.breakers_through(&mut scratch, 3, 4), vec![2]);
        // Hypothetical edge (4, 0): closing walk 0 ⇝ 4 needs 0->1->2->3->4,
        // 4 hops + the edge = 5 > k = 4, so no breaker is implicated.
        assert_eq!(
            s.breakers_through(&mut scratch, 4, 0),
            Vec::<VertexId>::new()
        );
        // Degenerate inputs.
        assert!(s.breakers_through(&mut scratch, 1, 1).is_empty());
        assert!(s.breakers_through(&mut scratch, 0, 99).is_empty());
    }

    #[test]
    fn cell_swaps_whole_snapshots_with_monotone_epochs() {
        let cell = SnapshotCell::new(snapshot_of(&[(0, 1), (1, 0)], 4, 0));
        assert_eq!(cell.epoch(), 0);
        let before = cell.load();
        cell.publish(snapshot_of(&[(0, 1), (1, 2), (2, 0)], 4, 1));
        assert_eq!(cell.epoch(), 1);
        let after = cell.load();
        // The old handle still sees the old, internally consistent state.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.edge_count(), 2);
        assert!(before.audit_valid());
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.edge_count(), 3);
        assert!(after.audit_valid());
    }
}
