//! The health/watchdog subsystem: a monitor the writer loop heartbeats into
//! and the transport layer evaluates on demand (`HEALTH?`, `GET /healthz`).
//!
//! The monitor tracks four signals:
//!
//! * **writer heartbeat age** — the writer loop beats every tick even when
//!   idle ([`crate::engine`] uses a bounded `recv_timeout`), so a heartbeat
//!   older than [`HealthConfig::stall_after`] means the writer thread is
//!   wedged (or a repair is pathologically long): status `stalled`.
//! * **update-queue saturation** — depth at or above
//!   [`HealthConfig::queue_warn_pct`] percent of capacity: `degraded`
//!   (producers are about to block).
//! * **epoch-publish staleness** — operations are pending but no epoch has
//!   been published for [`HealthConfig::publish_stale_after`]: `degraded`.
//! * **minimize cadence** — periodic minimization configured but more than
//!   [`HealthConfig::minimize_overdue_factor`] × `minimize_every` batches
//!   have run without one: `degraded` (cover quality is drifting).
//!
//! Reasons are stable machine-readable codes ([`reasons`]); the numeric
//! evidence travels alongside in the [`HealthReport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tdb_obs::Gauge;

/// Stable reason codes a [`HealthReport`] can carry.
pub mod reasons {
    /// Writer heartbeat older than [`super::HealthConfig::stall_after`].
    pub const WRITER_STALLED: &str = "writer_stalled";
    /// Update queue at or above the warning fraction of its capacity.
    pub const QUEUE_SATURATED: &str = "queue_saturated";
    /// Operations pending but no epoch published recently.
    pub const PUBLISH_STALE: &str = "publish_stale";
    /// Periodic minimization overdue.
    pub const MINIMIZE_OVERDUE: &str = "minimize_overdue";
}

/// Watchdog thresholds (part of [`crate::EngineConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Heartbeat age beyond which the writer counts as stalled.
    pub stall_after: Duration,
    /// Maximum publish age tolerated while operations are pending.
    pub publish_stale_after: Duration,
    /// Queue-depth percentage of capacity at which saturation is flagged.
    pub queue_warn_pct: u32,
    /// Flag `minimize_overdue` after this many times `minimize_every`
    /// batches without a minimize pass.
    pub minimize_overdue_factor: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_after: Duration::from_secs(3),
            publish_stale_after: Duration::from_secs(1),
            queue_warn_pct: 75,
            minimize_overdue_factor: 4,
        }
    }
}

/// Overall classification of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// All signals within thresholds.
    Ok,
    /// Serving, but at least one signal crossed its warning threshold.
    Degraded,
    /// The writer thread is not making progress.
    Stalled,
}

impl HealthStatus {
    /// Lower-case wire name (`ok` / `degraded` / `stalled`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Stalled => "stalled",
        }
    }
}

/// One point-in-time evaluation of the monitor.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Overall classification.
    pub status: HealthStatus,
    /// Machine-readable reason codes (see [`reasons`]); empty when `Ok`.
    pub reasons: Vec<&'static str>,
    /// Age of the writer's last heartbeat.
    pub heartbeat_age: Duration,
    /// Age of the last published epoch.
    pub publish_age: Duration,
    /// Update-queue depth at evaluation time.
    pub queue_depth: i64,
    /// Update-queue capacity.
    pub queue_capacity: usize,
    /// Batches applied since the last minimize pass.
    pub batches_since_minimize: u64,
}

/// Shared between the writer loop (producer of heartbeats and publication
/// stamps) and the transport layer (evaluator).
#[derive(Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    queue_capacity: usize,
    minimize_every: usize,
    queue_depth: Gauge,
    started: Instant,
    heartbeat_ns: AtomicU64,
    last_publish_ns: AtomicU64,
    batches_since_minimize: AtomicU64,
}

impl HealthMonitor {
    /// A monitor for an engine with the given queue shape; `queue_depth` is
    /// the engine's live depth gauge. The heartbeat and publish stamps start
    /// "fresh" so a just-started engine evaluates `ok`.
    pub fn new(
        config: HealthConfig,
        queue_capacity: usize,
        minimize_every: usize,
        queue_depth: Gauge,
    ) -> Self {
        HealthMonitor {
            config,
            queue_capacity,
            minimize_every,
            queue_depth,
            started: Instant::now(),
            heartbeat_ns: AtomicU64::new(0),
            last_publish_ns: AtomicU64::new(0),
            batches_since_minimize: AtomicU64::new(0),
        }
    }

    /// The monitor's thresholds.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Writer-loop heartbeat: called every tick, busy or idle.
    pub fn beat(&self) {
        self.heartbeat_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    /// Stamp an epoch publication.
    pub fn published(&self) {
        self.last_publish_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    /// Count one applied batch (towards the minimize-cadence signal).
    pub fn batch_applied(&self) {
        self.batches_since_minimize.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset the cadence counter after a minimize pass.
    pub fn minimized(&self) {
        self.batches_since_minimize.store(0, Ordering::Relaxed);
    }

    fn age_of(&self, stamp_ns: u64) -> Duration {
        Duration::from_nanos(self.now_ns().saturating_sub(stamp_ns))
    }

    /// Classify the engine right now.
    pub fn evaluate(&self) -> HealthReport {
        let heartbeat_age = self.age_of(self.heartbeat_ns.load(Ordering::Relaxed));
        let publish_age = self.age_of(self.last_publish_ns.load(Ordering::Relaxed));
        let queue_depth = self.queue_depth.get();
        let batches_since_minimize = self.batches_since_minimize.load(Ordering::Relaxed);

        let mut reason_codes = Vec::new();
        if heartbeat_age > self.config.stall_after {
            reason_codes.push(reasons::WRITER_STALLED);
        }
        if queue_depth.max(0) as u128 * 100
            >= self.queue_capacity as u128 * self.config.queue_warn_pct as u128
            && queue_depth > 0
        {
            reason_codes.push(reasons::QUEUE_SATURATED);
        }
        if queue_depth > 0 && publish_age > self.config.publish_stale_after {
            reason_codes.push(reasons::PUBLISH_STALE);
        }
        if self.minimize_every > 0
            && batches_since_minimize
                > self.config.minimize_overdue_factor as u64 * self.minimize_every as u64
        {
            reason_codes.push(reasons::MINIMIZE_OVERDUE);
        }

        let status = if reason_codes.contains(&reasons::WRITER_STALLED) {
            HealthStatus::Stalled
        } else if reason_codes.is_empty() {
            HealthStatus::Ok
        } else {
            HealthStatus::Degraded
        };
        HealthReport {
            status,
            reasons: reason_codes,
            heartbeat_age,
            publish_age,
            queue_depth,
            queue_capacity: self.queue_capacity,
            batches_since_minimize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(config: HealthConfig) -> HealthMonitor {
        HealthMonitor::new(config, 100, 8, Gauge::default())
    }

    #[test]
    fn fresh_monitor_is_ok() {
        let m = monitor(HealthConfig::default());
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.reasons.is_empty());
        assert_eq!(report.queue_capacity, 100);
    }

    #[test]
    fn old_heartbeat_classifies_stalled_and_a_beat_recovers() {
        let m = monitor(HealthConfig {
            stall_after: Duration::ZERO,
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Stalled);
        assert_eq!(report.reasons, vec![reasons::WRITER_STALLED]);
        // Any stall threshold above the beat-to-evaluate gap recovers.
        let m = monitor(HealthConfig::default());
        m.beat();
        assert_eq!(m.evaluate().status, HealthStatus::Ok);
    }

    #[test]
    fn queue_saturation_degrades() {
        let m = monitor(HealthConfig::default());
        m.beat();
        m.queue_depth.set(75); // exactly the 75% threshold of capacity 100
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.reasons.contains(&reasons::QUEUE_SATURATED));
        m.queue_depth.set(74);
        assert_eq!(m.evaluate().status, HealthStatus::Ok);
    }

    #[test]
    fn pending_ops_with_stale_publish_degrade() {
        let m = monitor(HealthConfig {
            publish_stale_after: Duration::ZERO,
            ..Default::default()
        });
        m.beat();
        m.queue_depth.set(1);
        std::thread::sleep(Duration::from_millis(2));
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.reasons.contains(&reasons::PUBLISH_STALE));
        // An empty queue tolerates arbitrary publish age (nothing to do).
        m.queue_depth.set(0);
        m.beat();
        assert_eq!(m.evaluate().status, HealthStatus::Ok);
    }

    #[test]
    fn minimize_cadence_overdue_degrades_and_resets() {
        let m = monitor(HealthConfig::default());
        m.beat();
        // factor 4 × minimize_every 8 = 32 batches tolerated.
        for _ in 0..33 {
            m.batch_applied();
        }
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.reasons.contains(&reasons::MINIMIZE_OVERDUE));
        m.minimized();
        m.beat();
        assert_eq!(m.evaluate().status, HealthStatus::Ok);
    }

    #[test]
    fn stalled_dominates_degraded() {
        let m = monitor(HealthConfig {
            stall_after: Duration::ZERO,
            ..Default::default()
        });
        m.queue_depth.set(100);
        std::thread::sleep(Duration::from_millis(2));
        let report = m.evaluate();
        assert_eq!(report.status, HealthStatus::Stalled);
        assert!(report.reasons.len() >= 2, "{:?}", report.reasons);
    }
}
