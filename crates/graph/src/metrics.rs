//! Graph statistics used to reproduce Table II of the paper and to sanity-check
//! the synthetic dataset proxies against the published numbers.

use crate::Graph;

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average degree `m / n` (the paper's `d_avg`).
    pub average_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with no incident edge at all.
    pub isolated_vertices: usize,
    /// Number of reciprocated edge pairs (2-cycles).
    pub bidirectional_pairs: usize,
    /// Reciprocity: fraction of edges whose reverse is also present.
    pub reciprocity: f64,
}

impl GraphStats {
    /// Render as a single human-readable line, in the format the experiment
    /// harness prints for Table II rows.
    pub fn summary_line(&self, name: &str) -> String {
        format!(
            "{name:<12} |V|={:<12} |E|={:<14} d_avg={:<8.2} max_out={:<8} max_in={:<8} recip={:.3}",
            format_count(self.num_vertices),
            format_count(self.num_edges),
            self.average_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.reciprocity
        )
    }
}

/// Format a count using the paper's K/M/B suffixes.
pub fn format_count(x: usize) -> String {
    if x >= 1_000_000_000 {
        format!("{:.2}B", x as f64 / 1e9)
    } else if x >= 1_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.0}K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

/// Compute summary statistics for a graph.
pub fn graph_stats<G: Graph>(g: &G) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut isolated = 0usize;
    let mut reciprocated_edges = 0usize;
    let mut bidirectional_pairs = 0usize;
    for v in g.vertices() {
        let out_d = g.out_degree(v);
        let in_d = g.in_degree(v);
        max_out = max_out.max(out_d);
        max_in = max_in.max(in_d);
        if out_d == 0 && in_d == 0 {
            isolated += 1;
        }
        for &w in g.out_neighbors(v) {
            if w != v && g.has_edge(w, v) {
                reciprocated_edges += 1;
                if w > v {
                    bidirectional_pairs += 1;
                }
            }
        }
    }
    GraphStats {
        num_vertices: n,
        num_edges: m,
        average_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        isolated_vertices: isolated,
        bidirectional_pairs,
        reciprocity: if m == 0 {
            0.0
        } else {
            reciprocated_edges as f64 / m as f64
        },
    }
}

/// Out-degree histogram: `hist[d]` = number of vertices with out-degree `d`,
/// capped at `max_bucket` (larger degrees land in the last bucket).
pub fn out_degree_histogram<G: Graph>(g: &G, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for v in g.vertices() {
        let d = g.out_degree(v).min(max_bucket);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen::{complete_digraph, directed_cycle};

    #[test]
    fn stats_on_a_cycle() {
        let g = directed_cycle(5);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 5);
        assert!((s.average_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_vertices, 0);
        assert_eq!(s.bidirectional_pairs, 0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn stats_on_complete_graph() {
        let g = complete_digraph(4);
        let s = graph_stats(&g);
        assert_eq!(s.num_edges, 12);
        assert_eq!(s.bidirectional_pairs, 6);
        assert!((s.reciprocity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_are_counted() {
        let g = graph_from_edges(&[(0, 1)]);
        // vertex universe is {0, 1}; add isolated ones explicitly
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(5);
        let g2 = b.build();
        assert_eq!(graph_stats(&g).isolated_vertices, 0);
        assert_eq!(graph_stats(&g2).isolated_vertices, 3);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = complete_digraph(6);
        let hist = out_degree_histogram(&g, 10);
        assert_eq!(hist.iter().sum::<usize>(), 6);
        assert_eq!(hist[5], 6);
    }

    #[test]
    fn histogram_caps_large_degrees() {
        let g = complete_digraph(6);
        let hist = out_degree_histogram(&g, 3);
        assert_eq!(hist[3], 6);
    }

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(format_count(950), "950");
        assert_eq!(format_count(7_000), "7K");
        assert_eq!(format_count(5_100_000), "5.1M");
        assert_eq!(format_count(1_470_000_000), "1.47B");
    }

    #[test]
    fn summary_line_contains_name_and_counts() {
        let s = graph_stats(&directed_cycle(5));
        let line = s.summary_line("WKV");
        assert!(line.contains("WKV"));
        assert!(line.contains("|V|=5"));
    }
}
