//! Strongly connected components (iterative Tarjan) and cycle-vertex pruning.
//!
//! Every simple cycle lies entirely inside one strongly connected component, so
//! vertices whose SCC is a singleton (and which have no self-loop) can never be
//! part of any hop-constrained cycle. The top-down algorithms use this as an
//! optional pre-filter (an ablation in the bench suite): such vertices can be
//! released from the cover without running any cycle search at all.

use crate::types::{VertexId, INVALID_VERTEX};
use crate::view::GraphView;

/// Result of an SCC decomposition.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `component[v]` is the component id of vertex `v` (0-based, reverse
    /// topological order: an edge between components always goes from a higher
    /// id to a lower id is *not* guaranteed by Tarjan; ids are discovery order).
    pub component: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<u32>,
}

impl SccResult {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Whether `u` and `v` are in the same component.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u as usize] == self.component[v as usize]
    }

    /// Size of the component containing `v`.
    pub fn component_size(&self, v: VertexId) -> u32 {
        self.sizes[self.component[v as usize] as usize]
    }

    /// Vertices that can possibly lie on a simple cycle of length `>= 2`:
    /// exactly those whose component has size `>= 2`.
    pub fn cycle_candidates(&self) -> Vec<bool> {
        self.component
            .iter()
            .map(|&c| self.sizes[c as usize] >= 2)
            .collect()
    }

    /// Size of the largest component.
    pub fn largest_component_size(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Compute strongly connected components with an iterative Tarjan algorithm.
///
/// The implementation is fully iterative (explicit DFS stack) so that deep
/// graphs — e.g. long directed paths in the synthetic proxies — cannot overflow
/// the call stack. Generic over [`GraphView`] (every [`crate::Graph`] is one),
/// so the decomposition runs over layered storages such as
/// [`crate::DeltaGraph`] as well as the plain CSR.
pub fn tarjan_scc<V: GraphView>(g: &V) -> SccResult {
    let n = g.vertex_count();
    let mut index = vec![INVALID_VERTEX; n]; // discovery index
    let mut lowlink = vec![0 as VertexId; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![u32::MAX; n];
    let mut sizes: Vec<u32> = Vec::new();

    let mut stack: Vec<VertexId> = Vec::new();
    let mut next_index: VertexId = 0;

    // Explicit DFS frame: (vertex, the rest of its out-neighbor iterator).
    // Frames own the iterators so that view types whose adjacency is merged
    // on the fly (no slices to index into) still traverse in O(m) total.
    let mut call_stack = Vec::new();

    for root in 0..n as VertexId {
        if index[root as usize] != INVALID_VERTEX {
            continue;
        }
        call_stack.push((root, g.out_iter(root)));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some((v, children)) = call_stack.last_mut() {
            let v = *v;
            if let Some(w) = children.next() {
                if index[w as usize] == INVALID_VERTEX {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, g.out_iter(w)));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some((parent, _)) = call_stack.last_mut() {
                    let parent = *parent;
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of a component: pop the stack down to v.
                    let comp_id = sizes.len() as u32;
                    let mut size = 0u32;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = comp_id;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    sizes.push(size);
                }
            }
        }
    }

    SccResult { component, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen::{directed_cycle, directed_path, layered_dag};

    #[test]
    fn cycle_is_one_component() {
        let g = directed_cycle(8);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 1);
        assert_eq!(scc.largest_component_size(), 8);
        assert!(scc.cycle_candidates().iter().all(|&b| b));
    }

    #[test]
    fn path_is_all_singletons() {
        let g = directed_path(6);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 6);
        assert!(scc.cycle_candidates().iter().all(|&b| !b));
    }

    #[test]
    fn dag_has_no_cycle_candidates() {
        let g = layered_dag(4, 3);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 12);
        assert_eq!(scc.largest_component_size(), 1);
    }

    #[test]
    fn two_components_with_bridge() {
        // Two triangles joined by a one-way bridge 2 -> 3.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 2);
        assert!(scc.same_component(0, 1));
        assert!(scc.same_component(3, 5));
        assert!(!scc.same_component(0, 3));
        assert_eq!(scc.component_size(0), 3);
        assert_eq!(scc.component_size(4), 3);
    }

    #[test]
    fn mixed_cycle_and_tail() {
        // 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3 -> 4.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let scc = tarjan_scc(&g);
        let cand = scc.cycle_candidates();
        assert_eq!(cand, vec![true, true, true, false, false]);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-vertex path: a recursive Tarjan would blow the stack here.
        let g = directed_path(200_000);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 200_000);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(&[]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 0);
        assert_eq!(scc.largest_component_size(), 0);
    }

    #[test]
    fn two_cycle_is_a_component_of_size_two() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert!(scc.same_component(0, 1));
        assert_eq!(scc.component_size(0), 2);
        assert_eq!(scc.component_size(2), 1);
    }
}
