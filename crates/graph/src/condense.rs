//! SCC condensation and compact per-component subgraph extraction.
//!
//! Every simple cycle of a directed graph lies entirely inside one strongly
//! connected component: a cycle visits each of its vertices and returns to its
//! start, so all of its vertices are mutually reachable. A hop-constrained
//! cycle cover of `G` is therefore exactly the disjoint union of covers of the
//! non-trivial SCCs of `G` — vertices in trivial (singleton) components can
//! never require covering, and no cover decision in one component can affect
//! another. This module materializes that decomposition:
//!
//! * [`Condensation`] — one SCC pass ([`tarjan_scc`]) plus the bookkeeping a
//!   partitioned solver needs: members of each component in ascending vertex
//!   order, and a **monotone** global→local id remapping per component.
//! * [`Condensation::extract`] — the induced subgraph of one component as a
//!   compact [`CsrGraph`] over local ids `0..size`, with the local→global
//!   table ([`ExtractedComponent::to_global`]) to translate results back.
//!
//! The remapping being monotone (local ids preserve the relative order of
//! global ids) matters for more than aesthetics: the cover algorithms scan
//! vertices and adjacency lists in ascending order, so a solver run on an
//! extracted component makes *exactly* the decisions it would have made for
//! those vertices inside a whole-graph run. The sharded solve path in
//! `tdb-core` relies on this to reproduce unsharded covers bit-for-bit.

use crate::csr::CsrGraph;
use crate::scc::{tarjan_scc, SccResult};
use crate::types::{Edge, VertexId};
use crate::view::GraphView;

/// An SCC decomposition with grouped members and a per-component local-id
/// remapping, ready for subgraph extraction.
#[derive(Debug, Clone)]
pub struct Condensation {
    scc: SccResult,
    /// Vertices grouped by component, ascending within each group.
    members: Vec<VertexId>,
    /// `offsets[c]..offsets[c + 1]` indexes `members` for component `c`.
    offsets: Vec<usize>,
    /// `local_id[v]` is `v`'s rank within its component (its id in the
    /// extracted subgraph).
    local_id: Vec<u32>,
}

impl Condensation {
    /// Run the SCC decomposition of `g` and group the results.
    pub fn of<V: GraphView>(g: &V) -> Self {
        Condensation::from_scc(tarjan_scc(g))
    }

    /// Build the grouping from an already-computed [`SccResult`].
    pub fn from_scc(scc: SccResult) -> Self {
        let n = scc.component.len();
        let num_components = scc.sizes.len();
        let mut offsets = vec![0usize; num_components + 1];
        for (c, &size) in scc.sizes.iter().enumerate() {
            offsets[c + 1] = offsets[c] + size as usize;
        }
        let mut members = vec![0 as VertexId; n];
        let mut local_id = vec![0u32; n];
        let mut cursor = offsets.clone();
        // Ascending vertex iteration keeps each group ascending, which is what
        // makes the global→local remapping monotone.
        for (v, (&c, local)) in scc.component.iter().zip(local_id.iter_mut()).enumerate() {
            let c = c as usize;
            let slot = cursor[c];
            members[slot] = v as VertexId;
            *local = (slot - offsets[c]) as u32;
            cursor[c] += 1;
        }
        Condensation {
            scc,
            members,
            offsets,
            local_id,
        }
    }

    /// The underlying SCC decomposition.
    pub fn scc(&self) -> &SccResult {
        &self.scc
    }

    /// Number of components (trivial ones included).
    pub fn num_components(&self) -> usize {
        self.scc.sizes.len()
    }

    /// Component id of vertex `v`.
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.scc.component[v as usize]
    }

    /// The vertices of component `c`, ascending.
    pub fn members(&self, c: u32) -> &[VertexId] {
        &self.members[self.offsets[c as usize]..self.offsets[c as usize + 1]]
    }

    /// `v`'s id inside its component's extracted subgraph.
    pub fn local_id(&self, v: VertexId) -> u32 {
        self.local_id[v as usize]
    }

    /// Component ids of the non-trivial components (size ≥ 2) — the only ones
    /// that can contain a cycle of length ≥ 2.
    pub fn non_trivial(&self) -> impl Iterator<Item = u32> + '_ {
        self.scc
            .sizes
            .iter()
            .enumerate()
            .filter(|(_, &size)| size >= 2)
            .map(|(c, _)| c as u32)
    }

    /// Number of vertices living in trivial (singleton) components.
    pub fn trivial_vertices(&self) -> usize {
        self.scc
            .sizes
            .iter()
            .filter(|&&size| size < 2)
            .map(|&size| size as usize)
            .sum()
    }

    /// Extract component `c` as a compact subgraph over local ids.
    ///
    /// Edges leaving the component are dropped — they can never be part of a
    /// cycle, so the extracted instance is cycle-equivalent to the component's
    /// place in the whole graph.
    pub fn extract<V: GraphView>(&self, g: &V, c: u32) -> ExtractedComponent {
        let members = self.members(c);
        let mut edges: Vec<Edge> = Vec::new();
        for (local_u, &u) in members.iter().enumerate() {
            for w in g.out_iter(u) {
                if self.scc.component[w as usize] == c {
                    edges.push(Edge::new(local_u as VertexId, self.local_id[w as usize]));
                }
            }
        }
        ExtractedComponent {
            graph: CsrGraph::from_edges(members.len(), &mut edges),
            to_global: members.to_vec(),
            component: c,
        }
    }
}

/// One component of a [`Condensation`], extracted as a compact graph.
#[derive(Debug, Clone)]
pub struct ExtractedComponent {
    /// The induced subgraph over local ids `0..to_global.len()`.
    pub graph: CsrGraph,
    /// `to_global[local]` is the original vertex id (ascending).
    pub to_global: Vec<VertexId>,
    /// The component id this subgraph was extracted from.
    pub component: u32,
}

impl ExtractedComponent {
    /// Translate a local vertex id back to the whole-graph id.
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.to_global[local as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen::{directed_cycle, directed_path, erdos_renyi_gnm};
    use crate::Graph;

    /// Two triangles bridged one-way plus a tail: components {0,1,2}, {3,4,5},
    /// and trivial {6}.
    fn two_triangles_and_tail() -> CsrGraph {
        graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
        ])
    }

    #[test]
    fn grouping_is_consistent_with_scc() {
        let g = two_triangles_and_tail();
        let cond = Condensation::of(&g);
        assert_eq!(cond.num_components(), 3);
        assert_eq!(cond.non_trivial().count(), 2);
        assert_eq!(cond.trivial_vertices(), 1);
        for v in g.vertices() {
            let c = cond.component_of(v);
            let members = cond.members(c);
            assert!(members.contains(&v));
            assert_eq!(members[cond.local_id(v) as usize], v);
        }
    }

    #[test]
    fn members_are_ascending_and_remap_is_monotone() {
        let g = erdos_renyi_gnm(60, 200, 11);
        let cond = Condensation::of(&g);
        for c in 0..cond.num_components() as u32 {
            let members = cond.members(c);
            assert!(members.windows(2).all(|w| w[0] < w[1]), "component {c}");
            for (rank, &v) in members.iter().enumerate() {
                assert_eq!(cond.local_id(v) as usize, rank);
            }
        }
    }

    #[test]
    fn extraction_preserves_intra_component_edges_exactly() {
        let g = two_triangles_and_tail();
        let cond = Condensation::of(&g);
        let mut seen_components = 0;
        for c in cond.non_trivial() {
            seen_components += 1;
            let ext = cond.extract(&g, c);
            assert_eq!(ext.component, c);
            assert_eq!(ext.graph.num_vertices(), 3);
            assert_eq!(ext.graph.num_edges(), 3, "the bridge must be dropped");
            // Every extracted edge maps back to an original edge and vice versa.
            for e in ext.graph.edges() {
                assert!(g.has_edge(ext.to_global(e.source), ext.to_global(e.target)));
            }
            for &u in cond.members(c) {
                for &w in g.out_neighbors(u) {
                    if cond.component_of(w) == c {
                        assert!(ext.graph.has_edge(cond.local_id(u), cond.local_id(w)));
                    }
                }
            }
        }
        assert_eq!(seen_components, 2);
    }

    #[test]
    fn single_scc_extracts_to_an_isomorphic_copy() {
        let g = directed_cycle(7);
        let cond = Condensation::of(&g);
        let comps: Vec<u32> = cond.non_trivial().collect();
        assert_eq!(comps.len(), 1);
        let ext = cond.extract(&g, comps[0]);
        assert_eq!(ext.graph.num_vertices(), 7);
        assert_eq!(ext.graph.num_edges(), 7);
        // Monotone remap of a full component is the identity.
        assert_eq!(ext.to_global, (0..7).collect::<Vec<VertexId>>());
    }

    #[test]
    fn all_trivial_graph_has_no_non_trivial_components() {
        let g = directed_path(9);
        let cond = Condensation::of(&g);
        assert_eq!(cond.non_trivial().count(), 0);
        assert_eq!(cond.trivial_vertices(), 9);
    }

    #[test]
    fn empty_graph_condenses_to_nothing() {
        let g = graph_from_edges(&[]);
        let cond = Condensation::of(&g);
        assert_eq!(cond.num_components(), 0);
        assert_eq!(cond.trivial_vertices(), 0);
        assert_eq!(cond.non_trivial().count(), 0);
    }

    #[test]
    fn random_graphs_partition_every_edge_or_drop_it_across_components() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(50, 180, seed);
            let cond = Condensation::of(&g);
            let mut intra = 0usize;
            for e in g.edges() {
                if cond.component_of(e.source) == cond.component_of(e.target) {
                    intra += 1;
                }
            }
            let extracted: usize = cond
                .non_trivial()
                .map(|c| cond.extract(&g, c).graph.num_edges())
                .sum();
            // Intra-component edges of trivial components are self-loops only;
            // the generators produce none, so the counts must match.
            assert_eq!(extracted, intra, "seed {seed}");
            // And the extracted vertex counts tile the non-trivial vertex set.
            let vertices: usize = cond.non_trivial().map(|c| cond.members(c).len()).sum();
            assert_eq!(vertices + cond.trivial_vertices(), g.num_vertices());
        }
    }
}
