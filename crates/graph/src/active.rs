//! Vertex activation masks — the cheap "vertex deletion" used by every cover
//! algorithm in the workspace.
//!
//! The paper's algorithms repeatedly work on *reduced* graphs:
//!
//! * the bottom-up approach (Algorithm 4) removes the in- and out-edges of every
//!   chosen cover vertex,
//! * the minimal-pruning pass (Algorithm 7) searches `G − R + {v}`,
//! * the top-down approach (Algorithm 8) grows `G0` by re-inserting the edges of
//!   vertices that were released from the cover.
//!
//! Materializing those subgraphs would cost `O(m)` per update. Instead, all of
//! them are expressed as an [`ActiveSet`]: a boolean mask over vertices. An edge
//! `(u, v)` is *present* in the reduced graph iff both `u` and `v` are active.
//! Deactivating a vertex therefore removes exactly its in- and out-edges, which
//! is precisely the operation the paper needs.
//!
//! The mask is backed by [`FixedBitSet`](crate::scratch::FixedBitSet): a
//! single boxed `u64`-word slice, 8× denser than the former `Vec<bool>` —
//! which matters because the hot searcher loops consult the mask on every
//! edge scan, and at scale the whole mask stays cache-resident.

use crate::scratch::FixedBitSet;
use crate::types::VertexId;

/// Dense activation mask over the vertices of a graph.
///
/// ```
/// use tdb_graph::ActiveSet;
///
/// let mut a = ActiveSet::all_active(4);
/// assert_eq!(a.num_active(), 4);
/// a.deactivate(2);
/// assert!(!a.is_active(2));
/// assert_eq!(a.num_active(), 3);
/// a.activate(2);
/// assert_eq!(a.num_active(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    active: FixedBitSet,
    num_active: usize,
}

impl ActiveSet {
    /// All vertices active.
    pub fn all_active(n: usize) -> Self {
        ActiveSet {
            active: FixedBitSet::all_set(n),
            num_active: n,
        }
    }

    /// No vertex active.
    pub fn all_inactive(n: usize) -> Self {
        ActiveSet {
            active: FixedBitSet::new(n),
            num_active: 0,
        }
    }

    /// Build from an explicit mask.
    pub fn from_mask(mask: Vec<bool>) -> Self {
        let mut active = FixedBitSet::new(mask.len());
        let mut num_active = 0;
        for (i, &a) in mask.iter().enumerate() {
            if a {
                active.insert(i);
                num_active += 1;
            }
        }
        ActiveSet { active, num_active }
    }

    /// Number of vertices covered by the mask (active + inactive).
    #[inline]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether the mask is empty (zero vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Whether vertex `v` is active.
    #[inline]
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active.contains(v as usize)
    }

    /// Number of active vertices.
    #[inline]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Number of inactive vertices.
    #[inline]
    pub fn num_inactive(&self) -> usize {
        self.active.len() - self.num_active
    }

    /// Activate `v`. Returns `true` if the state changed.
    #[inline]
    pub fn activate(&mut self, v: VertexId) -> bool {
        let changed = self.active.insert(v as usize);
        if changed {
            self.num_active += 1;
        }
        changed
    }

    /// Deactivate `v`. Returns `true` if the state changed.
    #[inline]
    pub fn deactivate(&mut self, v: VertexId) -> bool {
        let changed = self.active.remove(v as usize);
        if changed {
            self.num_active -= 1;
        }
        changed
    }

    /// Set the state of `v` explicitly.
    #[inline]
    pub fn set(&mut self, v: VertexId, active: bool) {
        if active {
            self.activate(v);
        } else {
            self.deactivate(v);
        }
    }

    /// Iterator over the active vertex ids in ascending order.
    pub fn iter_active(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.active.iter_ones().map(|i| i as VertexId)
    }

    /// Iterator over the inactive vertex ids in ascending order.
    pub fn iter_inactive(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.active.len() as VertexId).filter(move |&v| !self.is_active(v))
    }

    /// Materialize the mask as a `Vec<bool>` (allocates; not for hot paths).
    pub fn to_mask(&self) -> Vec<bool> {
        (0..self.active.len())
            .map(|i| self.active.contains(i))
            .collect()
    }

    /// Consume into a `Vec<bool>` mask.
    pub fn into_mask(self) -> Vec<bool> {
        self.to_mask()
    }

    /// Grow the mask to at least `n` vertices, new vertices `active`.
    /// No-op when already at least `n` long.
    pub fn ensure_len(&mut self, n: usize, active: bool) {
        let old = self.active.len();
        if n > old {
            self.active.grow(n, active);
            if active {
                self.num_active += n - old;
            }
        }
    }

    /// Reset every vertex to active.
    pub fn reset_all_active(&mut self) {
        self.active.set_all();
        self.num_active = self.active.len();
    }

    /// Reset every vertex to inactive.
    pub fn reset_all_inactive(&mut self) {
        self.active.clear_all();
        self.num_active = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_bookkeeping_is_exact() {
        let mut a = ActiveSet::all_active(5);
        assert_eq!(a.num_active(), 5);
        assert!(a.deactivate(3));
        assert!(!a.deactivate(3)); // already inactive
        assert_eq!(a.num_active(), 4);
        assert_eq!(a.num_inactive(), 1);
        assert!(a.activate(3));
        assert!(!a.activate(3));
        assert_eq!(a.num_active(), 5);
    }

    #[test]
    fn from_mask_counts_active() {
        let a = ActiveSet::from_mask(vec![true, false, true, false]);
        assert_eq!(a.num_active(), 2);
        assert_eq!(a.iter_active().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(a.iter_inactive().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn all_inactive_then_activate() {
        let mut a = ActiveSet::all_inactive(3);
        assert_eq!(a.num_active(), 0);
        a.set(1, true);
        assert!(a.is_active(1));
        assert!(!a.is_active(0));
        assert_eq!(a.num_active(), 1);
    }

    #[test]
    fn resets_restore_uniform_state() {
        let mut a = ActiveSet::all_active(4);
        a.deactivate(0);
        a.deactivate(2);
        a.reset_all_active();
        assert_eq!(a.num_active(), 4);
        a.reset_all_inactive();
        assert_eq!(a.num_active(), 0);
        assert!(a.iter_active().next().is_none());
    }

    #[test]
    fn empty_mask_behaves() {
        let a = ActiveSet::all_active(0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.num_active(), 0);
    }

    #[test]
    fn into_mask_round_trips() {
        let a = ActiveSet::from_mask(vec![false, true]);
        let mask = a.clone().into_mask();
        assert_eq!(ActiveSet::from_mask(mask), a);
        assert_eq!(a.to_mask(), vec![false, true]);
    }

    #[test]
    fn ensure_len_grows_in_place() {
        let mut a = ActiveSet::all_active(3);
        a.deactivate(1);
        a.ensure_len(6, true);
        assert_eq!(a.len(), 6);
        assert_eq!(a.num_active(), 5);
        assert!(!a.is_active(1));
        assert!(a.is_active(5));
        a.ensure_len(4, false); // shrink request: no-op
        assert_eq!(a.len(), 6);

        let mut b = ActiveSet::all_active(2);
        b.ensure_len(4, false);
        assert_eq!(b.num_active(), 2);
        assert!(!b.is_active(3));
    }

    #[test]
    fn large_masks_spill_past_128_vertices() {
        let mut a = ActiveSet::all_active(300);
        assert_eq!(a.num_active(), 300);
        a.deactivate(129);
        a.deactivate(299);
        assert_eq!(a.num_active(), 298);
        assert_eq!(a.iter_inactive().collect::<Vec<_>>(), vec![129, 299]);
        assert!(a.iter_active().all(|v| v != 129 && v != 299));
    }
}
