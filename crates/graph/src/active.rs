//! Vertex activation masks — the cheap "vertex deletion" used by every cover
//! algorithm in the workspace.
//!
//! The paper's algorithms repeatedly work on *reduced* graphs:
//!
//! * the bottom-up approach (Algorithm 4) removes the in- and out-edges of every
//!   chosen cover vertex,
//! * the minimal-pruning pass (Algorithm 7) searches `G − R + {v}`,
//! * the top-down approach (Algorithm 8) grows `G0` by re-inserting the edges of
//!   vertices that were released from the cover.
//!
//! Materializing those subgraphs would cost `O(m)` per update. Instead, all of
//! them are expressed as an [`ActiveSet`]: a boolean mask over vertices. An edge
//! `(u, v)` is *present* in the reduced graph iff both `u` and `v` are active.
//! Deactivating a vertex therefore removes exactly its in- and out-edges, which
//! is precisely the operation the paper needs.

use crate::types::VertexId;

/// Dense boolean activation mask over the vertices of a graph.
///
/// ```
/// use tdb_graph::ActiveSet;
///
/// let mut a = ActiveSet::all_active(4);
/// assert_eq!(a.num_active(), 4);
/// a.deactivate(2);
/// assert!(!a.is_active(2));
/// assert_eq!(a.num_active(), 3);
/// a.activate(2);
/// assert_eq!(a.num_active(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    active: Vec<bool>,
    num_active: usize,
}

impl ActiveSet {
    /// All vertices active.
    pub fn all_active(n: usize) -> Self {
        ActiveSet {
            active: vec![true; n],
            num_active: n,
        }
    }

    /// No vertex active.
    pub fn all_inactive(n: usize) -> Self {
        ActiveSet {
            active: vec![false; n],
            num_active: 0,
        }
    }

    /// Build from an explicit mask.
    pub fn from_mask(mask: Vec<bool>) -> Self {
        let num_active = mask.iter().filter(|&&b| b).count();
        ActiveSet {
            active: mask,
            num_active,
        }
    }

    /// Number of vertices covered by the mask (active + inactive).
    #[inline]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether the mask is empty (zero vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Whether vertex `v` is active.
    #[inline]
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active[v as usize]
    }

    /// Number of active vertices.
    #[inline]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Number of inactive vertices.
    #[inline]
    pub fn num_inactive(&self) -> usize {
        self.active.len() - self.num_active
    }

    /// Activate `v`. Returns `true` if the state changed.
    #[inline]
    pub fn activate(&mut self, v: VertexId) -> bool {
        let slot = &mut self.active[v as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.num_active += 1;
            true
        }
    }

    /// Deactivate `v`. Returns `true` if the state changed.
    #[inline]
    pub fn deactivate(&mut self, v: VertexId) -> bool {
        let slot = &mut self.active[v as usize];
        if *slot {
            *slot = false;
            self.num_active -= 1;
            true
        } else {
            false
        }
    }

    /// Set the state of `v` explicitly.
    #[inline]
    pub fn set(&mut self, v: VertexId, active: bool) {
        if active {
            self.activate(v);
        } else {
            self.deactivate(v);
        }
    }

    /// Iterator over the active vertex ids in ascending order.
    pub fn iter_active(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as VertexId)
    }

    /// Iterator over the inactive vertex ids in ascending order.
    pub fn iter_inactive(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| i as VertexId)
    }

    /// Borrow the raw mask.
    pub fn as_mask(&self) -> &[bool] {
        &self.active
    }

    /// Consume into the raw mask.
    pub fn into_mask(self) -> Vec<bool> {
        self.active
    }

    /// Reset every vertex to active.
    pub fn reset_all_active(&mut self) {
        self.active.iter_mut().for_each(|b| *b = true);
        self.num_active = self.active.len();
    }

    /// Reset every vertex to inactive.
    pub fn reset_all_inactive(&mut self) {
        self.active.iter_mut().for_each(|b| *b = false);
        self.num_active = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_bookkeeping_is_exact() {
        let mut a = ActiveSet::all_active(5);
        assert_eq!(a.num_active(), 5);
        assert!(a.deactivate(3));
        assert!(!a.deactivate(3)); // already inactive
        assert_eq!(a.num_active(), 4);
        assert_eq!(a.num_inactive(), 1);
        assert!(a.activate(3));
        assert!(!a.activate(3));
        assert_eq!(a.num_active(), 5);
    }

    #[test]
    fn from_mask_counts_active() {
        let a = ActiveSet::from_mask(vec![true, false, true, false]);
        assert_eq!(a.num_active(), 2);
        assert_eq!(a.iter_active().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(a.iter_inactive().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn all_inactive_then_activate() {
        let mut a = ActiveSet::all_inactive(3);
        assert_eq!(a.num_active(), 0);
        a.set(1, true);
        assert!(a.is_active(1));
        assert!(!a.is_active(0));
        assert_eq!(a.num_active(), 1);
    }

    #[test]
    fn resets_restore_uniform_state() {
        let mut a = ActiveSet::all_active(4);
        a.deactivate(0);
        a.deactivate(2);
        a.reset_all_active();
        assert_eq!(a.num_active(), 4);
        a.reset_all_inactive();
        assert_eq!(a.num_active(), 0);
        assert!(a.iter_active().next().is_none());
    }

    #[test]
    fn empty_mask_behaves() {
        let a = ActiveSet::all_active(0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.num_active(), 0);
    }

    #[test]
    fn into_mask_round_trips() {
        let a = ActiveSet::from_mask(vec![false, true]);
        let mask = a.clone().into_mask();
        assert_eq!(ActiveSet::from_mask(mask), a);
        assert_eq!(a.as_mask(), &[false, true]);
    }
}
