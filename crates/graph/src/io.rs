//! Graph serialization: SNAP-style edge-list text and a compact binary format.
//!
//! The paper's datasets are distributed as whitespace-separated edge lists
//! (SNAP) or tab-separated files with a header (KONECT). [`read_edge_list`]
//! accepts both: `#` and `%` prefixed lines are comments, every other line must
//! contain two integer vertex ids.
//!
//! The binary format (`TDBG` magic) stores the deduplicated edge list as
//! little-endian `u32` pairs and loads an order of magnitude faster, which
//! matters when the experiment harness re-reads multi-million-edge proxies.
//!
//! # Binary layout
//!
//! ```text
//! version 1:  "TDBG" | u32 version | u64 n | u64 m | m x (u32 src, u32 dst)
//! version 2:  ... as version 1 ... | u64 w | w x u64 cost
//! ```
//!
//! Version 2 appends an **optional weights section** — the serialized form of
//! a non-uniform [`CostModel`] — after the edge records: an entry count `w`
//! followed by one little-endian `u64` cost per vertex. `w` must equal `n`;
//! a mismatch is the typed [`GraphError::WeightsLength`], never a partial
//! parse. Unweighted graphs keep writing version 1 byte-for-byte, and both
//! versions load through every read entry point ([`from_binary`] drops the
//! weights, [`from_binary_weighted`] returns them).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::cost::CostModel;
use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};
use crate::Graph;

/// Magic prefix of the binary graph format.
const MAGIC: &[u8; 4] = b"TDBG";
/// Binary format version for plain (unweighted) graphs.
const VERSION: u32 = 1;
/// Binary format version carrying the optional per-vertex weights section.
const VERSION_WEIGHTED: u32 = 2;

/// Parse an edge-list from any reader.
///
/// Lines starting with `#` or `%` are skipped; blank lines are skipped; every
/// other line must contain at least two whitespace-separated integers (extra
/// columns, e.g. timestamps or weights, are ignored). Self-loops are dropped and
/// duplicate edges collapsed.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_vertex(it.next(), line_no)?;
        let v = parse_vertex(it.next(), line_no)?;
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".to_string(),
    })?;
    token.parse::<VertexId>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

/// Read an edge-list file from disk.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(BufReader::new(file))
}

/// Write a graph as a `#`-commented edge list.
pub fn write_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# directed graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(w, "{}\t{}", e.source, e.target)?;
    }
    w.flush()?;
    Ok(())
}

/// Serialize a graph into the compact binary format (version 1, no weights).
pub fn to_binary(graph: &CsrGraph) -> Vec<u8> {
    to_binary_weighted(graph, &CostModel::Uniform)
}

/// Serialize a graph plus its cost model.
///
/// A [`CostModel::Uniform`] model writes the plain version-1 format
/// byte-for-byte; a per-vertex model writes version 2 with exactly one weight
/// per vertex appended (missing entries serialize as their effective cost, 1).
pub fn to_binary_weighted(graph: &CsrGraph, costs: &CostModel) -> Vec<u8> {
    let n = graph.num_vertices();
    let weighted = !costs.is_uniform();
    let mut buf =
        Vec::with_capacity(24 + graph.num_edges() * 8 + if weighted { 8 + n * 8 } else { 0 });
    buf.extend_from_slice(MAGIC);
    let version = if weighted { VERSION_WEIGHTED } else { VERSION };
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    for e in graph.edges() {
        buf.extend_from_slice(&e.source.to_le_bytes());
        buf.extend_from_slice(&e.target.to_le_bytes());
    }
    if weighted {
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for v in graph.vertices() {
            buf.extend_from_slice(&costs.cost(v).to_le_bytes());
        }
    }
    buf
}

/// A minimal little-endian reader over a byte slice (std-only replacement for
/// the `bytes` crate's `Buf`).
///
/// Every read is checked: running off the end of the buffer yields a typed
/// [`GraphError::Format`] instead of a panic, so arbitrarily truncated or
/// corrupted input can never abort the process.
struct ByteReader<'a> {
    data: &'a [u8],
    consumed: usize,
}

impl<'a> ByteReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        ByteReader { data, consumed: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], GraphError> {
        if self.data.len() < N {
            return Err(GraphError::Format(format!(
                "truncated input: need {N} bytes at offset {}, have {}",
                self.consumed,
                self.data.len()
            )));
        }
        let (head, tail) = self.data.split_at(N);
        self.data = tail;
        self.consumed += N;
        Ok(head.try_into().expect("split_at returned N bytes"))
    }

    fn get_u32_le(&mut self) -> Result<u32, GraphError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn get_u64_le(&mut self) -> Result<u64, GraphError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
}

/// Deserialize a graph from the compact binary format, dropping any weights
/// section. See [`from_binary_weighted`] for the full contract.
pub fn from_binary(data: &[u8]) -> Result<CsrGraph, GraphError> {
    from_binary_weighted(data).map(|(g, _)| g)
}

/// Deserialize a graph and its cost model from the compact binary format.
///
/// Version-1 buffers yield [`CostModel::Uniform`]; version-2 buffers yield the
/// per-vertex weights of their trailing section. Untrusted input is safe here:
/// truncated buffers, bad magic/version, header counts that would overflow or
/// exceed the id space, out-of-range edge endpoints, and trailing garbage all
/// produce a typed [`GraphError::Format`] — never a panic — and a weights
/// section whose entry count disagrees with the vertex count is the typed
/// [`GraphError::WeightsLength`].
pub fn from_binary_weighted(data: &[u8]) -> Result<(CsrGraph, CostModel), GraphError> {
    if data.len() < 24 {
        return Err(GraphError::Format("buffer shorter than header".into()));
    }
    let mut data = ByteReader::new(data);
    let magic = data.take::<4>()?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = data.get_u32_le()?;
    if version != VERSION && version != VERSION_WEIGHTED {
        return Err(GraphError::Format(format!(
            "unsupported version {version}, expected {VERSION} or {VERSION_WEIGHTED}"
        )));
    }
    let n = data.get_u64_le()? as usize;
    let m = data.get_u64_le()? as usize;
    // Header fields are untrusted: bound-check without overflow (`m * 8` could
    // wrap) and reject vertex counts outside the u32 id space before sizing
    // any allocation from them.
    if n > u32::MAX as usize + 1 {
        return Err(GraphError::Format(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    if data.remaining() / 8 < m {
        return Err(GraphError::Format(format!(
            "truncated payload: need {m} edge records, have bytes for {}",
            data.remaining() / 8
        )));
    }
    if version == VERSION && data.remaining() != m * 8 {
        return Err(GraphError::Format(format!(
            "trailing garbage: {} bytes after the {m} declared edge records",
            data.remaining() - m * 8
        )));
    }
    let mut builder = GraphBuilder::with_capacity(n, m);
    builder.reserve_vertices(n);
    for _ in 0..m {
        let u = data.get_u32_le()?;
        let v = data.get_u32_le()?;
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::Format(format!(
                "edge ({u}, {v}) out of range for {n} vertices"
            )));
        }
        builder.add_edge(u, v);
    }
    let costs = if version == VERSION_WEIGHTED {
        // The count is checked against the header before any byte-length
        // test: a wrong-sized section is a length mismatch first, whatever
        // else is wrong with the buffer — and never a reason to allocate.
        let w = data.get_u64_le()? as usize;
        if w != n {
            return Err(GraphError::WeightsLength {
                vertices: n,
                weights: w,
            });
        }
        if data.remaining() / 8 < w {
            return Err(GraphError::Format(format!(
                "truncated weights section: need {w} entries, have bytes for {}",
                data.remaining() / 8
            )));
        }
        if data.remaining() != w * 8 {
            return Err(GraphError::Format(format!(
                "trailing garbage: {} bytes after the {w} declared weight entries",
                data.remaining() - w * 8
            )));
        }
        let mut weights = Vec::with_capacity(w);
        for _ in 0..w {
            weights.push(data.get_u64_le()?);
        }
        CostModel::per_vertex(weights)
    } else {
        CostModel::Uniform
    };
    Ok((builder.build(), costs))
}

/// Write the binary format to disk.
pub fn write_binary<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphError> {
    let bytes = to_binary(graph);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Write the binary format plus a cost model to disk.
pub fn write_binary_weighted<P: AsRef<Path>>(
    graph: &CsrGraph,
    costs: &CostModel,
    path: P,
) -> Result<(), GraphError> {
    let bytes = to_binary_weighted(graph, costs);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Read the binary format from disk.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    from_binary(&bytes)
}

/// Read the binary format plus its cost model from disk.
pub fn read_binary_weighted<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, CostModel), GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    from_binary_weighted(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use std::io::Cursor;

    fn sample() -> CsrGraph {
        graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)])
    }

    #[test]
    fn parse_snap_style_text() {
        let text = "# comment line\n% konect comment\n\n0 1\n1\t2 1622000000\n2 0\n";
        let g = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list(Cursor::new("0 x\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list(Cursor::new("42\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn text_round_trip_through_tempfile() {
        let g = sample();
        let dir = std::env::temp_dir().join(format!("tdb_graph_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert!(g.edges().zip(back.edges()).all(|(a, b)| a == b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_round_trip_in_memory() {
        let g = sample();
        let bytes = to_binary(&g);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert!(g.edges().zip(back.edges()).all(|(a, b)| a == b));
    }

    #[test]
    fn binary_round_trip_on_disk() {
        let g = sample();
        let dir = std::env::temp_dir().join(format!("tdb_graph_bin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tdbg");
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = to_binary(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            from_binary(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = to_binary(&sample());
        let truncated = &bytes[..bytes.len() - 4];
        assert!(matches!(
            from_binary(truncated),
            Err(GraphError::Format(msg)) if msg.contains("truncated")
        ));
    }

    #[test]
    fn binary_rejects_short_header() {
        assert!(from_binary(&[1, 2, 3]).is_err());
    }

    #[test]
    fn binary_rejects_absurd_header_counts() {
        // Claim 2^61 edges: must produce a Format error, not wrap the
        // byte-count multiplication or attempt a giant allocation.
        let mut bytes = to_binary(&sample());
        bytes[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(matches!(
            from_binary(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("truncated")
        ));
        // Claim more vertices than u32 ids can address.
        let mut bytes = to_binary(&sample());
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_binary(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("u32 id space")
        ));
    }

    #[test]
    fn binary_rejects_trailing_garbage() {
        let mut bytes = to_binary(&sample());
        bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        assert!(matches!(
            from_binary(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("trailing")
        ));
    }

    #[test]
    fn binary_rejects_out_of_range_edges() {
        let g = sample();
        let mut bytes = to_binary(&g);
        // Overwrite the first edge's target with an id beyond the vertex count.
        let target_off = 24 + 4;
        bytes[target_off..target_off + 4].copy_from_slice(&(g.num_vertices() as u32).to_le_bytes());
        assert!(matches!(
            from_binary(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("out of range")
        ));
    }

    fn sample_costs() -> CostModel {
        CostModel::per_vertex(vec![3, 1, 4, 1])
    }

    #[test]
    fn every_truncation_of_a_valid_buffer_is_a_typed_error() {
        // The codec must survive truncation at *every* byte boundary: a typed
        // Format error, never a panic, and never a silently-parsed prefix.
        // The weighted buffer exercises the version-2 weights section too.
        for bytes in [
            to_binary(&sample()),
            to_binary_weighted(&sample(), &sample_costs()),
        ] {
            for len in 0..bytes.len() {
                match from_binary(&bytes[..len]) {
                    Err(GraphError::Format(_)) => {}
                    other => panic!("truncation to {len} bytes produced {other:?}"),
                }
            }
        }
    }

    #[test]
    fn random_corruption_never_panics() {
        use crate::gen::{erdos_renyi_gnm, Xoshiro256};
        // Deterministic corruption fuzzing of the manual LE codec: flip bytes,
        // splice lengths, and assert the result is always Ok or a typed error.
        // Runs over both an unweighted (v1) and a weighted (v2) clean buffer;
        // a flipped version byte also makes v1 bytes parse down the v2 path.
        let g = erdos_renyi_gnm(40, 150, 3);
        let costs = CostModel::from_fn(40, |v| u64::from(v % 7) + 1);
        for clean in [to_binary(&g), to_binary_weighted(&g, &costs)] {
            let mut rng = Xoshiro256::seed_from_u64(0xC0FFEE);
            for case in 0..500 {
                let mut bytes = clean.clone();
                // Corrupt 1..=4 positions.
                for _ in 0..=rng.next_index(4) {
                    let pos = rng.next_index(bytes.len());
                    bytes[pos] = bytes[pos].wrapping_add(1 + rng.next_index(255) as u8);
                }
                // Occasionally also truncate or extend.
                match rng.next_index(4) {
                    0 => {
                        let keep = rng.next_index(bytes.len() + 1);
                        bytes.truncate(keep);
                    }
                    1 => bytes.push(rng.next_index(256) as u8),
                    _ => {}
                }
                match from_binary_weighted(&bytes) {
                    Ok((parsed, _)) => {
                        // A corrupted payload can still be a well-formed graph;
                        // it must at least respect its own header.
                        assert!(
                            parsed.num_vertices() <= u32::MAX as usize + 1,
                            "case {case}"
                        );
                    }
                    Err(GraphError::Format(msg)) => assert!(!msg.is_empty(), "case {case}"),
                    Err(GraphError::WeightsLength { vertices, weights }) => {
                        assert_ne!(vertices, weights, "case {case}")
                    }
                    Err(other) => panic!("case {case}: unexpected error variant {other:?}"),
                }
            }
        }
    }

    #[test]
    fn weighted_binary_round_trip() {
        let g = sample();
        let costs = sample_costs();
        let bytes = to_binary_weighted(&g, &costs);
        let (back, model) = from_binary_weighted(&bytes).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert!(g.edges().zip(back.edges()).all(|(a, b)| a == b));
        assert_eq!(model.weights().unwrap(), &[3, 1, 4, 1]);
        // Uniform models stay on the version-1 wire format byte-for-byte.
        assert_eq!(to_binary_weighted(&g, &CostModel::Uniform), to_binary(&g));
        // The plain reader accepts a weighted buffer and drops the weights.
        assert_eq!(from_binary(&bytes).unwrap().num_edges(), g.num_edges());
    }

    #[test]
    fn weighted_binary_round_trip_on_disk() {
        let g = sample();
        let dir = std::env::temp_dir().join(format!("tdb_graph_wbin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tdbg");
        write_binary_weighted(&g, &sample_costs(), &path).unwrap();
        let (back, model) = read_binary_weighted(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(model.cost(2), 4);
        // read_binary_weighted on an unweighted file yields the uniform model.
        write_binary(&g, &path).unwrap();
        let (_, model) = read_binary_weighted(&path).unwrap();
        assert!(model.is_uniform());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weights_count_mismatch_is_the_typed_error() {
        let g = sample();
        let mut bytes = to_binary_weighted(&g, &sample_costs());
        // The weights count sits right after the m edge records.
        let count_off = 24 + g.num_edges() * 8;
        bytes[count_off..count_off + 8].copy_from_slice(&9u64.to_le_bytes());
        match from_binary_weighted(&bytes) {
            Err(GraphError::WeightsLength { vertices, weights }) => {
                assert_eq!(vertices, 4);
                assert_eq!(weights, 9);
            }
            other => panic!("expected WeightsLength, got {other:?}"),
        }
        // A mismatched count wins over byte-level truncation: the same wrong
        // count with the payload cut short still reports the mismatch.
        bytes.truncate(count_off + 8);
        assert!(matches!(
            from_binary_weighted(&bytes),
            Err(GraphError::WeightsLength { .. })
        ));
    }

    #[test]
    fn weighted_binary_rejects_trailing_garbage() {
        let mut bytes = to_binary_weighted(&sample(), &sample_costs());
        bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        assert!(matches!(
            from_binary_weighted(&bytes),
            Err(GraphError::Format(msg)) if msg.contains("trailing")
        ));
    }

    #[test]
    fn binary_round_trip_on_random_graphs() {
        use crate::gen::erdos_renyi_gnm;
        for seed in 0..6u64 {
            let g = erdos_renyi_gnm(60, 240, seed);
            let back = from_binary(&to_binary(&g)).unwrap();
            assert_eq!(back.num_vertices(), g.num_vertices(), "seed {seed}");
            assert_eq!(back.num_edges(), g.num_edges(), "seed {seed}");
            assert!(
                g.edges().zip(back.edges()).all(|(a, b)| a == b),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn binary_preserves_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(7);
        let g = b.build();
        let back = from_binary(&to_binary(&g)).unwrap();
        assert_eq!(back.num_vertices(), 7);
    }
}
