//! Mutable adjacency overlay on an immutable [`CsrGraph`] — the storage layer
//! of the `tdb-dynamic` incremental-maintenance subsystem.
//!
//! A [`DeltaGraph`] is a CSR *base* plus two per-vertex overlays:
//!
//! * **inserted** edges that are not in the base, kept as sorted vectors, and
//! * **tombstoned** base edges that have been removed, also kept sorted.
//!
//! Neighbor iteration merges the base slice (skipping tombstones) with the
//! inserted list in one sorted, duplicate-free pass, so the overlay satisfies
//! the [`GraphView`] contract and every view-generic search primitive works on
//! it unchanged. Lookups and updates are `O(log d)` per endpoint.
//!
//! The overlay degrades as it grows (each neighbor scan walks base + delta);
//! [`DeltaGraph::compact`] rebuilds a clean CSR from the merged edge set and
//! clears the overlays. Callers — `tdb-dynamic` in particular — compact once
//! the [`DeltaGraph::delta_len`] exceeds a workload-dependent threshold,
//! mirroring the "static index + cheap customization layer" design of routing
//! engines.

use std::sync::Arc;

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use crate::view::GraphView;
use crate::Graph;

/// A directed graph stored as an immutable CSR base plus a mutable edge delta.
///
/// ```
/// use tdb_graph::{builder::graph_from_edges, DeltaGraph, GraphView};
///
/// let base = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
/// let mut g = DeltaGraph::new(base);
/// assert!(g.insert_edge(0, 2));
/// assert!(g.remove_edge(1, 2));
/// assert_eq!(g.out_iter(0).collect::<Vec<_>>(), vec![1, 2]);
/// assert_eq!(g.out_iter(1).count(), 0);
/// assert_eq!(g.edge_count(), 3);
/// g.compact();
/// assert_eq!(g.delta_len(), 0);
/// assert!(g.contains_edge(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    /// The immutable CSR base, shared rather than owned: cloning a
    /// `DeltaGraph` (the serving layer does it once per published snapshot)
    /// copies only the overlay vectors, while the `O(n + m)` base arrays are
    /// reference-counted. The base is never mutated in place — compaction
    /// installs a freshly built CSR.
    base: Arc<CsrGraph>,
    /// Inserted out-/in-adjacency, indexed by vertex, each list sorted.
    ins_out: Vec<Vec<VertexId>>,
    ins_in: Vec<Vec<VertexId>>,
    /// Tombstoned base out-/in-adjacency, indexed by vertex, each list sorted.
    del_out: Vec<Vec<VertexId>>,
    del_in: Vec<Vec<VertexId>>,
    /// Live overlay entry counts (inserted edges / tombstones).
    inserted: usize,
    deleted: usize,
}

impl DeltaGraph {
    /// Wrap a CSR base with an empty delta.
    pub fn new(base: CsrGraph) -> Self {
        Self::from_shared(Arc::new(base))
    }

    /// Wrap an already reference-counted CSR base with an empty delta.
    pub fn from_shared(base: Arc<CsrGraph>) -> Self {
        let n = base.num_vertices();
        DeltaGraph {
            base,
            ins_out: vec![Vec::new(); n],
            ins_in: vec![Vec::new(); n],
            del_out: vec![Vec::new(); n],
            del_in: vec![Vec::new(); n],
            inserted: 0,
            deleted: 0,
        }
    }

    /// The immutable CSR base (without the delta applied).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// A reference-counted handle to the CSR base. Snapshot consumers hold
    /// this across epochs so repeated clones of the same `DeltaGraph` share
    /// one set of base arrays.
    pub fn base_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.base)
    }

    /// Number of live overlay entries: inserted edges plus tombstones.
    ///
    /// This is the quantity compaction thresholds are expressed in — it bounds
    /// the extra work every neighbor scan pays relative to a clean CSR.
    pub fn delta_len(&self) -> usize {
        self.inserted + self.deleted
    }

    /// Number of inserted (non-base) edges currently live.
    pub fn inserted_len(&self) -> usize {
        self.inserted
    }

    /// Number of tombstoned base edges.
    pub fn deleted_len(&self) -> usize {
        self.deleted
    }

    /// Grow the vertex set so that `v` is a valid vertex id.
    ///
    /// New vertices start isolated. The CSR base is untouched; base adjacency
    /// for ids beyond the base vertex count is empty.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        let needed = v as usize + 1;
        if needed > self.ins_out.len() {
            self.ins_out.resize(needed, Vec::new());
            self.ins_in.resize(needed, Vec::new());
            self.del_out.resize(needed, Vec::new());
            self.del_in.resize(needed, Vec::new());
        }
    }

    #[inline]
    fn base_out(&self, v: VertexId) -> &[VertexId] {
        if (v as usize) < self.base.num_vertices() {
            self.base.out_neighbors(v)
        } else {
            &[]
        }
    }

    #[inline]
    fn base_in(&self, v: VertexId) -> &[VertexId] {
        if (v as usize) < self.base.num_vertices() {
            self.base.in_neighbors(v)
        } else {
            &[]
        }
    }

    /// Whether the base (ignoring tombstones) contains `(u, v)`.
    #[inline]
    fn base_has(&self, u: VertexId, v: VertexId) -> bool {
        self.base_out(u).binary_search(&v).is_ok()
    }

    /// Insert the directed edge `(u, v)`.
    ///
    /// Grows the vertex set as needed. Self-loops are rejected (they never lie
    /// on a simple cycle of length ≥ 2, matching [`crate::GraphBuilder`]'s
    /// normalization). Returns `true` when the edge was absent before the call
    /// — including the case of resurrecting a tombstoned base edge.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.ensure_vertex(u.max(v));
        // Resurrect a tombstoned base edge.
        if let Ok(idx) = self.del_out[u as usize].binary_search(&v) {
            self.del_out[u as usize].remove(idx);
            let in_idx = self.del_in[v as usize]
                .binary_search(&u)
                .expect("tombstone lists out of sync");
            self.del_in[v as usize].remove(in_idx);
            self.deleted -= 1;
            return true;
        }
        if self.base_has(u, v) {
            return false; // live in the base already
        }
        match self.ins_out[u as usize].binary_search(&v) {
            Ok(_) => false, // already inserted
            Err(idx) => {
                self.ins_out[u as usize].insert(idx, v);
                let in_idx = self.ins_in[v as usize]
                    .binary_search(&u)
                    .expect_err("insert lists out of sync");
                self.ins_in[v as usize].insert(in_idx, u);
                self.inserted += 1;
                true
            }
        }
    }

    /// Remove the directed edge `(u, v)`.
    ///
    /// Returns `true` when the edge was present (either a base edge, which is
    /// tombstoned, or an inserted edge, which is dropped from the overlay).
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.ins_out.len() || v as usize >= self.ins_out.len() {
            return false;
        }
        if let Ok(idx) = self.ins_out[u as usize].binary_search(&v) {
            self.ins_out[u as usize].remove(idx);
            let in_idx = self.ins_in[v as usize]
                .binary_search(&u)
                .expect("insert lists out of sync");
            self.ins_in[v as usize].remove(in_idx);
            self.inserted -= 1;
            return true;
        }
        if self.base_has(u, v) {
            if let Err(idx) = self.del_out[u as usize].binary_search(&v) {
                self.del_out[u as usize].insert(idx, v);
                let in_idx = self.del_in[v as usize]
                    .binary_search(&u)
                    .expect_err("tombstone lists out of sync");
                self.del_in[v as usize].insert(in_idx, u);
                self.deleted += 1;
                return true;
            }
        }
        false
    }

    /// Materialize the current (base + delta) edge set as a clean [`CsrGraph`].
    pub fn materialize(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edge_count());
        for u in 0..n as VertexId {
            for v in self.out_iter(u) {
                edges.push(Edge::new(u, v));
            }
        }
        CsrGraph::from_edges(n, &mut edges)
    }

    /// Rebuild the CSR base from the merged edge set and clear the overlays.
    ///
    /// Costs `O(n + m)`; afterwards neighbor iteration is pure slice traversal
    /// again. A no-op when the delta is empty.
    pub fn compact(&mut self) {
        if self.delta_len() == 0 && self.base.num_vertices() == self.ins_out.len() {
            return;
        }
        self.base = Arc::new(self.materialize());
        for list in self
            .ins_out
            .iter_mut()
            .chain(self.ins_in.iter_mut())
            .chain(self.del_out.iter_mut())
            .chain(self.del_in.iter_mut())
        {
            list.clear();
        }
        self.inserted = 0;
        self.deleted = 0;
    }
}

impl GraphView for DeltaGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.ins_out.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.base.num_edges() + self.inserted - self.deleted
    }

    #[inline]
    fn out_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        MergedNeighbors::new(
            self.base_out(v),
            &self.ins_out[v as usize],
            &self.del_out[v as usize],
        )
    }

    #[inline]
    fn in_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        MergedNeighbors::new(
            self.base_in(v),
            &self.ins_in[v as usize],
            &self.del_in[v as usize],
        )
    }

    #[inline]
    fn out_deg(&self, v: VertexId) -> usize {
        self.base_out(v).len() + self.ins_out[v as usize].len() - self.del_out[v as usize].len()
    }

    #[inline]
    fn in_deg(&self, v: VertexId) -> usize {
        self.base_in(v).len() + self.ins_in[v as usize].len() - self.del_in[v as usize].len()
    }

    #[inline]
    fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.ins_out.len() {
            return false;
        }
        if self.ins_out[u as usize].binary_search(&v).is_ok() {
            return true;
        }
        self.base_has(u, v) && self.del_out[u as usize].binary_search(&v).is_err()
    }
}

/// Sorted merge of a base adjacency slice (minus tombstones) with an inserted
/// overlay list. All three inputs are ascending and duplicate-free; the
/// invariants of [`DeltaGraph`] guarantee the base and overlay are disjoint,
/// but equal heads are deduplicated anyway for robustness.
struct MergedNeighbors<'a> {
    base: &'a [VertexId],
    ins: &'a [VertexId],
    del: &'a [VertexId],
    b: usize,
    i: usize,
    d: usize,
}

impl<'a> MergedNeighbors<'a> {
    fn new(base: &'a [VertexId], ins: &'a [VertexId], del: &'a [VertexId]) -> Self {
        MergedNeighbors {
            base,
            ins,
            del,
            b: 0,
            i: 0,
            d: 0,
        }
    }

    /// Advance `b` past tombstoned base entries; the tombstone cursor moves in
    /// lockstep because both lists are sorted.
    #[inline]
    fn skip_tombstones(&mut self) {
        while self.b < self.base.len() {
            let x = self.base[self.b];
            while self.d < self.del.len() && self.del[self.d] < x {
                self.d += 1;
            }
            if self.d < self.del.len() && self.del[self.d] == x {
                self.b += 1;
                self.d += 1;
            } else {
                break;
            }
        }
    }
}

impl Iterator for MergedNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        self.skip_tombstones();
        let b_next = self.base.get(self.b).copied();
        let i_next = self.ins.get(self.i).copied();
        match (b_next, i_next) {
            (None, None) => None,
            (Some(x), None) => {
                self.b += 1;
                Some(x)
            }
            (None, Some(y)) => {
                self.i += 1;
                Some(y)
            }
            (Some(x), Some(y)) => {
                if x <= y {
                    self.b += 1;
                    if x == y {
                        self.i += 1;
                    }
                    Some(x)
                } else {
                    self.i += 1;
                    Some(y)
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let upper = (self.base.len() - self.b) + (self.ins.len() - self.i);
        (upper.saturating_sub(self.del.len() - self.d), Some(upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen::{erdos_renyi_gnm, Xoshiro256};

    fn collect_out(g: &DeltaGraph, v: VertexId) -> Vec<VertexId> {
        g.out_iter(v).collect()
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (1, 2), (2, 0)]));
        assert_eq!(g.edge_count(), 3);
        assert!(g.insert_edge(0, 2));
        assert!(!g.insert_edge(0, 2), "duplicate insert must be a no-op");
        assert!(!g.insert_edge(0, 1), "base edge re-insert must be a no-op");
        assert!(!g.insert_edge(1, 1), "self-loop rejected");
        assert_eq!(g.edge_count(), 4);
        assert!(g.remove_edge(0, 2), "inserted edge removable");
        assert!(!g.remove_edge(0, 2));
        assert!(g.remove_edge(0, 1), "base edge tombstoned");
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.contains_edge(0, 1));
        assert!(g.contains_edge(1, 2));
        // Resurrect the tombstoned base edge.
        assert!(g.insert_edge(0, 1));
        assert!(g.contains_edge(0, 1));
        assert_eq!(g.delta_len(), 0, "resurrection cancels the tombstone");
    }

    #[test]
    fn merged_iteration_is_sorted_and_consistent() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 2), (0, 5), (0, 7)]));
        g.insert_edge(0, 1);
        g.insert_edge(0, 6);
        g.insert_edge(0, 9);
        g.remove_edge(0, 5);
        assert_eq!(collect_out(&g, 0), vec![1, 2, 6, 7, 9]);
        assert_eq!(g.out_deg(0), 5);
        // In-adjacency mirrors.
        assert_eq!(g.in_iter(9).collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.in_iter(5).count(), 0);
    }

    #[test]
    fn vertex_growth_beyond_base() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1)]));
        assert_eq!(g.vertex_count(), 2);
        assert!(g.insert_edge(1, 5));
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(collect_out(&g, 1), vec![5]);
        assert_eq!(collect_out(&g, 5), Vec::<VertexId>::new());
        assert!(g.insert_edge(5, 0));
        assert!(g.contains_edge(5, 0));
        let m = g.materialize();
        assert_eq!(m.num_vertices(), 6);
        assert_eq!(m.num_edges(), 3);
    }

    #[test]
    fn compact_preserves_the_edge_set() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]));
        g.insert_edge(3, 0);
        g.insert_edge(1, 3);
        g.remove_edge(2, 3);
        let before = g.materialize();
        assert!(g.delta_len() > 0);
        g.compact();
        assert_eq!(g.delta_len(), 0);
        let after = g.materialize();
        assert_eq!(before.num_vertices(), after.num_vertices());
        assert_eq!(before.num_edges(), after.num_edges());
        assert!(before.edges().zip(after.edges()).all(|(a, b)| a == b));
        // Still mutable after compaction.
        assert!(g.insert_edge(2, 3));
        assert!(g.contains_edge(2, 3));
    }

    #[test]
    fn random_update_sequence_matches_reference_set() {
        // Differential test against a straightforward HashSet of edges.
        use std::collections::HashSet;
        let mut rng = Xoshiro256::seed_from_u64(77);
        let base = erdos_renyi_gnm(30, 90, 9);
        let mut reference: HashSet<(VertexId, VertexId)> =
            base.edges().map(|e| (e.source, e.target)).collect();
        let mut g = DeltaGraph::new(base);
        for step in 0..2_000 {
            let u = rng.next_index(30) as VertexId;
            let v = rng.next_index(30) as VertexId;
            if rng.next_index(3) == 0 {
                assert_eq!(
                    g.remove_edge(u, v),
                    reference.remove(&(u, v)),
                    "step {step}"
                );
            } else {
                let newly = u != v && reference.insert((u, v));
                assert_eq!(g.insert_edge(u, v), newly, "step {step}");
            }
            if step % 500 == 250 {
                g.compact();
            }
        }
        assert_eq!(g.edge_count(), reference.len());
        for &(u, v) in &reference {
            assert!(g.contains_edge(u, v), "missing ({u}, {v})");
        }
        let m = g.materialize();
        assert_eq!(m.num_edges(), reference.len());
        for e in m.edges() {
            assert!(reference.contains(&(e.source, e.target)), "phantom {e}");
        }
    }

    #[test]
    fn clones_share_the_base_until_compaction() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (1, 2), (2, 0)]));
        g.insert_edge(0, 2);
        let snap = g.clone();
        assert!(
            Arc::ptr_eq(&g.base_arc(), &snap.base_arc()),
            "a clone must share the CSR base, not deep-copy it"
        );
        // The clone is a true snapshot: later mutations don't leak into it.
        g.remove_edge(0, 1);
        assert!(snap.contains_edge(0, 1));
        assert!(!g.contains_edge(0, 1));
        // Compaction installs a fresh base without disturbing the snapshot.
        g.compact();
        assert!(!Arc::ptr_eq(&g.base_arc(), &snap.base_arc()));
        assert!(snap.contains_edge(0, 1));
        assert_eq!(g.edge_count(), 3);
        // from_shared round-trips a shared base.
        let shared = snap.base_arc();
        let h = DeltaGraph::from_shared(Arc::clone(&shared));
        assert!(Arc::ptr_eq(&h.base_arc(), &shared));
        assert_eq!(h.edge_count(), shared.num_edges());
    }

    #[test]
    fn degrees_stay_consistent_under_churn() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (0, 2), (3, 0)]));
        g.remove_edge(0, 1);
        g.insert_edge(0, 3);
        assert_eq!(g.out_deg(0), g.out_iter(0).count());
        assert_eq!(g.in_deg(0), g.in_iter(0).count());
        assert_eq!(g.in_deg(3), g.in_iter(3).count());
    }
}
