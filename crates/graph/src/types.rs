//! Fundamental identifier and error types shared across the workspace.

use std::fmt;

/// Vertex identifier.
///
/// Vertices are dense integers `0..n`. `u32` keeps adjacency arrays at half the
/// size of `usize` indices, which matters for the billion-edge-scale graphs the
/// paper targets (the Twitter-WWW graph has 41.6 M vertices and 1.47 B edges).
pub type VertexId = u32;

/// Sentinel value used for "no vertex" slots in internal scratch arrays.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// A directed edge `(source, target)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Source vertex.
    pub source: VertexId,
    /// Target vertex.
    pub target: VertexId,
}

impl Edge {
    /// Create a new directed edge.
    #[inline]
    pub const fn new(source: VertexId, target: VertexId) -> Self {
        Edge { source, target }
    }

    /// Whether the edge is a self-loop.
    #[inline]
    pub const fn is_self_loop(&self) -> bool {
        self.source == self.target
    }

    /// The same edge with source and target swapped.
    #[inline]
    pub const fn reversed(&self) -> Self {
        Edge::new(self.target, self.source)
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.source, self.target)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.source, self.target)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((source, target): (VertexId, VertexId)) -> Self {
        Edge::new(source, target)
    }
}

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced by an operation is out of range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The binary graph format header or payload is malformed.
    Format(String),
    /// A binary weights section declares a different entry count than the
    /// graph has vertices.
    WeightsLength {
        /// Number of vertices in the graph header.
        vertices: usize,
        /// Number of weight entries the section declares.
        weights: usize,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "malformed graph data: {msg}"),
            GraphError::WeightsLength { vertices, weights } => write!(
                f,
                "weights section has {weights} entries for a graph with {vertices} vertices"
            ),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors_and_predicates() {
        let e = Edge::new(3, 7);
        assert_eq!(e.source, 3);
        assert_eq!(e.target, 7);
        assert!(!e.is_self_loop());
        assert!(Edge::new(5, 5).is_self_loop());
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert_eq!(Edge::from((1, 2)), Edge::new(1, 2));
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let mut edges = vec![Edge::new(2, 0), Edge::new(0, 5), Edge::new(0, 1)];
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(0, 5), Edge::new(2, 0)]
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        let p = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 12"));
    }

    #[test]
    fn edge_display_formats() {
        assert_eq!(format!("{}", Edge::new(1, 2)), "(1 -> 2)");
        assert_eq!(format!("{:?}", Edge::new(1, 2)), "1->2");
    }
}
