//! Per-vertex removal costs — the weight substrate of min-weight covers.
//!
//! The paper's objective is minimum *cardinality*: every vertex is equally
//! expensive to delete. Real deployments rarely work that way — suspending a
//! high-value account, victimizing a long-running transaction, or cutting a
//! wide bus all cost more than their low-traffic counterparts. A [`CostModel`]
//! attaches a `u64` removal cost to every vertex so the solver layer
//! (`tdb-core`) can optimize covered-cycles-per-unit-cost instead of raw
//! counts.
//!
//! The model is deliberately tiny:
//!
//! * [`CostModel::Uniform`] — every vertex costs 1. This is the default and
//!   the exact paper semantics; all weight-aware code paths degenerate to the
//!   unweighted ones under it.
//! * [`CostModel::PerVertex`] — an explicit weight per vertex, shared behind
//!   an `Arc` so solvers, shards, and snapshots clone it in O(1).
//!
//! Costs are clamped to `>= 1` on read: a zero-cost vertex would make
//! "cycles per unit cost" undefined and would let budgeted solves pick
//! infinitely many "free" breakers.
//!
//! The binary graph codec ([`crate::io`]) serializes a non-uniform model as an
//! optional trailing section of the `.tdbg` format, so weighted instances ship
//! as one artifact.

use std::sync::Arc;

use crate::types::VertexId;

/// Per-vertex removal costs. See the [module docs](self) for semantics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Every vertex costs 1 — the paper's minimum-cardinality semantics.
    #[default]
    Uniform,
    /// Explicit cost per vertex, indexed by [`VertexId`]. Vertices beyond the
    /// slice (e.g. minted later by a streaming insert) cost 1.
    PerVertex(Arc<[u64]>),
}

impl CostModel {
    /// Build a per-vertex model from explicit weights.
    pub fn per_vertex(weights: impl Into<Arc<[u64]>>) -> Self {
        CostModel::PerVertex(weights.into())
    }

    /// Build a per-vertex model by evaluating `f` for each of `n` vertices.
    pub fn from_fn(n: usize, mut f: impl FnMut(VertexId) -> u64) -> Self {
        CostModel::PerVertex((0..n as VertexId).map(&mut f).collect())
    }

    /// The removal cost of `v`, clamped to `>= 1`. Vertices without an entry
    /// (uniform model, or ids beyond the weight slice) cost 1.
    #[inline]
    pub fn cost(&self, v: VertexId) -> u64 {
        match self {
            CostModel::Uniform => 1,
            CostModel::PerVertex(w) => w.get(v as usize).copied().unwrap_or(1).max(1),
        }
    }

    /// Whether this is the uniform (cardinality) model.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, CostModel::Uniform)
    }

    /// The explicit weight slice, if any.
    pub fn weights(&self) -> Option<&[u64]> {
        match self {
            CostModel::Uniform => None,
            CostModel::PerVertex(w) => Some(w),
        }
    }

    /// Total cost of a vertex set (saturating).
    pub fn total<I: IntoIterator<Item = VertexId>>(&self, vertices: I) -> u64 {
        vertices
            .into_iter()
            .fold(0u64, |acc, v| acc.saturating_add(self.cost(v)))
    }

    /// Restrict the model to a compact sub-range of vertices: entry `i` of the
    /// result is the cost of `map[i]` in `self`. Used by the sharded executor,
    /// whose per-SCC subgraphs renumber vertices through exactly such a map.
    pub fn project(&self, map: &[VertexId]) -> CostModel {
        match self {
            CostModel::Uniform => CostModel::Uniform,
            CostModel::PerVertex(_) => {
                CostModel::PerVertex(map.iter().map(|&g| self.cost(g)).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_one_everywhere() {
        let c = CostModel::Uniform;
        assert!(c.is_uniform());
        assert_eq!(c.cost(0), 1);
        assert_eq!(c.cost(u32::MAX), 1);
        assert_eq!(c.total([1, 2, 3]), 3);
        assert!(c.weights().is_none());
    }

    #[test]
    fn per_vertex_reads_clamp_and_default() {
        let c = CostModel::per_vertex(vec![5, 0, 7]);
        assert!(!c.is_uniform());
        assert_eq!(c.cost(0), 5);
        assert_eq!(c.cost(1), 1, "zero weights are clamped to 1");
        assert_eq!(c.cost(2), 7);
        assert_eq!(c.cost(99), 1, "out-of-slice vertices cost 1");
        assert_eq!(c.total([0, 2]), 12);
        assert_eq!(c.weights().unwrap(), &[5, 0, 7]);
    }

    #[test]
    fn from_fn_indexes_by_vertex() {
        let c = CostModel::from_fn(4, |v| u64::from(v) * 10 + 1);
        assert_eq!(c.cost(0), 1);
        assert_eq!(c.cost(3), 31);
    }

    #[test]
    fn total_saturates_instead_of_overflowing() {
        let c = CostModel::per_vertex(vec![u64::MAX, u64::MAX]);
        assert_eq!(c.total([0, 1]), u64::MAX);
    }

    #[test]
    fn project_remaps_through_a_shard_map() {
        let c = CostModel::per_vertex(vec![10, 20, 30, 40]);
        let shard = c.project(&[3, 1]);
        assert_eq!(shard.cost(0), 40);
        assert_eq!(shard.cost(1), 20);
        assert!(CostModel::Uniform.project(&[3, 1]).is_uniform());
    }

    #[test]
    fn clones_share_the_weight_storage() {
        let c = CostModel::per_vertex(vec![1u64; 1024]);
        let d = c.clone();
        let (CostModel::PerVertex(a), CostModel::PerVertex(b)) = (&c, &d) else {
            panic!("expected per-vertex models");
        };
        assert!(Arc::ptr_eq(a, b));
    }
}
