//! Incremental construction of [`CsrGraph`]s from edge streams.

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};

/// Builder that accumulates directed edges and materializes a [`CsrGraph`].
///
/// The builder accepts edges in any order, tolerates duplicates and self-loops,
/// and normalizes everything at [`GraphBuilder::build`] time:
///
/// * duplicate parallel edges are collapsed,
/// * self-loops are dropped by default (the paper excludes them from the
///   hop-constrained cycle cover problem; see Section III of the paper) but can
///   be kept with [`GraphBuilder::keep_self_loops`],
/// * adjacency lists are sorted ascending so that membership tests are
///   `O(log d)` binary searches.
///
/// The number of vertices is `max(explicit reservation, max vertex id + 1)`.
///
/// ```
/// use tdb_graph::{GraphBuilder, Graph};
///
/// let mut b = GraphBuilder::with_capacity(4, 5);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1);      // duplicate, collapsed
/// b.add_edge(2, 2);      // self-loop, dropped by default
/// b.add_edge(1, 3);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_vertices: usize,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-reserved capacity.
    ///
    /// `num_vertices` is a lower bound on the vertex count of the built graph —
    /// useful when isolated trailing vertices must be preserved.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(num_edges),
            min_vertices: num_vertices,
            keep_self_loops: false,
        }
    }

    /// Keep self-loop edges instead of silently dropping them.
    ///
    /// Self-loops never participate in hop-constrained cycles of length `>= 2`
    /// but some substrates (e.g. lock graphs in the deadlock example) want them
    /// preserved for reporting.
    pub fn keep_self_loops(&mut self, keep: bool) -> &mut Self {
        self.keep_self_loops = keep;
        self
    }

    /// Ensure the built graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Add the directed edge `(u, v)`.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push(Edge::new(u, v));
        self
    }

    /// Add both `(u, v)` and `(v, u)`.
    #[inline]
    pub fn add_bidirectional_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u)
    }

    /// Add every edge from an iterator of `(source, target)` pairs.
    pub fn extend_edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter.into_iter().map(Edge::from));
        self
    }

    /// Number of edges currently buffered (before dedup / self-loop removal).
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Materialize the [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        if !self.keep_self_loops {
            self.edges.retain(|e| !e.is_self_loop());
        }
        let n_from_edges = self
            .edges
            .iter()
            .map(|e| e.source.max(e.target) as usize + 1)
            .max()
            .unwrap_or(0);
        let n = n_from_edges.max(self.min_vertices);
        CsrGraph::from_edges(n, &mut self.edges)
    }
}

/// Convenience constructor: build a graph from a slice of `(u, v)` pairs.
///
/// Self-loops are dropped, duplicates collapsed.
pub fn graph_from_edges(edges: &[(VertexId, VertexId)]) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(0, edges.len());
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn duplicates_are_collapsed() {
        let g = graph_from_edges(&[(0, 1), (0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = graph_from_edges(&[(0, 0), (1, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let mut b = GraphBuilder::new();
        b.keep_self_loops(true);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn reserve_vertices_creates_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
        assert_eq!(g.in_degree(9), 0);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = graph_from_edges(&[(0, 5), (0, 2), (0, 9), (0, 1)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 5, 9]);
    }

    #[test]
    fn bidirectional_edge_adds_both_directions() {
        let mut b = GraphBuilder::new();
        b.add_bidirectional_edge(3, 4);
        let g = b.build();
        assert!(g.has_edge(3, 4));
        assert!(g.has_edge(4, 3));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let b = GraphBuilder::new();
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn buffered_edges_counts_raw_additions() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.buffered_edges(), 2);
    }
}
