//! # tdb-graph
//!
//! Directed-graph substrate for the TDB hop-constrained cycle cover library.
//!
//! The crate provides everything the cover algorithms in [`tdb-core`] need from a
//! graph engine:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row graph with
//!   both out- and in-adjacency, built through [`GraphBuilder`].
//! * [`ActiveSet`] — a cheap vertex activation mask used by the bottom-up and
//!   top-down cover algorithms to "delete" or "insert" vertices without touching
//!   the adjacency arrays.
//! * [`GraphView`] — the iterator-based view trait (every [`Graph`] is one)
//!   that lets the search primitives run over storages without contiguous
//!   adjacency slices.
//! * [`DeltaGraph`] — a mutable inserted/tombstoned edge overlay on
//!   [`CsrGraph`] with merged neighbor iteration and threshold-based
//!   compaction; the storage layer of the `tdb-dynamic` streaming subsystem.
//! * [`gen`] — deterministic synthetic graph generators (Erdős–Rényi, directed
//!   preferential attachment, R-MAT, classic topologies, small-world) driven by a
//!   vendored SplitMix64/xoshiro256** RNG so that every experiment is bit-for-bit
//!   reproducible.
//! * [`CostModel`] — per-vertex removal costs (uniform or explicit weights),
//!   the substrate of the min-weight cover objective in `tdb-core`.
//! * [`io`] — SNAP-style edge-list text I/O plus a compact binary format with
//!   an optional per-vertex weights section.
//! * [`line_graph`] — the directed line-graph transform used by the DARC-DV
//!   baseline.
//! * [`scc`] — Tarjan strongly connected components and cycle-vertex pruning.
//! * [`condense`] — SCC condensation with compact per-component subgraph
//!   extraction and order-preserving id remapping, the substrate of the
//!   sharded (per-component) solve pipeline in `tdb-core`.
//! * [`metrics`] — degree/recirocity statistics used to reproduce Table II of the
//!   paper.
//! * [`scratch`] — reusable O(1)-reset search scratch ([`TimestampedVec`],
//!   [`FixedBitSet`], [`DfsArena`]) shared by every hot-path searcher so a
//!   solve performs no per-query O(n) work.
//!
//! The crate is deliberately free of external graph dependencies: the paper's
//! algorithms are sensitive to adjacency layout and vertex-deletion cost, so the
//! substrate is purpose-built.
//!
//! ## Quick example
//!
//! ```
//! use tdb_graph::{GraphBuilder, Graph};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_neighbors(0), &[1]);
//! assert_eq!(g.in_neighbors(0), &[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod builder;
pub mod condense;
pub mod cost;
pub mod csr;
pub mod delta;
pub mod gen;
pub mod io;
pub mod line_graph;
pub mod metrics;
pub mod scc;
pub mod scratch;
pub mod types;
pub mod view;

pub use active::ActiveSet;
pub use builder::GraphBuilder;
pub use condense::{Condensation, ExtractedComponent};
pub use cost::CostModel;
pub use csr::CsrGraph;
pub use delta::DeltaGraph;
pub use scratch::{DfsArena, FixedBitSet, TimestampedVec};
pub use types::{Edge, GraphError, VertexId, INVALID_VERTEX};
pub use view::GraphView;

/// Read-only view of a directed graph with both adjacency directions.
///
/// All cover algorithms are generic over this trait so that they can run on the
/// plain [`CsrGraph`], on the line graph produced by
/// [`line_graph::LineGraph`], or on any future storage backend.
pub trait Graph {
    /// Number of vertices. Vertex ids are `0..num_vertices() as VertexId`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Out-neighbors of `v`, sorted ascending and free of duplicates.
    fn out_neighbors(&self, v: VertexId) -> &[VertexId];

    /// In-neighbors of `v`, sorted ascending and free of duplicates.
    fn in_neighbors(&self, v: VertexId) -> &[VertexId];

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether the directed edge `(u, v)` is present.
    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over every vertex id.
    #[inline]
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over every directed edge `(u, v)`.
    fn edges(&self) -> EdgeIter<'_, Self>
    where
        Self: Sized,
    {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Average out-degree (`m / n`), `0.0` on the empty graph.
    fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

/// Iterator over all edges of a [`Graph`], produced by [`Graph::edges`].
pub struct EdgeIter<'a, G: Graph> {
    graph: &'a G,
    u: VertexId,
    idx: usize,
}

impl<'a, G: Graph> Iterator for EdgeIter<'a, G> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let n = self.graph.num_vertices() as VertexId;
        while self.u < n {
            let outs = self.graph.out_neighbors(self.u);
            if self.idx < outs.len() {
                let e = Edge::new(self.u, outs[self.idx]);
                self.idx += 1;
                return Some(e);
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn edge_iterator_yields_every_edge_once() {
        let g = triangle();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
        );
    }

    #[test]
    fn average_degree_matches_ratio() {
        let g = triangle();
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_uses_sorted_adjacency() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn empty_graph_average_degree_is_zero() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }
}
