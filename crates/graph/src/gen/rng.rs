//! Minimal deterministic PRNG used by every synthetic graph generator.
//!
//! The generators must be bit-for-bit reproducible across platforms and across
//! releases of third-party crates, because the experiment harness compares cover
//! sizes against the values recorded in `EXPERIMENTS.md`. A vendored
//! xoshiro256** (seeded through SplitMix64, as recommended by its authors) keeps
//! that guarantee independent of the `rand` crate's evolution.

/// xoshiro256** generator seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { state }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire (2019), "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_bounded(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n <= 1 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `count` distinct indices from `[0, bound)` (Floyd's algorithm).
    ///
    /// Panics if `count > bound`.
    pub fn sample_distinct(&mut self, bound: usize, count: usize) -> Vec<usize> {
        assert!(
            count <= bound,
            "cannot sample {count} distinct from {bound}"
        );
        let mut chosen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        for j in bound - count..bound {
            let t = self.next_index(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let sample = r.sample_distinct(100, 40);
        assert_eq!(sample.len(), 40);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 40);
        assert!(sample.iter().all(|&x| x < 100));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.next_index(10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Xoshiro256::seed_from_u64(0).next_bounded(0);
    }
}
