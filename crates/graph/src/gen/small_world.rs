//! Directed Watts–Strogatz small-world generator.
//!
//! Small-world graphs have abundant short cycles (every ring neighborhood is a
//! cycle) which makes them a useful adversarial workload for the hop-constrained
//! cover algorithms: nearly every vertex participates in some cycle of length
//! `<= k`, so the cover is large and the pruning filters get little traction.
//! The ablation benches use this family to expose worst-case behaviour.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::rng::Xoshiro256;
use crate::types::VertexId;

/// Directed small-world graph: each vertex `i` gets edges to its `degree`
/// clockwise ring successors, and each edge's target is rewired to a uniform
/// random vertex with probability `rewire_p`.
pub fn small_world(n: usize, degree: usize, rewire_p: f64, seed: u64) -> CsrGraph {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * degree);
    if n > 1 {
        for i in 0..n {
            for d in 1..=degree {
                let mut target = ((i + d) % n) as VertexId;
                if rng.next_bool(rewire_p) {
                    // Redraw until we avoid a self-loop (bounded in expectation).
                    for _ in 0..8 {
                        let cand = rng.next_index(n) as VertexId;
                        if cand != i as VertexId {
                            target = cand;
                            break;
                        }
                    }
                }
                if target != i as VertexId {
                    b.add_edge(i as VertexId, target);
                }
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn unrewired_graph_is_a_ring_lattice() {
        let g = small_world(20, 3, 0.0, 1);
        assert_eq!(g.num_edges(), 60);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(19, 2)); // wraps around
    }

    #[test]
    fn rewiring_changes_some_edges() {
        let lattice = small_world(200, 2, 0.0, 3);
        let rewired = small_world(200, 2, 0.5, 3);
        let lattice_edges: std::collections::HashSet<_> = lattice.edges().collect();
        let moved = rewired
            .edges()
            .filter(|e| !lattice_edges.contains(e))
            .count();
        assert!(moved > 20, "expected rewired edges, got {moved}");
    }

    #[test]
    fn no_self_loops_even_with_heavy_rewiring() {
        let g = small_world(100, 4, 0.9, 7);
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_world(150, 3, 0.3, 11);
        let b = small_world(150, 3, 0.3, 11);
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(small_world(0, 2, 0.1, 1).num_vertices(), 0);
        assert_eq!(small_world(1, 2, 0.1, 1).num_edges(), 0);
    }
}
