//! R-MAT recursive-matrix power-law graph generator (Chakrabarti et al., 2004).
//!
//! R-MAT is the standard synthetic stand-in for large web / social graphs
//! (Graph500 uses it); it produces the heavy-tailed degree distributions and
//! community-like edge clustering that drive the performance differences the
//! paper reports between DARC-DV, BUR+ and TDB++. The experiment harness uses
//! it for the largest dataset proxies (Flickr, LiveJournal, Wikipedia,
//! Twitter-WWW).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::rng::Xoshiro256;
use crate::types::VertexId;

/// Configuration for the [`rmat`] generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices (the generator produces `2^scale` ids).
    pub scale: u32,
    /// Number of edges to sample (duplicates and self-loops are removed, so the
    /// final count is slightly lower).
    pub num_edges: usize,
    /// Recursive quadrant probabilities; must sum to ~1.0. Graph500 defaults are
    /// `(0.57, 0.19, 0.19, 0.05)`.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability that a sampled edge is also added reversed (2-cycle knob).
    pub reciprocity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            num_edges: 1 << 18,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            reciprocity: 0.0,
            seed: 42,
        }
    }
}

impl RmatConfig {
    /// Number of vertices implied by `scale`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Sample a single R-MAT edge.
#[inline]
fn sample_edge(cfg: &RmatConfig, rng: &mut Xoshiro256) -> (VertexId, VertexId) {
    let mut u = 0u64;
    let mut v = 0u64;
    // Per-level noise on the quadrant probabilities keeps the generated graph
    // from having the exact fractal artifacts of noiseless R-MAT.
    for _ in 0..cfg.scale {
        u <<= 1;
        v <<= 1;
        let r = rng.next_f64();
        let a = cfg.a;
        let b = cfg.b;
        let c = cfg.c;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

/// Generate an R-MAT graph per [`RmatConfig`].
pub fn rmat(cfg: &RmatConfig) -> CsrGraph {
    assert!(cfg.scale <= 31, "scale must fit in a u32 vertex id");
    let sum = cfg.a + cfg.b + cfg.c;
    assert!(sum <= 1.0 + 1e-9, "quadrant probabilities exceed 1.0");
    let n = cfg.num_vertices();
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, cfg.num_edges + 16);
    for _ in 0..cfg.num_edges {
        let (u, v) = sample_edge(cfg, &mut rng);
        if u == v {
            continue;
        }
        b.add_edge(u, v);
        if cfg.reciprocity > 0.0 && rng.next_bool(cfg.reciprocity) {
            b.add_edge(v, u);
        }
    }
    b.reserve_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn generates_requested_scale() {
        let cfg = RmatConfig {
            scale: 10,
            num_edges: 8000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert_eq!(g.num_vertices(), 1024);
        // Duplicates get collapsed; still expect the bulk of the edges.
        assert!(g.num_edges() > 5000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 8000);
    }

    #[test]
    fn skewed_parameters_produce_hubs() {
        let cfg = RmatConfig {
            scale: 11,
            num_edges: 20_000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        let max_out = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.average_degree();
        assert!(max_out as f64 > avg * 10.0, "max {max_out}, avg {avg}");
    }

    #[test]
    fn uniform_parameters_produce_flat_graph() {
        let cfg = RmatConfig {
            scale: 10,
            num_edges: 10_000,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            ..Default::default()
        };
        let g = rmat(&cfg);
        let max_out = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_out < 60, "uniform R-MAT should not have giant hubs");
    }

    #[test]
    fn reciprocity_knob_adds_two_cycles() {
        let base = RmatConfig {
            scale: 10,
            num_edges: 10_000,
            ..Default::default()
        };
        let rec = RmatConfig {
            reciprocity: 0.5,
            ..base
        };
        assert!(
            rmat(&rec).count_bidirectional_pairs() > rmat(&base).count_bidirectional_pairs() + 200
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RmatConfig {
            scale: 9,
            num_edges: 4000,
            ..Default::default()
        };
        let a = rmat(&cfg);
        let b = rmat(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn no_self_loops() {
        let cfg = RmatConfig {
            scale: 9,
            num_edges: 4000,
            ..Default::default()
        };
        assert!(rmat(&cfg).edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities")]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.8,
            b: 0.3,
            c: 0.2,
            ..Default::default()
        };
        rmat(&cfg);
    }
}
