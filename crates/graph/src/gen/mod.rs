//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 16 real-world SNAP/KONECT graphs (Table II). Those
//! datasets cannot be redistributed with this repository, so the experiment
//! harness synthesizes *proxy* graphs whose size, degree skew, and reciprocity
//! (2-cycle density) match the published statistics. This module provides the
//! generator families used for that, plus classic topologies used heavily in
//! unit and property tests:
//!
//! * [`erdos_renyi`] — `G(n, m)` uniform random directed graphs,
//! * [`preferential`] — directed preferential-attachment (scale-free) graphs
//!   with a tunable reciprocity probability,
//! * [`rmat`] — R-MAT power-law graphs (the standard stand-in for social /
//!   web graphs such as Twitter or LiveJournal),
//! * [`classic`] — rings, complete graphs, DAGs, paths, layered grids,
//! * [`small_world`] — a directed Watts–Strogatz rewiring model.

pub mod classic;
pub mod erdos_renyi;
pub mod preferential;
pub mod rmat;
pub mod rng;
pub mod small_world;

pub use classic::{complete_digraph, directed_cycle, directed_path, layered_dag, random_dag};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use preferential::{preferential_attachment, PreferentialConfig};
pub use rmat::{rmat, RmatConfig};
pub use rng::Xoshiro256;
pub use small_world::small_world;
