//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 16 real-world SNAP/KONECT graphs (Table II). Those
//! datasets cannot be redistributed with this repository, so the experiment
//! harness synthesizes *proxy* graphs whose size, degree skew, and reciprocity
//! (2-cycle density) match the published statistics. This module provides the
//! generator families used for that, plus classic topologies used heavily in
//! unit and property tests:
//!
//! * [`erdos_renyi`] — `G(n, m)` uniform random directed graphs,
//! * [`preferential`] — directed preferential-attachment (scale-free) graphs
//!   with a tunable reciprocity probability,
//! * [`rmat`] — R-MAT power-law graphs (the standard stand-in for social /
//!   web graphs such as Twitter or LiveJournal),
//! * [`classic`] — rings, complete graphs, DAGs, paths, layered grids,
//! * [`small_world`] — a directed Watts–Strogatz rewiring model,
//! * [`multi_scc`] — SCC blocks chained by one-way bridges, the instance
//!   family of the sharded-solving pipeline.

pub mod classic;
pub mod erdos_renyi;
pub mod multi_scc;
pub mod preferential;
pub mod rmat;
pub mod rng;
pub mod small_world;

pub use classic::{complete_digraph, directed_cycle, directed_path, layered_dag, random_dag};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use multi_scc::{multi_scc_chain, MultiSccConfig};
pub use preferential::{preferential_attachment, PreferentialConfig};
pub use rmat::{rmat, RmatConfig};
pub use rng::Xoshiro256;
pub use small_world::small_world;

/// A raw uniform edge list: up to `max_edges` pairs drawn from `[0, n)²`,
/// duplicates and self-loops included.
///
/// Unlike the generator families above, this deliberately produces the messy
/// input a [`crate::GraphBuilder`] has to normalize, which is what the
/// property-style test suites feed the builder. The edge *count* is itself
/// drawn from the RNG so that small and empty graphs appear in every sweep.
pub fn random_edge_list(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> Vec<(u32, u32)> {
    assert!(n > 0, "vertex range must be non-empty");
    let m = rng.next_index(max_edges + 1);
    (0..m)
        .map(|_| {
            (
                rng.next_bounded(n as u64) as u32,
                rng.next_bounded(n as u64) as u32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_edge_list_respects_bounds_and_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(3);
        let mut b = Xoshiro256::seed_from_u64(3);
        let ea = random_edge_list(&mut a, 10, 50);
        let eb = random_edge_list(&mut b, 10, 50);
        assert_eq!(ea, eb);
        assert!(ea.len() <= 50);
        assert!(ea.iter().all(|&(u, v)| u < 10 && v < 10));
    }
}
