//! Multi-component graphs: SCC blocks chained by one-way bridges.
//!
//! The shape production service graphs decompose into — many medium strongly
//! connected components (regions, tenants, shards of a transaction network)
//! joined by acyclic bridge traffic — and the canonical instance family of
//! the sharded-solving pipeline: the bench scenario, the differential test
//! kit, and the examples all draw from this generator.
//!
//! Each block is a Hamiltonian ring (guaranteeing the block is one SCC) plus
//! random chords for realistic cycle density. Consecutive blocks are joined
//! by a single forward bridge edge, which keeps every block its own SCC
//! while making the graph weakly connected, and an optional directed tail
//! adds an acyclic fringe of trivial components.

use super::rng::Xoshiro256;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Parameters of [`multi_scc_chain`].
#[derive(Debug, Clone)]
pub struct MultiSccConfig {
    /// Vertices of each block, in chain order. Every entry must be ≥ 2 for
    /// the block to be a non-trivial SCC.
    pub component_sizes: Vec<u32>,
    /// Random intra-block chord edges drawn per block (before dedup), one
    /// entry per block.
    pub chords_per_component: Vec<usize>,
    /// Vertices of the acyclic tail appended after the last block
    /// (`0` for none).
    pub tail_len: u32,
    /// RNG seed; the construction is fully deterministic.
    pub seed: u64,
}

impl MultiSccConfig {
    /// `components` equal blocks of `size` vertices with `chords` random
    /// chords each.
    pub fn uniform(components: usize, size: u32, chords: usize, tail_len: u32, seed: u64) -> Self {
        MultiSccConfig {
            component_sizes: vec![size; components],
            chords_per_component: vec![chords; components],
            tail_len,
            seed,
        }
    }
}

/// Build the chained multi-SCC graph described by `config`.
///
/// Block `i` occupies a contiguous id range; block `i`'s last vertex bridges
/// to block `i + 1`'s first vertex. The SCC decomposition of the result has
/// exactly one non-trivial component per block (sizes as configured) plus
/// `tail_len` trivial vertices.
pub fn multi_scc_chain(config: &MultiSccConfig) -> CsrGraph {
    assert_eq!(
        config.component_sizes.len(),
        config.chords_per_component.len(),
        "one chord count per block"
    );
    let blocks = config.component_sizes.len();
    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::new();
    let mut base = 0u32;
    for (i, (&n, &chords)) in config
        .component_sizes
        .iter()
        .zip(&config.chords_per_component)
        .enumerate()
    {
        assert!(n >= 2, "block {i} needs >= 2 vertices to form an SCC");
        // The ring makes the block one SCC ...
        for v in 0..n {
            builder.add_edge(base + v, base + (v + 1) % n);
        }
        // ... and random chords give it realistic cycle density.
        for _ in 0..chords {
            let u = base + rng.next_bounded(n as u64) as u32;
            let v = base + rng.next_bounded(n as u64) as u32;
            if u != v {
                builder.add_edge(u, v);
            }
        }
        if i + 1 < blocks {
            builder.add_edge(base + n - 1, base + n);
        }
        base += n;
    }
    if config.tail_len > 0 && base > 0 {
        builder.add_edge(base - 1, base);
        for i in 0..config.tail_len - 1 {
            builder.add_edge(base + i, base + i + 1);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condense::Condensation;
    use crate::Graph;

    #[test]
    fn blocks_become_exactly_the_configured_sccs() {
        let config = MultiSccConfig {
            component_sizes: vec![9, 5, 3],
            chords_per_component: vec![20, 10, 5],
            tail_len: 4,
            seed: 7,
        };
        let g = multi_scc_chain(&config);
        assert_eq!(g.num_vertices(), 9 + 5 + 3 + 4);
        let cond = Condensation::of(&g);
        let mut sizes: Vec<usize> = cond.non_trivial().map(|c| cond.members(c).len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 5, 9]);
        assert_eq!(cond.trivial_vertices(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = MultiSccConfig::uniform(4, 50, 150, 5, 99);
        let a = multi_scc_chain(&config);
        let b = multi_scc_chain(&config);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn zero_tail_and_single_block_work() {
        let g = multi_scc_chain(&MultiSccConfig::uniform(1, 6, 0, 0, 1));
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6); // the bare ring
        let cond = Condensation::of(&g);
        assert_eq!(cond.non_trivial().count(), 1);
    }
}
