//! Classic deterministic topologies used in tests, examples, and ablations.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::rng::Xoshiro256;
use crate::types::VertexId;

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
///
/// For `n >= 3` the graph contains exactly one simple cycle of length `n`; it is
/// the canonical witness for hop-constraint boundary tests (`k = n` vs
/// `k = n - 1`).
pub fn directed_cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    if n > 1 {
        for i in 0..n {
            b.add_edge(i as VertexId, ((i + 1) % n) as VertexId);
        }
    }
    b.reserve_vertices(n);
    b.build()
}

/// Directed path `0 -> 1 -> ... -> n-1` (acyclic).
pub fn directed_path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId);
    }
    b.reserve_vertices(n);
    b.build()
}

/// Complete directed graph on `n` vertices: every ordered pair `(u, v)` with
/// `u != v` is an edge. Contains `n (n - 1) / 2` 2-cycles and a dense supply of
/// longer cycles — the stress test for cover-size correctness.
pub fn complete_digraph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

/// Layered DAG with `layers` layers of `width` vertices; every vertex has an
/// edge to every vertex of the next layer. Acyclic by construction, so any
/// correct cover algorithm must return the empty cover on it.
pub fn layered_dag(layers: usize, width: usize) -> CsrGraph {
    let n = layers * width;
    let mut b = GraphBuilder::with_capacity(n, n * width);
    for l in 1..layers {
        for a in 0..width {
            for bix in 0..width {
                let u = ((l - 1) * width + a) as VertexId;
                let v = (l * width + bix) as VertexId;
                b.add_edge(u, v);
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

/// Random DAG: each ordered pair `(u, v)` with `u < v` becomes an edge with
/// probability `p`. Acyclic by construction.
pub fn random_dag(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, ((n * n) as f64 * p * 0.5) as usize + 1);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.next_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn cycle_has_n_edges_and_degree_one() {
        let g = directed_cycle(6);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn tiny_cycles_degenerate_gracefully() {
        assert_eq!(directed_cycle(0).num_vertices(), 0);
        assert_eq!(directed_cycle(1).num_edges(), 0);
        // n = 2 yields the 2-cycle pair.
        let g = directed_cycle(2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.count_bidirectional_pairs(), 1);
    }

    #[test]
    fn path_is_acyclic_and_linear() {
        let g = directed_path(5);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn complete_digraph_edge_count() {
        let g = complete_digraph(5);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.count_bidirectional_pairs(), 10);
    }

    #[test]
    fn layered_dag_shape() {
        let g = layered_dag(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 2 * 16);
        // No edge goes backwards.
        for e in g.edges() {
            assert!(e.source / 4 < e.target / 4);
        }
    }

    #[test]
    fn random_dag_has_only_forward_edges() {
        let g = random_dag(30, 0.2, 99);
        for e in g.edges() {
            assert!(e.source < e.target);
        }
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn random_dag_is_deterministic() {
        let a = random_dag(20, 0.3, 7);
        let b = random_dag(20, 0.3, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }
}
