//! Directed preferential-attachment (scale-free) generator with tunable
//! reciprocity.
//!
//! Real social and e-commerce graphs — the application domain of the paper —
//! have heavy-tailed in-degree distributions and a significant fraction of
//! reciprocated edges (which are exactly the 2-cycles toggled in Table IV).
//! This generator reproduces both properties:
//!
//! * new vertices attach `out_degree` edges to existing vertices chosen
//!   proportionally to in-degree + 1 (Bollobás-style directed preferential
//!   attachment approximated by the standard "repeated-targets" trick),
//! * each new edge is reciprocated with probability `reciprocity`,
//! * a fraction `random_rewire` of targets is chosen uniformly to keep the tail
//!   from becoming degenerate at small sizes.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::rng::Xoshiro256;
use crate::types::VertexId;

/// Configuration for [`preferential_attachment`].
#[derive(Debug, Clone, Copy)]
pub struct PreferentialConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Out-edges attached per new vertex.
    pub out_degree: usize,
    /// Probability that an attached edge is reciprocated (creates a 2-cycle).
    pub reciprocity: f64,
    /// Fraction of targets drawn uniformly at random instead of preferentially.
    pub random_rewire: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PreferentialConfig {
    fn default() -> Self {
        PreferentialConfig {
            num_vertices: 1000,
            out_degree: 4,
            reciprocity: 0.2,
            random_rewire: 0.1,
            seed: 42,
        }
    }
}

/// Generate a directed scale-free graph per [`PreferentialConfig`].
pub fn preferential_attachment(cfg: &PreferentialConfig) -> CsrGraph {
    let n = cfg.num_vertices;
    let d = cfg.out_degree.max(1);
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, n * d * 2);

    if n >= 2 {
        // `targets` holds one entry per (in-)edge endpoint: sampling uniformly
        // from it is sampling proportionally to in-degree (+1 via the seed
        // entries), the classic Barabási–Albert implementation trick.
        let mut targets: Vec<VertexId> = Vec::with_capacity(n * d * 2);
        // Seed clique: a small directed cycle over the first `d + 1` vertices so
        // early attachment has something to point at.
        let seed_size = (d + 1).min(n);
        for i in 0..seed_size {
            let u = i as VertexId;
            let v = ((i + 1) % seed_size) as VertexId;
            if u != v {
                b.add_edge(u, v);
                targets.push(v);
                targets.push(u);
            }
        }
        for u in seed_size..n {
            let u = u as VertexId;
            for _ in 0..d {
                let v = if targets.is_empty() || rng.next_bool(cfg.random_rewire) {
                    rng.next_index(u as usize) as VertexId
                } else {
                    targets[rng.next_index(targets.len())]
                };
                if v == u {
                    continue;
                }
                b.add_edge(u, v);
                targets.push(v);
                targets.push(u);
                if rng.next_bool(cfg.reciprocity) {
                    b.add_edge(v, u);
                    targets.push(u);
                    targets.push(v);
                }
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn cfg(n: usize, d: usize, rec: f64, seed: u64) -> PreferentialConfig {
        PreferentialConfig {
            num_vertices: n,
            out_degree: d,
            reciprocity: rec,
            random_rewire: 0.1,
            seed,
        }
    }

    #[test]
    fn size_roughly_matches_request() {
        let g = preferential_attachment(&cfg(2000, 5, 0.0, 1));
        assert_eq!(g.num_vertices(), 2000);
        let m = g.num_edges();
        assert!(m > 2000 * 3 && m < 2000 * 7, "m = {m}");
    }

    #[test]
    fn reciprocity_increases_two_cycles() {
        let low = preferential_attachment(&cfg(1500, 4, 0.0, 2));
        let high = preferential_attachment(&cfg(1500, 4, 0.6, 2));
        assert!(high.count_bidirectional_pairs() > low.count_bidirectional_pairs() + 100);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = preferential_attachment(&cfg(3000, 4, 0.1, 3));
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_vertices() as f64;
        // A scale-free graph has hubs far above the average.
        assert!(max_in as f64 > avg_in * 8.0, "max {max_in}, avg {avg_in}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = preferential_attachment(&cfg(800, 3, 0.2, 9));
        let b = preferential_attachment(&cfg(800, 3, 0.2, 9));
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn no_self_loops() {
        let g = preferential_attachment(&cfg(500, 6, 0.3, 4));
        assert!(g.edges().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(
            preferential_attachment(&cfg(0, 3, 0.2, 1)).num_vertices(),
            0
        );
        assert_eq!(preferential_attachment(&cfg(1, 3, 0.2, 1)).num_edges(), 0);
    }
}
