//! Erdős–Rényi uniform random directed graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::gen::rng::Xoshiro256;
use crate::types::VertexId;

/// `G(n, p)`: every ordered pair `(u, v)` with `u != v` becomes an edge with
/// probability `p`, independently.
///
/// Suitable for small and medium `n`; the loop is `O(n^2)`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let expected = ((n * n) as f64 * p) as usize + 1;
    let mut b = GraphBuilder::with_capacity(n, expected);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.next_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

/// `G(n, m)`: exactly up to `m` distinct uniform random directed edges
/// (self-loops excluded, duplicates retried a bounded number of times).
///
/// This is the generator of choice for matching the published `|V|`/`|E|` of a
/// dataset when no skew is required; it runs in `O(m)` expected time and is
/// usable at tens of millions of edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    if n >= 2 {
        let max_edges = n.saturating_mul(n - 1);
        let target = m.min(max_edges);
        let mut seen = std::collections::HashSet::with_capacity(target * 2);
        let mut attempts = 0usize;
        // Cap attempts so that dense requests near n(n-1) cannot loop forever.
        let attempt_cap = target.saturating_mul(20).max(1024);
        while seen.len() < target && attempts < attempt_cap {
            attempts += 1;
            let u = rng.next_index(n) as VertexId;
            let v = rng.next_index(n) as VertexId;
            if u == v {
                continue;
            }
            if seen.insert(((u as u64) << 32) | v as u64) {
                b.add_edge(u, v);
            }
        }
    }
    b.reserve_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn gnp_expected_density() {
        let g = erdos_renyi_gnp(100, 0.05, 1);
        let expected = 100.0 * 99.0 * 0.05;
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < expected * 0.5, "m = {m}");
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn gnm_hits_requested_edge_count() {
        let g = erdos_renyi_gnm(1000, 5000, 2);
        assert_eq!(g.num_edges(), 5000);
        assert_eq!(g.num_vertices(), 1000);
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        let a = erdos_renyi_gnm(200, 800, 3);
        let b = erdos_renyi_gnm(200, 800, 3);
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
        let c = erdos_renyi_gnm(200, 800, 4);
        assert!(a.edges().zip(c.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn gnm_caps_at_maximum_possible_edges() {
        let g = erdos_renyi_gnm(4, 1000, 5);
        assert!(g.num_edges() <= 12);
        assert!(g.num_edges() >= 10, "should get close to complete");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(erdos_renyi_gnm(0, 10, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi_gnm(1, 10, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.9, 1).num_edges(), 0);
    }
}
