//! Iterator-based graph views — the abstraction that lets cycle searches run
//! over storages that cannot hand out contiguous adjacency slices.
//!
//! The [`Graph`](crate::Graph) trait exposes neighbors as sorted `&[VertexId]`
//! slices, which is perfect for the immutable [`CsrGraph`](crate::CsrGraph) but
//! impossible for layered storages such as [`DeltaGraph`](crate::DeltaGraph),
//! whose adjacency is the *merge* of a CSR base, an inserted-edge overlay and a
//! tombstone set. [`GraphView`] relaxes the contract to "sorted, deduplicated
//! iteration": every [`Graph`] automatically is a [`GraphView`] (the blanket
//! impl below iterates the slices), and overlay structures implement
//! [`GraphView`] directly with merged iteration.
//!
//! The hop-constrained search primitives in `tdb-cycle` (naive DFS, block DFS,
//! bounded BFS, the edge-cycle search) and the minimal-pruning pass in
//! `tdb-core` are generic over this trait, so the same search code serves both
//! the static solve path and the incremental maintenance path in `tdb-dynamic`.

use crate::types::VertexId;
use crate::Graph;

/// Read-only directed-graph view with iterator-based adjacency access.
///
/// Contract mirrors [`Graph`]: vertex ids are dense `0..vertex_count()`, and
/// both neighbor iterators yield ascending, duplicate-free ids. Method names
/// are deliberately distinct from [`Graph`]'s so that a type implementing both
/// (every [`Graph`] does, through the blanket impl) never produces ambiguous
/// method calls.
pub trait GraphView {
    /// Number of vertices. Vertex ids are `0..vertex_count() as VertexId`.
    fn vertex_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Out-neighbors of `v`, ascending and duplicate-free.
    fn out_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_;

    /// In-neighbors of `v`, ascending and duplicate-free.
    fn in_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_;

    /// Out-degree of `v`. Implementations with O(1) degree should override.
    #[inline]
    fn out_deg(&self, v: VertexId) -> usize {
        self.out_iter(v).count()
    }

    /// In-degree of `v`. Implementations with O(1) degree should override.
    #[inline]
    fn in_deg(&self, v: VertexId) -> usize {
        self.in_iter(v).count()
    }

    /// Whether the directed edge `(u, v)` is present.
    #[inline]
    fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_iter(u).any(|w| w == v)
    }

    /// Iterator over every vertex id.
    #[inline]
    fn vertex_ids(&self) -> std::ops::Range<VertexId> {
        0..self.vertex_count() as VertexId
    }
}

impl<G: Graph> GraphView for G {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn out_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_neighbors(v).iter().copied()
    }

    #[inline]
    fn in_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_neighbors(v).iter().copied()
    }

    #[inline]
    fn out_deg(&self, v: VertexId) -> usize {
        self.out_degree(v)
    }

    #[inline]
    fn in_deg(&self, v: VertexId) -> usize {
        self.in_degree(v)
    }

    #[inline]
    fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn blanket_impl_mirrors_graph() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(g.vertex_count(), g.num_vertices());
        assert_eq!(g.edge_count(), g.num_edges());
        assert_eq!(g.out_iter(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.in_iter(2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.out_deg(0), 2);
        assert_eq!(g.in_deg(0), 1);
        assert!(g.contains_edge(2, 0));
        assert!(!g.contains_edge(1, 0));
        assert_eq!(g.vertex_ids().count(), 3);
    }

    // A minimal generic consumer, proving search-style code can be written
    // against the view alone.
    fn count_edges_via_view<V: GraphView>(g: &V) -> usize {
        g.vertex_ids().map(|v| g.out_iter(v).count()).sum()
    }

    #[test]
    fn generic_consumers_accept_any_graph() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(count_edges_via_view(&g), 3);
    }
}
