//! Compressed-sparse-row storage of a directed graph.

use crate::types::{Edge, VertexId};
use crate::Graph;

/// Immutable directed graph in compressed-sparse-row (CSR) layout.
///
/// Both the out-adjacency and the in-adjacency are stored, because the paper's
/// algorithms traverse in both directions:
///
/// * the block/barrier DFS (`NodeNecessary`, Algorithm 9) walks out-edges while
///   `Unblock` (Algorithm 10) propagates over in-edges,
/// * the BFS-filter (Algorithm 11) walks the reverse direction to bound the
///   length of the shortest closed walk through a vertex,
/// * the top-down scan (Algorithm 8) conceptually "inserts all in-edges and
///   out-edges" of the vertex under test.
///
/// Adjacency lists are sorted ascending and deduplicated, so edge membership is
/// a binary search and bidirectional-edge detection (2-cycles) is a merge.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsrGraph {
    /// `out_offsets[v]..out_offsets[v + 1]` indexes `out_targets`.
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    /// `in_offsets[v]..in_offsets[v + 1]` indexes `in_sources`.
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

impl CsrGraph {
    /// Build a graph with `n` vertices from an edge buffer.
    ///
    /// The buffer is sorted and deduplicated in place (which is why it is taken
    /// by mutable reference — the caller's allocation is reused). Self-loops are
    /// kept if present; use [`crate::GraphBuilder`] for the normalizing path.
    pub fn from_edges(n: usize, edges: &mut Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();

        let mut out_offsets = vec![0usize; n + 1];
        for e in edges.iter() {
            debug_assert!((e.source as usize) < n && (e.target as usize) < n);
            out_offsets[e.source as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0 as VertexId; edges.len()];
        {
            // Edges are sorted by (source, target), so targets land sorted too.
            let mut cursor = out_offsets.clone();
            for e in edges.iter() {
                let slot = cursor[e.source as usize];
                out_targets[slot] = e.target;
                cursor[e.source as usize] += 1;
            }
        }

        let mut in_offsets = vec![0usize; n + 1];
        for e in edges.iter() {
            in_offsets[e.target as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as VertexId; edges.len()];
        {
            let mut cursor = in_offsets.clone();
            for e in edges.iter() {
                let slot = cursor[e.target as usize];
                in_sources[slot] = e.source;
                cursor[e.target as usize] += 1;
            }
        }
        // Sources for a fixed target arrive in ascending order because the edge
        // buffer is sorted by source first; the counting pass preserves it.
        debug_assert!((0..n).all(|v| in_sources[in_offsets[v]..in_offsets[v + 1]]
            .windows(2)
            .all(|w| w[0] <= w[1])));

        CsrGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Build an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
        }
    }

    /// The transpose (every edge reversed) of this graph.
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
        }
    }

    /// Number of bidirectional (reciprocated) edge pairs `{u, v}` with both
    /// `(u, v)` and `(v, u)` present. Self-loops are not counted.
    ///
    /// These pairs are exactly the 2-cycles that Table IV of the paper toggles.
    pub fn count_bidirectional_pairs(&self) -> usize {
        let mut count = 0usize;
        for u in self.vertices() {
            for &v in self.out_neighbors(u) {
                if v > u && self.has_edge(v, u) {
                    count += 1;
                }
            }
        }
        count
    }

    /// The induced subgraph on `keep[v] == true` vertices.
    ///
    /// Vertex ids are preserved (the result has the same vertex count); edges
    /// incident to dropped vertices are removed. This realizes the paper's
    /// `G − R` reduced graph as a materialized object — algorithms normally use
    /// [`crate::ActiveSet`] instead to avoid the copy, but the verifier and the
    /// examples use this for clarity.
    pub fn induced_subgraph(&self, keep: &[bool]) -> CsrGraph {
        assert_eq!(keep.len(), self.num_vertices());
        let mut edges: Vec<Edge> = Vec::new();
        for u in self.vertices() {
            if !keep[u as usize] {
                continue;
            }
            for &v in self.out_neighbors(u) {
                if keep[v as usize] {
                    edges.push(Edge::new(u, v));
                }
            }
        }
        CsrGraph::from_edges(self.num_vertices(), &mut edges)
    }

    /// The graph with the given vertex set removed (complement of
    /// [`CsrGraph::induced_subgraph`] semantics: `remove[v] == true` drops `v`).
    pub fn remove_vertices(&self, remove: &[bool]) -> CsrGraph {
        assert_eq!(remove.len(), self.num_vertices());
        let keep: Vec<bool> = remove.iter().map(|r| !r).collect();
        self.induced_subgraph(&keep)
    }

    /// Memory footprint of the adjacency arrays in bytes (excluding the struct
    /// itself). Used by the experiment harness to report working-set sizes.
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_sources.len() * std::mem::size_of::<VertexId>()
    }
}

impl Graph for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    #[inline]
    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    #[inline]
    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0
        graph_from_edges(&[(0, 1), (1, 3), (0, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn out_and_in_adjacency_are_consistent() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for e in g.edges() {
            assert!(t.has_edge(e.target, e.source));
        }
        assert_eq!(t.out_neighbors(3), &[1, 2]);
    }

    #[test]
    fn bidirectional_pair_counting() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3)]);
        assert_eq!(g.count_bidirectional_pairs(), 2);
        let no_pairs = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(no_pairs.count_bidirectional_pairs(), 0);
    }

    #[test]
    fn induced_subgraph_drops_incident_edges() {
        let g = diamond();
        let keep = vec![true, false, true, true];
        let sub = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 3); // 0->2, 2->3, 3->0
        assert!(!sub.has_edge(0, 1));
        assert!(sub.has_edge(3, 0));
    }

    #[test]
    fn remove_vertices_is_complement_of_induced() {
        let g = diamond();
        let remove = vec![false, true, false, false];
        let keep = vec![true, false, true, true];
        let a = g.remove_vertices(&remove);
        let b = g.induced_subgraph(&keep);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert!(b.has_edge(e.source, e.target));
        }
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn from_edges_dedups() {
        let mut edges = vec![Edge::new(0, 1), Edge::new(0, 1), Edge::new(1, 0)];
        let g = CsrGraph::from_edges(2, &mut edges);
        assert_eq!(g.num_edges(), 2);
    }
}
