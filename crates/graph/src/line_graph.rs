//! Directed line-graph transform used by the DARC-DV baseline.
//!
//! The state-of-the-art baseline DARC (Kuhnle et al. 2019) computes an *edge*
//! k-cycle transversal. The paper adapts it to the vertex problem (Section
//! III-B) by converting `G(V, E)` into `G'(V', E')`:
//!
//! * every edge `e_{u,v} ∈ E` becomes a vertex `v_{u,v} ∈ V'`,
//! * an edge runs from `v_{u,v}` to `v_{v,w}` for every length-2 path
//!   `u → v → w` in `G` — i.e. the line-graph edge *is* the shared middle
//!   vertex `v`.
//!
//! A cycle `v_1 → v_2 → … → v_ℓ → v_1` in `G` corresponds to a cycle of the
//! same length in `L(G)` over the edge-vertices, and covering it by choosing a
//! line-graph edge picks the middle vertex of `G` sitting on the cycle. The
//! mapping kept by [`LineGraph`] translates the DARC edge result back to a
//! vertex cover of `G`.

use crate::csr::CsrGraph;
use crate::types::{Edge, VertexId};
use crate::Graph;

/// The directed line graph of a [`CsrGraph`], with the bookkeeping needed to
/// translate line-graph entities back to the original graph.
#[derive(Debug, Clone)]
pub struct LineGraph {
    /// The line graph itself; vertex `i` of this graph is `edge_of[i]` of `G`.
    graph: CsrGraph,
    /// For every line-graph vertex, the original edge it represents.
    edge_of: Vec<Edge>,
}

impl LineGraph {
    /// Build the line graph of `g`.
    ///
    /// The number of vertices equals `g.num_edges()`; the number of edges equals
    /// `Σ_v in_degree(v) · out_degree(v)`, which can be quadratic in skewed
    /// graphs — exactly the blow-up that makes DARC-DV slow on hub-heavy
    /// networks (Section VII of the paper).
    pub fn build(g: &CsrGraph) -> LineGraph {
        // Assign ids to original edges in iteration order (sorted by source,
        // then target, matching `Graph::edges`).
        let mut edge_of = Vec::with_capacity(g.num_edges());
        // edge_id_start[u] = id of the first edge whose source is u.
        let mut edge_id_start = vec![0usize; g.num_vertices() + 1];
        for u in g.vertices() {
            edge_id_start[u as usize + 1] = edge_id_start[u as usize] + g.out_degree(u);
            for &v in g.out_neighbors(u) {
                edge_of.push(Edge::new(u, v));
            }
        }

        let mut line_edges: Vec<Edge> = Vec::new();
        for (id, e) in edge_of.iter().enumerate() {
            // Successors of edge (u, v) are the edges (v, w).
            let v = e.target;
            let first = edge_id_start[v as usize];
            for (offset, &w) in g.out_neighbors(v).iter().enumerate() {
                let succ_id = first + offset;
                debug_assert_eq!(edge_of[succ_id], Edge::new(v, w));
                // Exclude the degenerate successor that walks straight back on a
                // 2-cycle only when it would be a self-loop in L(G) (can't
                // happen: ids differ unless the edge equals itself).
                if succ_id != id {
                    line_edges.push(Edge::new(id as VertexId, succ_id as VertexId));
                }
            }
        }
        let n = edge_of.len();
        let graph = CsrGraph::from_edges(n, &mut line_edges);
        LineGraph { graph, edge_of }
    }

    /// The line graph as a plain [`CsrGraph`].
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The original edge represented by line-graph vertex `lv`.
    pub fn original_edge(&self, lv: VertexId) -> Edge {
        self.edge_of[lv as usize]
    }

    /// Number of line-graph vertices (= original edges).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Translate a line-graph edge `(a, b)` back to the original middle vertex.
    ///
    /// The edge `(v_{u,v}, v_{v,w})` corresponds to vertex `v` of `G`.
    pub fn middle_vertex(&self, line_edge: Edge) -> VertexId {
        let first = self.edge_of[line_edge.source as usize];
        let second = self.edge_of[line_edge.target as usize];
        debug_assert_eq!(first.target, second.source);
        first.target
    }

    /// Translate a set of selected line-graph edges to a vertex set of `G`
    /// (sorted, deduplicated).
    pub fn middle_vertices(&self, line_edges: &[Edge]) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = line_edges.iter().map(|&e| self.middle_vertex(e)).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn triangle_line_graph_is_a_triangle() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let lg = LineGraph::build(&g);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.graph().num_edges(), 3);
        // The line graph of a directed 3-cycle is again a directed 3-cycle.
        for lv in lg.graph().vertices() {
            assert_eq!(lg.graph().out_degree(lv), 1);
            assert_eq!(lg.graph().in_degree(lv), 1);
        }
    }

    #[test]
    fn middle_vertex_translation() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let lg = LineGraph::build(&g);
        for le in lg.graph().edges() {
            let mid = lg.middle_vertex(le);
            let first = lg.original_edge(le.source);
            let second = lg.original_edge(le.target);
            assert_eq!(first.target, mid);
            assert_eq!(second.source, mid);
        }
    }

    #[test]
    fn line_edge_count_matches_in_out_products() {
        let g = graph_from_edges(&[(0, 1), (2, 1), (1, 3), (1, 4), (3, 0)]);
        let lg = LineGraph::build(&g);
        let expected: usize = g.vertices().map(|v| g.in_degree(v) * g.out_degree(v)).sum();
        assert_eq!(lg.graph().num_edges(), expected);
    }

    #[test]
    fn two_cycle_maps_to_two_cycle() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let lg = LineGraph::build(&g);
        assert_eq!(lg.num_vertices(), 2);
        assert_eq!(lg.graph().num_edges(), 2);
        assert_eq!(lg.graph().count_bidirectional_pairs(), 1);
    }

    #[test]
    fn cycle_length_is_preserved() {
        for len in 3..8 {
            let g = crate::gen::directed_cycle(len);
            let lg = LineGraph::build(&g);
            assert_eq!(lg.num_vertices(), len);
            assert_eq!(lg.graph().num_edges(), len);
        }
    }

    #[test]
    fn middle_vertices_dedup() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 1), (1, 4)]);
        let lg = LineGraph::build(&g);
        let all_line_edges: Vec<Edge> = lg.graph().edges().collect();
        let mids = lg.middle_vertices(&all_line_edges);
        // Middle vertices are exactly those with both in- and out-degree > 0.
        assert!(mids.windows(2).all(|w| w[0] < w[1]));
        for &v in &mids {
            assert!(g.in_degree(v) > 0 && g.out_degree(v) > 0);
        }
    }

    #[test]
    fn acyclic_graph_line_graph_is_acyclic_shaped() {
        let g = crate::gen::directed_path(5);
        let lg = LineGraph::build(&g);
        assert_eq!(lg.num_vertices(), 4);
        assert_eq!(lg.graph().num_edges(), 3);
    }
}
