//! Reusable, constant-time-resettable scratch structures for the hot path.
//!
//! The paper's complexity claims (O(k·m) per block query, O(k·n·m) for the
//! top-down family) assume a per-vertex search costs O(visited) — which is
//! only true if the search state can be *reset* without touching all `n`
//! slots. The searchers in `tdb-cycle` run millions of queries per solve, so
//! a `vec![false; n]` per query silently turns the whole solve into O(n²).
//!
//! This module collects the three idioms the workspace uses instead
//! (following the `rust_road_router` data-structure playbook):
//!
//! * [`TimestampedVec`] — a value array paired with a `u32` epoch stamp per
//!   slot. "Clearing" bumps the epoch (O(1)); slots whose stamp is stale read
//!   as the default value. On the rare epoch wrap-around the stamps are
//!   zeroed in full, keeping reads sound across the entire `u32` range.
//! * [`FixedBitSet`] — dense bit mask over one flat boxed `u64`-word slice:
//!   single-register shifts per membership test, one word fill per 64
//!   elements to clear.
//! * [`DfsArena`] — an explicit DFS stack whose frames index into one flat,
//!   shared neighbor arena, replacing recursion (and its per-frame iterator
//!   state) with two reusable `Vec`s that amortize to zero allocation.
//!
//! All three auto-grow: passing a larger index/length extends the structure
//! in place rather than asserting, so reusable engines stay valid when a
//! dynamic graph grows under them.

use crate::types::VertexId;

// ---------------------------------------------------------------------------
// TimestampedVec
// ---------------------------------------------------------------------------

/// A `Vec<T>` with O(1) bulk reset via epoch stamps.
///
/// Each slot carries the epoch at which it was last written; [`reset`]
/// invalidates every slot by bumping the current epoch. Reads of a stale slot
/// return the default value. When the `u32` epoch wraps around, the stamp
/// array is cleared in full once, so a slot stamped two billion resets ago
/// can never alias the current epoch.
///
/// ```
/// use tdb_graph::scratch::TimestampedVec;
///
/// let mut dist: TimestampedVec<u32> = TimestampedVec::new(4, u32::MAX);
/// dist.set(2, 7);
/// assert_eq!(dist.get(2), 7);
/// dist.reset(); // O(1)
/// assert_eq!(dist.get(2), u32::MAX);
/// ```
///
/// [`reset`]: TimestampedVec::reset
#[derive(Debug, Clone)]
pub struct TimestampedVec<T> {
    data: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    default: T,
}

impl<T: Clone> TimestampedVec<T> {
    /// Create with `len` slots, all reading as `default`.
    pub fn new(len: usize, default: T) -> Self {
        TimestampedVec {
            data: vec![default.clone(); len],
            stamp: vec![0; len],
            epoch: 1,
            default,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grow to at least `len` slots (no-op when already large enough). New
    /// slots read as the default value. Existing stamps are untouched, so
    /// growth is O(growth), not O(len).
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.data.len() {
            self.data.resize(len, self.default.clone());
            self.stamp.resize(len, 0);
        }
    }

    /// Invalidate every slot in O(1) by bumping the epoch. On `u32` wrap the
    /// stamps are zeroed in full (once every 2³²−1 resets) so stale slots can
    /// never alias the fresh epoch.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Whether slot `i` was written since the last [`reset`](Self::reset).
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Read slot `i`: the stored value if written this epoch, else the
    /// default.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if self.stamp[i] == self.epoch {
            self.data[i].clone()
        } else {
            self.default.clone()
        }
    }

    /// Write slot `i`, stamping it into the current epoch.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        self.data[i] = value;
        self.stamp[i] = self.epoch;
    }

    /// The current epoch (exposed for the wrap-around property tests).
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Force the epoch counter to `epoch` (`0` is mapped to `1`), clearing
    /// every stamp so the jump cannot resurrect stale slots.
    ///
    /// Test support: lets the wrap-around path (`epoch == u32::MAX` →
    /// [`reset`](Self::reset) → full clear) be exercised without two billion
    /// warm-up resets.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.stamp.iter_mut().for_each(|s| *s = 0);
        self.epoch = epoch.max(1);
    }
}

// ---------------------------------------------------------------------------
// FixedBitSet
// ---------------------------------------------------------------------------

const WORD_BITS: usize = 64;

/// A fixed-universe bit set over `0..len`.
///
/// One flat boxed allocation of `⌈len/64⌉` words — `u64` deliberately, not
/// `u128`: the searcher inner loops test a bit per scanned edge, and a
/// single-register shift beats the double-word shuffle wider words compile
/// to. Clearing is a word fill, membership is a shift and mask, and the
/// 8×-denser-than-`Vec<bool>` layout keeps large masks resident in cache.
///
/// ```
/// use tdb_graph::scratch::FixedBitSet;
///
/// let mut s = FixedBitSet::new(200);
/// assert!(s.insert(150));
/// assert!(!s.insert(150)); // already present
/// assert!(s.contains(150));
/// assert_eq!(s.count_ones(), 1);
/// s.clear_all();
/// assert!(!s.contains(150));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Box<[u64]>,
    len: usize,
}

impl FixedBitSet {
    /// An all-clear set over `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0u64; len.div_ceil(WORD_BITS)].into_boxed_slice(),
            len,
        }
    }

    /// An all-set set over `0..len`.
    pub fn all_set(len: usize) -> Self {
        let mut s = FixedBitSet::new(len);
        s.set_all();
        s
    }

    /// Universe size.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Add `i`; returns `true` when it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        let was_clear = *word & bit == 0;
        *word |= bit;
        was_clear
    }

    /// Remove `i`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        let was_set = *word & bit != 0;
        *word &= !bit;
        was_set
    }

    /// Set membership of `i` explicitly; returns `true` when it changed.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) -> bool {
        if value {
            self.insert(i)
        } else {
            self.remove(i)
        }
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Set every bit in the universe (tail bits beyond `len` stay clear, so
    /// [`count_ones`](Self::count_ones) stays exact).
    pub fn set_all(&mut self) {
        let len = self.len;
        for (idx, w) in self.words.iter_mut().enumerate() {
            let lo = idx * WORD_BITS;
            let in_word = len.saturating_sub(lo).min(WORD_BITS);
            *w = if in_word == WORD_BITS {
                u64::MAX
            } else if in_word == 0 {
                0
            } else {
                (1u64 << in_word) - 1
            };
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Grow the universe to at least `new_len`, with new elements taking
    /// membership `value`. No-op when already large enough. Existing bits are
    /// preserved; the word slice reallocates only when the universe outgrows
    /// its current word count.
    pub fn grow(&mut self, new_len: usize, value: bool) {
        if new_len <= self.len {
            return;
        }
        let old_len = self.len;
        let new_words = new_len.div_ceil(WORD_BITS);
        if new_words > self.words.len() {
            let mut spilled = vec![0u64; new_words].into_boxed_slice();
            spilled[..self.words.len()].copy_from_slice(&self.words);
            self.words = spilled;
        }
        self.len = new_len;
        if value {
            for i in old_len..new_len {
                self.insert(i);
            }
        }
    }

    /// Iterator over set bits in ascending order, word-at-a-time.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(idx, &word)| {
            let base = idx * WORD_BITS;
            std::iter::successors(if word == 0 { None } else { Some(word) }, |&rest| {
                let next = rest & (rest - 1); // drop lowest set bit
                if next == 0 {
                    None
                } else {
                    Some(next)
                }
            })
            .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }
}

// ---------------------------------------------------------------------------
// DfsArena
// ---------------------------------------------------------------------------

/// One suspended DFS frame: a vertex plus a cursor into the shared arena
/// slice holding its (pre-buffered) neighbor list.
#[derive(Debug, Clone, Copy)]
struct Frame {
    vertex: VertexId,
    start: usize,
    cursor: usize,
}

/// An explicit DFS stack with frames indexing into one flat neighbor arena.
///
/// The graph trait's neighbor iterators are opaque `impl Iterator` values and
/// cannot be stored in frames, so [`push`](Self::push) buffers each vertex's
/// neighbors into a shared flat `Vec` instead; popping truncates the arena
/// back. This keeps per-frame cost at O(out-degree) — the same work the
/// recursive formulation does — while both backing vectors are reused across
/// queries, amortizing to zero allocation in steady state.
///
/// The traversal order is identical to the recursive `for w in out(v)` loop:
/// neighbors are consumed in iterator order via
/// [`next_neighbor`](Self::next_neighbor).
#[derive(Debug, Clone, Default)]
pub struct DfsArena {
    frames: Vec<Frame>,
    arena: Vec<VertexId>,
}

impl DfsArena {
    /// An empty arena (no capacity held; it grows on first use and is then
    /// reused).
    pub fn new() -> Self {
        DfsArena::default()
    }

    /// Drop all frames and buffered neighbors (capacity retained).
    #[inline]
    pub fn clear(&mut self) {
        self.frames.clear();
        self.arena.clear();
    }

    /// Current stack depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.frames.is_empty()
    }

    /// Push a frame for `vertex`, buffering its neighbors into the arena.
    #[inline]
    pub fn push(&mut self, vertex: VertexId, neighbors: impl Iterator<Item = VertexId>) {
        let start = self.arena.len();
        self.arena.extend(neighbors);
        self.frames.push(Frame {
            vertex,
            start,
            cursor: start,
        });
    }

    /// The vertex of the top (deepest) frame.
    #[inline]
    pub fn top(&self) -> Option<VertexId> {
        self.frames.last().map(|f| f.vertex)
    }

    /// Advance the top frame's neighbor cursor, returning the next unvisited
    /// neighbor (or `None` when the frame is exhausted).
    #[inline]
    pub fn next_neighbor(&mut self) -> Option<VertexId> {
        let frame = self.frames.last_mut()?;
        if frame.cursor < self.arena.len() {
            let w = self.arena[frame.cursor];
            frame.cursor += 1;
            Some(w)
        } else {
            None
        }
    }

    /// Pop the top frame, releasing its arena slice, and return its vertex.
    #[inline]
    pub fn pop(&mut self) -> Option<VertexId> {
        let frame = self.frames.pop()?;
        self.arena.truncate(frame.start);
        Some(frame.vertex)
    }

    /// The vertices of the current stack from root to top — the DFS path.
    pub fn path(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.frames.iter().map(|f| f.vertex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamped_set_get_reset() {
        let mut v: TimestampedVec<u32> = TimestampedVec::new(3, u32::MAX);
        assert_eq!(v.len(), 3);
        assert!(!v.is_set(0));
        v.set(0, 5);
        v.set(2, 9);
        assert!(v.is_set(0));
        assert_eq!(v.get(0), 5);
        assert_eq!(v.get(1), u32::MAX);
        v.reset();
        assert!(!v.is_set(0));
        assert_eq!(v.get(2), u32::MAX);
        v.set(2, 1);
        assert_eq!(v.get(2), 1);
    }

    #[test]
    fn timestamped_wraparound_clears_stale_stamps() {
        let mut v: TimestampedVec<u32> = TimestampedVec::new(2, 0);
        v.set(0, 42);
        // Jump to the last epoch before the wrap; the forced jump clears all
        // stamps, so slot 0 must read as default again.
        v.force_epoch(u32::MAX);
        assert_eq!(v.get(0), 0);
        v.set(1, 7);
        assert_eq!(v.get(1), 7);
        // This reset wraps: epoch u32::MAX -> 0 -> full clear -> 1.
        v.reset();
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.get(1), 0);
        // A stamp written at epoch 1 pre-wrap must NOT leak into the fresh
        // epoch 1: the wrap cleared it.
        assert!(!v.is_set(0));
        assert!(!v.is_set(1));
    }

    #[test]
    fn timestamped_ensure_len_grows_with_defaults() {
        let mut v: TimestampedVec<bool> = TimestampedVec::new(2, false);
        v.set(1, true);
        v.ensure_len(5);
        assert_eq!(v.len(), 5);
        assert!(v.get(1));
        assert!(!v.get(4));
        v.ensure_len(3); // shrink requests are no-ops
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn bitset_small_universe() {
        let mut s = FixedBitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(99));
        assert!(!s.insert(99));
        assert!(s.contains(99));
        assert!(!s.contains(50));
        assert_eq!(s.count_ones(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn bitset_multi_word_universe() {
        let mut s = FixedBitSet::new(300);
        s.insert(0);
        s.insert(127);
        s.insert(128);
        s.insert(299);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 127, 128, 299]);
        assert_eq!(s.count_ones(), 4);
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn bitset_set_all_masks_tail() {
        for len in [0usize, 1, 127, 128, 129, 255, 256, 300] {
            let s = FixedBitSet::all_set(len);
            assert_eq!(s.count_ones(), len, "len={len}");
            assert_eq!(s.iter_ones().count(), len, "len={len}");
        }
    }

    #[test]
    fn bitset_grow_preserves_and_spills() {
        let mut s = FixedBitSet::new(4);
        s.insert(1);
        s.grow(10, true);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(7));
        assert_eq!(s.count_ones(), 1 + 6);
        // Grow across a word boundary.
        s.grow(200, false);
        assert!(s.contains(1));
        assert!(s.contains(9));
        assert!(!s.contains(199));
        s.grow(150, true); // shrink request: no-op
        assert_eq!(s.len(), 200);
    }

    #[test]
    fn arena_dfs_matches_recursion_order() {
        // Tiny diamond: 0 -> {1, 2}, 1 -> {3}, 2 -> {3}.
        let out: Vec<Vec<VertexId>> = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let mut order = Vec::new();
        let mut dfs = DfsArena::new();
        let mut seen = FixedBitSet::new(4);
        dfs.push(0, out[0].iter().copied());
        seen.insert(0);
        order.push(0);
        while !dfs.is_done() {
            match dfs.next_neighbor() {
                Some(w) if seen.insert(w as usize) => {
                    order.push(w);
                    dfs.push(w, out[w as usize].iter().copied());
                }
                Some(_) => {}
                None => {
                    dfs.pop();
                }
            }
        }
        assert_eq!(order, vec![0, 1, 3, 2]);
        assert!(dfs.is_done());
        assert_eq!(dfs.arena.len(), 0); // fully released
    }

    #[test]
    fn arena_path_tracks_stack() {
        let mut dfs = DfsArena::new();
        dfs.push(5, [6].into_iter());
        dfs.push(6, std::iter::empty());
        assert_eq!(dfs.path().collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(dfs.top(), Some(6));
        assert_eq!(dfs.depth(), 2);
        assert_eq!(dfs.pop(), Some(6));
        assert_eq!(dfs.pop(), Some(5));
        assert_eq!(dfs.pop(), None);
        dfs.clear();
        assert!(dfs.is_done());
    }
}
