//! Property-based tests for the graph substrate: construction invariants and
//! serialization round-trips under arbitrary edge lists.

use proptest::prelude::*;

use tdb_graph::builder::graph_from_edges;
use tdb_graph::io::{from_binary, parse_edge_list, to_binary};
use tdb_graph::line_graph::LineGraph;
use tdb_graph::scc::tarjan_scc;
use tdb_graph::{Graph, GraphBuilder};

fn arb_edges(n: u32, m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..m)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The builder always produces sorted, deduplicated, self-loop-free
    /// adjacency whose out- and in-views describe the same edge set.
    #[test]
    fn builder_invariants(edges in arb_edges(40, 200)) {
        let g = graph_from_edges(&edges);
        let mut count = 0usize;
        for v in g.vertices() {
            let outs = g.out_neighbors(v);
            prop_assert!(outs.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicate adjacency");
            prop_assert!(!outs.contains(&v), "self-loop survived");
            for &w in outs {
                prop_assert!(g.in_neighbors(w).binary_search(&v).is_ok(), "missing reverse entry");
                count += 1;
            }
        }
        prop_assert_eq!(count, g.num_edges());
        // Every surviving edge came from the input and every non-self-loop
        // input edge survives.
        let input: std::collections::HashSet<_> =
            edges.iter().filter(|(u, v)| u != v).copied().collect();
        prop_assert_eq!(g.num_edges(), input.len());
        for e in g.edges() {
            prop_assert!(input.contains(&(e.source, e.target)));
        }
    }

    /// Binary serialization round-trips exactly.
    #[test]
    fn binary_round_trip(edges in arb_edges(60, 300), extra_vertices in 0usize..5) {
        let mut b = GraphBuilder::new();
        b.extend_edges(edges.iter().copied());
        let n_hint = edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0);
        b.reserve_vertices(n_hint + extra_vertices);
        let g = b.build();
        let back = from_binary(&to_binary(&g)).unwrap();
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        prop_assert!(g.edges().zip(back.edges()).all(|(a, b)| a == b));
    }

    /// Text serialization round-trips the edge set (vertex count can only
    /// shrink if trailing vertices are isolated, so compare edges).
    #[test]
    fn text_round_trip(edges in arb_edges(50, 250)) {
        let g = graph_from_edges(&edges);
        let mut text = String::new();
        for e in g.edges() {
            text.push_str(&format!("{} {}\n", e.source, e.target));
        }
        let back = parse_edge_list(std::io::Cursor::new(text)).unwrap();
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert!(back.has_edge(e.source, e.target));
        }
    }

    /// The transpose is an involution and preserves degrees mirrored.
    #[test]
    fn transpose_involution(edges in arb_edges(40, 200)) {
        let g = graph_from_edges(&edges);
        let t = g.transpose();
        prop_assert_eq!(t.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
        let tt = t.transpose();
        prop_assert!(g.edges().zip(tt.edges()).all(|(a, b)| a == b));
    }

    /// Tarjan SCC: two vertices share a component iff each reaches the other
    /// (checked against a brute-force reachability closure on small graphs).
    #[test]
    fn scc_matches_mutual_reachability(edges in arb_edges(16, 60)) {
        let g = graph_from_edges(&edges);
        let n = g.num_vertices();
        // Floyd–Warshall style boolean closure.
        let mut reach = vec![vec![false; n]; n];
        for v in 0..n {
            reach[v][v] = true;
        }
        for e in g.edges() {
            reach[e.source as usize][e.target as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        let scc = tarjan_scc(&g);
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u][v] && reach[v][u];
                prop_assert_eq!(
                    scc.same_component(u as u32, v as u32),
                    mutual,
                    "vertices {} and {}", u, v
                );
            }
        }
    }

    /// The line graph has exactly Σ in(v)·out(v) edges and every line edge's
    /// endpoints share the middle vertex.
    #[test]
    fn line_graph_structure(edges in arb_edges(25, 120)) {
        let g = graph_from_edges(&edges);
        let lg = LineGraph::build(&g);
        let expected: usize = g.vertices().map(|v| g.in_degree(v) * g.out_degree(v)).sum();
        prop_assert_eq!(lg.graph().num_edges(), expected);
        prop_assert_eq!(lg.num_vertices(), g.num_edges());
        for le in lg.graph().edges() {
            let first = lg.original_edge(le.source);
            let second = lg.original_edge(le.target);
            prop_assert_eq!(first.target, second.source);
            prop_assert_eq!(lg.middle_vertex(le), first.target);
        }
    }
}
