//! Property-style tests for the graph substrate: construction invariants and
//! serialization round-trips under arbitrary edge lists.
//!
//! Deterministic random cases driven by the vendored xoshiro256** RNG replace
//! proptest (the workspace builds offline); each case is reproducible from its
//! printed seed.

use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::io::{from_binary, parse_edge_list, to_binary};
use tdb_graph::line_graph::LineGraph;
use tdb_graph::scc::tarjan_scc;
use tdb_graph::{Graph, GraphBuilder};

/// The builder always produces sorted, deduplicated, self-loop-free
/// adjacency whose out- and in-views describe the same edge set.
#[test]
fn builder_invariants() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(case);
        let edges = random_edge_list(&mut rng, 40, 200);
        let g = graph_from_edges(&edges);
        let mut count = 0usize;
        for v in g.vertices() {
            let outs = g.out_neighbors(v);
            assert!(
                outs.windows(2).all(|w| w[0] < w[1]),
                "case {case}: unsorted/duplicate adjacency"
            );
            assert!(!outs.contains(&v), "case {case}: self-loop survived");
            for &w in outs {
                assert!(
                    g.in_neighbors(w).binary_search(&v).is_ok(),
                    "case {case}: missing reverse entry"
                );
                count += 1;
            }
        }
        assert_eq!(count, g.num_edges(), "case {case}");
        // Every surviving edge came from the input and every non-self-loop
        // input edge survives.
        let input: std::collections::HashSet<_> =
            edges.iter().filter(|(u, v)| u != v).copied().collect();
        assert_eq!(g.num_edges(), input.len(), "case {case}");
        for e in g.edges() {
            assert!(input.contains(&(e.source, e.target)), "case {case}");
        }
    }
}

/// Binary serialization round-trips exactly.
#[test]
fn binary_round_trip() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(1000 + case);
        let edges = random_edge_list(&mut rng, 60, 300);
        let extra_vertices = rng.next_index(5);
        let mut b = GraphBuilder::new();
        b.extend_edges(edges.iter().copied());
        let n_hint = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        b.reserve_vertices(n_hint + extra_vertices);
        let g = b.build();
        let back = from_binary(&to_binary(&g)).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices(), "case {case}");
        assert_eq!(back.num_edges(), g.num_edges(), "case {case}");
        assert!(
            g.edges().zip(back.edges()).all(|(a, b)| a == b),
            "case {case}"
        );
    }
}

/// Text serialization round-trips the edge set (vertex count can only
/// shrink if trailing vertices are isolated, so compare edges).
#[test]
fn text_round_trip() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(2000 + case);
        let edges = random_edge_list(&mut rng, 50, 250);
        let g = graph_from_edges(&edges);
        let mut text = String::new();
        for e in g.edges() {
            text.push_str(&format!("{} {}\n", e.source, e.target));
        }
        let back = parse_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(back.num_edges(), g.num_edges(), "case {case}");
        for e in g.edges() {
            assert!(back.has_edge(e.source, e.target), "case {case}");
        }
    }
}

/// The transpose is an involution and preserves degrees mirrored.
#[test]
fn transpose_involution() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + case);
        let edges = random_edge_list(&mut rng, 40, 200);
        let g = graph_from_edges(&edges);
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges(), "case {case}");
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), t.in_degree(v), "case {case}");
            assert_eq!(g.in_degree(v), t.out_degree(v), "case {case}");
        }
        let tt = t.transpose();
        assert!(
            g.edges().zip(tt.edges()).all(|(a, b)| a == b),
            "case {case}"
        );
    }
}

/// Tarjan SCC: two vertices share a component iff each reaches the other
/// (checked against a brute-force reachability closure on small graphs).
#[test]
#[allow(clippy::needless_range_loop)] // index-based Floyd–Warshall closure
fn scc_matches_mutual_reachability() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(4000 + case);
        let edges = random_edge_list(&mut rng, 16, 60);
        let g = graph_from_edges(&edges);
        let n = g.num_vertices();
        // Floyd–Warshall style boolean closure.
        let mut reach = vec![vec![false; n]; n];
        for v in 0..n {
            reach[v][v] = true;
        }
        for e in g.edges() {
            reach[e.source as usize][e.target as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        let scc = tarjan_scc(&g);
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u][v] && reach[v][u];
                assert_eq!(
                    scc.same_component(u as u32, v as u32),
                    mutual,
                    "case {case}: vertices {u} and {v}"
                );
            }
        }
    }
}

/// The line graph has exactly Σ in(v)·out(v) edges and every line edge's
/// endpoints share the middle vertex.
#[test]
fn line_graph_structure() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(5000 + case);
        let edges = random_edge_list(&mut rng, 25, 120);
        let g = graph_from_edges(&edges);
        let lg = LineGraph::build(&g);
        let expected: usize = g.vertices().map(|v| g.in_degree(v) * g.out_degree(v)).sum();
        assert_eq!(lg.graph().num_edges(), expected, "case {case}");
        assert_eq!(lg.num_vertices(), g.num_edges(), "case {case}");
        for le in lg.graph().edges() {
            let first = lg.original_edge(le.source);
            let second = lg.original_edge(le.target);
            assert_eq!(first.target, second.source, "case {case}");
            assert_eq!(lg.middle_vertex(le), first.target, "case {case}");
        }
    }
}
