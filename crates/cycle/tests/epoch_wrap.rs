//! Epoch wrap-around property test for the timestamped/bitset searchers.
//!
//! The reusable engines reset their per-query state by bumping a `u32` epoch
//! counter instead of clearing arrays. The counter eventually wraps (after
//! `u32::MAX` queries), at which point every stamp array is cleared for real
//! and the epoch restarts at 1. A bug in that path would resurrect stale state
//! from billions of queries ago — silently, and only in month-long resident
//! deployments.
//!
//! This test forces engines to the brink of the wrap (`u32::MAX - 3`) and then
//! drives enough queries to cross it, asserting after every single query that
//! the warm engine's answer is byte-identical to a from-scratch engine built
//! fresh for that query. Random graphs, random activation masks, random hop
//! bounds; each case reproducible from its printed seed.

use tdb_cycle::reach::{BoundedBfs, Direction};
use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::{ActiveSet, CsrGraph, Graph};

fn random_graph_and_mask(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> (CsrGraph, Vec<bool>) {
    let g = graph_from_edges(&random_edge_list(rng, n, max_edges));
    let mask: Vec<bool> = (0..g.num_vertices()).map(|_| rng.next_bool(0.5)).collect();
    (g, mask)
}

/// A `BlockSearcher` pushed across the epoch wrap answers every query exactly
/// like a fresh one — identical `Option<Vec>` witnesses, not just existence.
#[test]
fn block_searcher_is_exact_across_epoch_wrap() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256::seed_from_u64(7000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 18, 70);
        let n = g.num_vertices();
        let active = ActiveSet::from_mask(mask);
        let k = 2 + rng.next_index(5);
        let constraint = if rng.next_bool(0.5) {
            HopConstraint::with_two_cycles(k)
        } else {
            HopConstraint::new(k)
        };

        let mut warm = BlockSearcher::new(n);
        warm.force_epoch(u32::MAX - 3);
        // Three passes over the vertex set: the first pass exhausts the
        // remaining pre-wrap epochs mid-stream, the rest run post-wrap.
        for pass in 0..3 {
            for v in g.vertices() {
                let mut fresh = BlockSearcher::new(n);
                let expected = fresh.find_cycle_through(&g, &active, v, &constraint);
                let got = warm.find_cycle_through(&g, &active, v, &constraint);
                assert_eq!(
                    got, expected,
                    "case {case}: pass {pass}, vertex {v} diverged across the wrap"
                );
            }
        }
    }
}

/// A `BoundedBfs` pushed across the epoch wrap reports the same distance for
/// every vertex as a fresh traversal, in both directions.
#[test]
fn bounded_bfs_is_exact_across_epoch_wrap() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256::seed_from_u64(8000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 18, 70);
        let n = g.num_vertices();
        if n == 0 {
            continue;
        }
        let active = ActiveSet::from_mask(mask);
        let max_hops = 1 + rng.next_index(5);

        let mut warm = BoundedBfs::new(n);
        warm.force_epoch(u32::MAX - 3);
        for pass in 0..3 {
            for source in g.vertices() {
                let dir = if (source + pass) % 2 == 0 {
                    Direction::Forward
                } else {
                    Direction::Backward
                };
                let mut fresh = BoundedBfs::new(n);
                fresh.run(&g, &active, source, max_hops, dir);
                warm.run(&g, &active, source, max_hops, dir);
                for v in g.vertices() {
                    assert_eq!(
                        warm.distance(v),
                        fresh.distance(v),
                        "case {case}: pass {pass}, source {source}, vertex {v}"
                    );
                }
            }
        }
    }
}
