//! Steady-state allocation regression test for the reusable search engines.
//!
//! The hot path contract of this crate (see the `tdb_graph::scratch` module)
//! is that a warmed engine answers queries without touching the allocator:
//! all per-query state lives in epoch-stamped vectors, bitsets, and arena
//! buffers that are reset in `O(1)` and only ever *grow*. This test pins that
//! contract with a counting global allocator: after one warm-up pass, a few
//! thousand existence queries across every engine must perform **zero**
//! allocations.
//!
//! Kept as a single `#[test]` so the measurement window cannot interleave
//! with allocations from a concurrently running test thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tdb_cycle::{BfsFilter, BlockSearcher, EdgeCycleSearcher, HopConstraint, NaiveSearcher};
use tdb_graph::gen::directed_cycle;
use tdb_graph::{ActiveSet, Graph, VertexId};

/// Counts every allocator entry (alloc, realloc, zeroed) process-wide.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warmed_engines_answer_queries_without_allocating() {
    // A single 64-cycle: with k = 5 every existence query misses, so no
    // witness vector is ever materialized — the pure query path is isolated.
    let g = directed_cycle(64);
    let n = g.num_vertices();
    let active = ActiveSet::all_active(n);
    let constraint = HopConstraint::new(5);

    let mut naive = NaiveSearcher::new(n);
    let mut block = BlockSearcher::new(n);
    let mut filter = BfsFilter::new(n);
    let mut edge = EdgeCycleSearcher::new(n);

    let run_all = |naive: &mut NaiveSearcher,
                   block: &mut BlockSearcher,
                   filter: &mut BfsFilter,
                   edge: &mut EdgeCycleSearcher| {
        for v in 0..n as VertexId {
            assert!(naive
                .find_cycle_through(&g, &active, v, &constraint)
                .is_none());
            assert!(!block.is_on_constrained_cycle(&g, &active, v, &constraint));
            filter.decide(&g, &active, v, &constraint);
            let w = (v + 1) % n as VertexId;
            assert!(edge
                .find_cycle_through_edge(&g, &active, v, w, &constraint)
                .is_none());
        }
    };

    // Warm-up: grows every internal buffer to its steady-state footprint and
    // registers the observability counters/histograms these queries touch.
    run_all(&mut naive, &mut block, &mut filter, &mut edge);

    // The counter is process-wide, so the libtest harness thread can inject a
    // stray allocation into a measurement window (it happens under heavy CI
    // load). An engine that allocates per query dirties *every* window with
    // thousands of counts, so requiring one clean window out of a few keeps
    // the contract sharp while ignoring harness noise.
    let mut leaked = 0;
    let clean_window = (0..5).any(|_| {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..50 {
            run_all(&mut naive, &mut block, &mut filter, &mut edge);
        }
        leaked = ALLOCATIONS.load(Ordering::Relaxed) - before;
        leaked == 0
    });

    assert!(
        clean_window,
        "warmed search engines must not allocate per query \
         ({leaked} allocations across {} queries in every window)",
        50 * 4 * n
    );
}
