//! Property-based tests for the cycle-search primitives: the fast engines must
//! agree with exhaustive ground truth on arbitrary graphs and activation masks.

use proptest::prelude::*;

use tdb_cycle::bfs_filter::{BfsFilter, FilterDecision};
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::find_cycle::{find_cycle_through, is_valid_cycle};
use tdb_cycle::reach::{BoundedBfs, Direction};
use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::builder::graph_from_edges;
use tdb_graph::{ActiveSet, CsrGraph, Graph};

fn arb_graph_and_mask(n: u32, m: usize) -> impl Strategy<Value = (CsrGraph, Vec<bool>)> {
    (
        prop::collection::vec((0..n, 0..n), 0..m),
        prop::collection::vec(any::<bool>(), n as usize),
    )
        .prop_map(|(edges, mut mask)| {
            let g = graph_from_edges(&edges);
            mask.resize(g.num_vertices(), true);
            (g, mask)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Block DFS == naive DFS on arbitrary graphs, activation masks, hop
    /// bounds, and 2-cycle modes; witnesses must be genuine cycles.
    #[test]
    fn block_dfs_equals_naive_dfs((g, mask) in arb_graph_and_mask(20, 80), k in 2usize..7, include2 in any::<bool>()) {
        let active = ActiveSet::from_mask(mask);
        let constraint = if include2 { HopConstraint::with_two_cycles(k) } else { HopConstraint::new(k) };
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in g.vertices() {
            let naive = find_cycle_through(&g, &active, v, &constraint);
            let fast = searcher.find_cycle_through(&g, &active, v, &constraint);
            prop_assert_eq!(naive.is_some(), fast.is_some(), "vertex {}", v);
            if let Some(cycle) = fast {
                prop_assert_eq!(cycle[0], v);
                prop_assert!(is_valid_cycle(&g, &active, &cycle, &constraint), "bad witness {:?}", cycle);
            }
        }
    }

    /// The BFS filter never prunes a vertex that has a constrained cycle, and
    /// its exact mode never proves a vertex that has none.
    #[test]
    fn bfs_filter_is_sound((g, mask) in arb_graph_and_mask(20, 80), k in 2usize..7) {
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::new(k);
        let mut filter = BfsFilter::new(g.num_vertices());
        for v in g.vertices() {
            let truth = find_cycle_through(&g, &active, v, &constraint).is_some();
            match filter.decide_exact(&g, &active, v, &constraint) {
                FilterDecision::Prune => prop_assert!(!truth, "vertex {} pruned despite a cycle", v),
                FilterDecision::ProvenNecessary(len) => {
                    prop_assert!(truth, "vertex {} proven despite no cycle", v);
                    prop_assert!(constraint.covers_len(len));
                }
                FilterDecision::NeedsVerification => {}
            }
        }
    }

    /// The shortest closed walk reported by the filter is never longer than the
    /// shortest enumerated cycle through the vertex.
    #[test]
    fn shortest_walk_lower_bounds_cycles((g, mask) in arb_graph_and_mask(16, 60), k in 3usize..6) {
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::with_two_cycles(k);
        let mut filter = BfsFilter::new(g.num_vertices());
        let cycles = enumerate_cycles(&g, &active, &constraint, 100_000);
        for v in g.vertices() {
            let shortest_cycle = cycles
                .iter()
                .filter(|c| c.contains(&v))
                .map(|c| c.len())
                .min();
            if let Some(len) = shortest_cycle {
                let walk = filter.shortest_closed_walk(&g, &active, v, k);
                prop_assert!(walk.is_some(), "no walk though a cycle of length {} exists", len);
                prop_assert!(walk.unwrap() <= len);
            }
        }
    }

    /// Enumerated cycles are exactly the distinct constrained simple cycles:
    /// none is missed (every cycle the per-vertex DFS can find is listed) and
    /// none is duplicated.
    #[test]
    fn enumeration_is_complete_and_duplicate_free((g, mask) in arb_graph_and_mask(14, 50), k in 3usize..6) {
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::new(k);
        let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
        let set: std::collections::HashSet<_> = cycles.iter().cloned().collect();
        prop_assert_eq!(set.len(), cycles.len(), "duplicate cycles reported");
        for c in &cycles {
            prop_assert!(is_valid_cycle(&g, &active, c, &constraint));
        }
        // Existence agreement per vertex.
        for v in g.vertices() {
            let listed = cycles.iter().any(|c| c.contains(&v));
            let exists = find_cycle_through(&g, &active, v, &constraint).is_some();
            prop_assert_eq!(listed, exists, "vertex {}", v);
        }
    }

    /// Hop-bounded BFS distances match a brute-force Bellman-Ford-style
    /// relaxation over active vertices.
    #[test]
    fn bounded_bfs_distances_are_exact((g, mask) in arb_graph_and_mask(18, 70), source in 0u32..18, max_hops in 0usize..6) {
        let active = ActiveSet::from_mask(mask);
        let n = g.num_vertices();
        prop_assume!(n > 0);
        let source = source % n as u32;
        let mut bfs = BoundedBfs::new(n);
        bfs.run(&g, &active, source, max_hops, Direction::Forward);

        // Brute force: dist[v] = min hops over <= max_hops rounds.
        let inf = usize::MAX;
        let mut dist = vec![inf; n];
        if active.is_active(source) {
            dist[source as usize] = 0;
            for _ in 0..max_hops {
                let snapshot = dist.clone();
                for u in g.vertices() {
                    if snapshot[u as usize] == inf || !active.is_active(u) {
                        continue;
                    }
                    for &w in g.out_neighbors(u) {
                        if active.is_active(w) {
                            dist[w as usize] = dist[w as usize].min(snapshot[u as usize] + 1);
                        }
                    }
                }
            }
        }
        for v in g.vertices() {
            let expected = if dist[v as usize] == inf { None } else { Some(dist[v as usize] as u32) };
            prop_assert_eq!(bfs.distance(v), expected, "vertex {}", v);
        }
    }
}
