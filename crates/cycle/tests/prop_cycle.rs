//! Property-style tests for the cycle-search primitives: the fast engines must
//! agree with exhaustive ground truth on arbitrary graphs and activation masks.
//!
//! Deterministic random cases driven by the vendored xoshiro256** RNG replace
//! proptest (the workspace builds offline); each case is reproducible from its
//! printed seed.

use tdb_cycle::bfs_filter::{BfsFilter, FilterDecision};
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::find_cycle::{find_cycle_through, is_valid_cycle};
use tdb_cycle::reach::{BoundedBfs, Direction};
use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::{ActiveSet, CsrGraph, Graph};

fn random_graph_and_mask(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> (CsrGraph, Vec<bool>) {
    let g = graph_from_edges(&random_edge_list(rng, n, max_edges));
    let mask: Vec<bool> = (0..g.num_vertices()).map(|_| rng.next_bool(0.5)).collect();
    (g, mask)
}

/// Block DFS == naive DFS on arbitrary graphs, activation masks, hop
/// bounds, and 2-cycle modes; witnesses must be genuine cycles.
#[test]
fn block_dfs_equals_naive_dfs() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(case);
        let (g, mask) = random_graph_and_mask(&mut rng, 20, 80);
        let k = 2 + rng.next_index(5);
        let include2 = rng.next_bool(0.5);
        let active = ActiveSet::from_mask(mask);
        let constraint = if include2 {
            HopConstraint::with_two_cycles(k)
        } else {
            HopConstraint::new(k)
        };
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in g.vertices() {
            let naive = find_cycle_through(&g, &active, v, &constraint);
            let fast = searcher.find_cycle_through(&g, &active, v, &constraint);
            assert_eq!(naive.is_some(), fast.is_some(), "case {case}: vertex {v}");
            if let Some(cycle) = fast {
                assert_eq!(cycle[0], v, "case {case}");
                assert!(
                    is_valid_cycle(&g, &active, &cycle, &constraint),
                    "case {case}: bad witness {cycle:?}"
                );
            }
        }
    }
}

/// The BFS filter never prunes a vertex that has a constrained cycle, and
/// its exact mode never proves a vertex that has none.
#[test]
fn bfs_filter_is_sound() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(1000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 20, 80);
        let k = 2 + rng.next_index(5);
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::new(k);
        let mut filter = BfsFilter::new(g.num_vertices());
        for v in g.vertices() {
            let truth = find_cycle_through(&g, &active, v, &constraint).is_some();
            match filter.decide_exact(&g, &active, v, &constraint) {
                FilterDecision::Prune => {
                    assert!(!truth, "case {case}: vertex {v} pruned despite a cycle")
                }
                FilterDecision::ProvenNecessary(len) => {
                    assert!(truth, "case {case}: vertex {v} proven despite no cycle");
                    assert!(constraint.covers_len(len), "case {case}");
                }
                FilterDecision::NeedsVerification => {}
            }
        }
    }
}

/// The shortest closed walk reported by the filter is never longer than the
/// shortest enumerated cycle through the vertex.
#[test]
fn shortest_walk_lower_bounds_cycles() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(2000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 16, 60);
        let k = 3 + rng.next_index(3);
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::with_two_cycles(k);
        let mut filter = BfsFilter::new(g.num_vertices());
        let cycles = enumerate_cycles(&g, &active, &constraint, 100_000);
        for v in g.vertices() {
            let shortest_cycle = cycles
                .iter()
                .filter(|c| c.contains(&v))
                .map(|c| c.len())
                .min();
            if let Some(len) = shortest_cycle {
                let walk = filter.shortest_closed_walk(&g, &active, v, k);
                assert!(
                    walk.is_some(),
                    "case {case}: no walk though a cycle of length {len} exists"
                );
                assert!(walk.unwrap() <= len, "case {case}");
            }
        }
    }
}

/// Enumerated cycles are exactly the distinct constrained simple cycles:
/// none is missed (every cycle the per-vertex DFS can find is listed) and
/// none is duplicated.
#[test]
fn enumeration_is_complete_and_duplicate_free() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 14, 50);
        let k = 3 + rng.next_index(3);
        let active = ActiveSet::from_mask(mask);
        let constraint = HopConstraint::new(k);
        let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
        let set: std::collections::HashSet<_> = cycles.iter().cloned().collect();
        assert_eq!(
            set.len(),
            cycles.len(),
            "case {case}: duplicate cycles reported"
        );
        for c in &cycles {
            assert!(is_valid_cycle(&g, &active, c, &constraint), "case {case}");
        }
        // Existence agreement per vertex.
        for v in g.vertices() {
            let listed = cycles.iter().any(|c| c.contains(&v));
            let exists = find_cycle_through(&g, &active, v, &constraint).is_some();
            assert_eq!(listed, exists, "case {case}: vertex {v}");
        }
    }
}

/// Hop-bounded BFS distances match a brute-force Bellman-Ford-style
/// relaxation over active vertices.
#[test]
fn bounded_bfs_distances_are_exact() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(4000 + case);
        let (g, mask) = random_graph_and_mask(&mut rng, 18, 70);
        let active = ActiveSet::from_mask(mask);
        let n = g.num_vertices();
        if n == 0 {
            continue;
        }
        let source = rng.next_bounded(n as u64) as u32;
        let max_hops = rng.next_index(6);
        let mut bfs = BoundedBfs::new(n);
        bfs.run(&g, &active, source, max_hops, Direction::Forward);

        // Brute force: dist[v] = min hops over <= max_hops rounds.
        let inf = usize::MAX;
        let mut dist = vec![inf; n];
        if active.is_active(source) {
            dist[source as usize] = 0;
            for _ in 0..max_hops {
                let snapshot = dist.clone();
                for u in g.vertices() {
                    if snapshot[u as usize] == inf || !active.is_active(u) {
                        continue;
                    }
                    for &w in g.out_neighbors(u) {
                        if active.is_active(w) {
                            dist[w as usize] = dist[w as usize].min(snapshot[u as usize] + 1);
                        }
                    }
                }
            }
        }
        for v in g.vertices() {
            let expected = if dist[v as usize] == inf {
                None
            } else {
                Some(dist[v as usize] as u32)
            };
            assert_eq!(bfs.distance(v), expected, "case {case}: vertex {v}");
        }
    }
}
