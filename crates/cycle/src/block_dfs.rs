//! Block/barrier-based hop-constrained cycle detection — Algorithms 9 and 10 of
//! the paper (`NodeNecessary` / `Unblock`).
//!
//! The query answered here is the inner loop of the top-down cover algorithms:
//! *does the currently active subgraph contain a simple cycle through `s` whose
//! length satisfies the hop constraint?*
//!
//! The search is a depth-first traversal bounded by `k` hops, augmented with a
//! per-vertex *block* value: `u.block` is a certified lower bound on
//! `sd(u, s | S)`, the number of hops `u` needs to reach `s` while avoiding the
//! vertices currently on the DFS stack (Definition 6). A branch into `v` is
//! pruned whenever `len(S) + 1 + v.block > k`, i.e. when even the optimistic
//! completion through `v` cannot close a short-enough cycle. Failed subtrees
//! raise the bound (to `k − len(S) + 1`), and discovering that the stack top can
//! reach `s` in one hop — but only via an excluded 2-cycle — lowers bounds again
//! through the in-neighbor propagation of `Unblock` (Algorithm 10).
//!
//! The paper proves (Theorems 5 and 6) that block values stay correct and that
//! each vertex is pushed at most `k` times, giving an `O(k · m)` worst case per
//! query — the key ingredient of TDB's `O(k · n · m)` total complexity versus
//! `O(n^k)` for the bottom-up family.
//!
//! All scratch state is epoch-stamped so a long-lived [`BlockSearcher`] performs
//! no `O(n)` work between queries.

use tdb_graph::{ActiveSet, FixedBitSet, GraphView, TimestampedVec, VertexId};

use crate::HopConstraint;

/// Instrumentation counters accumulated across queries.
///
/// The ablation benches report these to show *why* TDB+ is faster than TDB: the
/// block prune cuts the number of pushes per query from exponential to `O(km)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of queries issued.
    pub queries: u64,
    /// Vertices pushed onto the DFS stack.
    pub pushes: u64,
    /// Out-edges scanned.
    pub edges_scanned: u64,
    /// Branches skipped by the block condition.
    pub block_prunes: u64,
    /// Queries that found a cycle.
    pub hits: u64,
}

/// Reusable block/barrier DFS engine (Algorithm 9 + 10).
#[derive(Debug, Clone)]
pub struct BlockSearcher {
    block: TimestampedVec<u32>,
    on_stack: FixedBitSet,
    stack: Vec<VertexId>,
    stats: SearchStats,
    unblock_worklist: Vec<(VertexId, u32)>,
}

impl BlockSearcher {
    /// Create a searcher for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BlockSearcher {
            block: TimestampedVec::new(n, 0),
            on_stack: FixedBitSet::new(n),
            stack: Vec::new(),
            stats: SearchStats::default(),
            unblock_worklist: Vec::new(),
        }
    }

    /// Number of vertices the scratch state is currently sized for.
    pub fn capacity(&self) -> usize {
        self.block.len()
    }

    /// Grow the scratch state in place to cover `n` vertices (no-op when
    /// already large enough).
    pub fn ensure_capacity(&mut self, n: usize) {
        self.block.ensure_len(n);
        self.on_stack.grow(n, false);
    }

    /// Force the block-array epoch counter (clears all stamps first). Test
    /// support for exercising the wrap-around reset without billions of
    /// warm-up queries.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.block.force_epoch(epoch);
    }

    /// Accumulated instrumentation counters.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Reset the instrumentation counters.
    pub fn reset_stats(&mut self) {
        self.stats = SearchStats::default();
    }

    /// Whether a hop-constrained simple cycle through `s` exists in the active
    /// subgraph. Equivalent to `self.find_cycle_through(..).is_some()` but
    /// without materializing the witness.
    pub fn is_on_constrained_cycle<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        s: VertexId,
        constraint: &HopConstraint,
    ) -> bool {
        self.find_cycle_through(g, active, s, constraint).is_some()
    }

    /// Find one hop-constrained simple cycle through `s` in the active
    /// subgraph, as a vertex sequence starting at `s` (closing edge implicit).
    ///
    /// Returns `None` when no such cycle exists — this is the "vertex `s` is
    /// not necessary" outcome that lets the top-down algorithm release `s` from
    /// the cover.
    pub fn find_cycle_through<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        s: VertexId,
        constraint: &HopConstraint,
    ) -> Option<Vec<VertexId>> {
        // Sampled 1-in-64: queries run in the microsecond range, so timing
        // every one would dominate the instrumentation budget on hot solves.
        let _timer = if self.stats.queries & 0x3F == 0 {
            tdb_obs::histogram!("tdb_cycle_block_query_seconds").start()
        } else {
            None
        };
        self.ensure_capacity(g.vertex_count());
        self.stats.queries += 1;
        if !active.is_active(s) || g.out_deg(s) == 0 || g.in_deg(s) == 0 {
            return None;
        }
        self.block.reset(); // O(1) epoch bump; full clear only on u32 wrap
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        let found = self.dfs(g, active, s, s, &mut stack, constraint);
        let result = if found {
            self.stats.hits += 1;
            Some(stack.clone())
        } else {
            None
        };
        // Clear the on-stack flags for whatever remains (everything on success,
        // nothing on failure since the stack unwinds fully).
        for &v in &stack {
            self.on_stack.remove(v as usize);
        }
        self.stack = stack; // hand the buffer back for the next query
        result
    }

    #[inline]
    fn block_of(&self, v: VertexId) -> u32 {
        self.block.get(v as usize)
    }

    #[inline]
    fn set_block(&mut self, v: VertexId, value: u32) {
        self.block.set(v as usize, value);
    }

    /// Algorithm 9 (`NodeNecessary`), specialised to terminate at the first
    /// witness. Recursion depth is bounded by `k + 1`.
    fn dfs<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        s: VertexId,
        u: VertexId,
        stack: &mut Vec<VertexId>,
        constraint: &HopConstraint,
    ) -> bool {
        let k = constraint.max_hops;
        let hops_to_u = stack.len(); // path length once u is pushed
                                     // Failed-subtree lower bound: if the search below u does not reach s,
                                     // then sd(u, s | S) > k - hops_to_u (Lemma 1 / Theorem 5).
        self.set_block(u, (k + 1 - hops_to_u) as u32);
        stack.push(u);
        self.on_stack.insert(u as usize);
        self.stats.pushes += 1;

        let sz = stack.len(); // vertices on the open path, = cycle length if closed now
        let mut found = false;
        for v in g.out_iter(u) {
            self.stats.edges_scanned += 1;
            if !active.is_active(v) {
                continue;
            }
            if v == s {
                if constraint.covers_len(sz) {
                    found = true;
                    break;
                }
                if sz < constraint.min_len() {
                    // The closing edge exists but the cycle is an excluded
                    // 2-cycle. Record the true 1-hop distance so that earlier
                    // pessimistic bounds on u's in-neighbors are repaired
                    // (Algorithm 10); otherwise longer cycles through u could
                    // be pruned incorrectly later in this query.
                    self.unblock(g, active, u, 1);
                }
                continue;
            }
            if self.on_stack.contains(v as usize) {
                continue;
            }
            if sz >= k {
                // Extending would already make any closing cycle longer than k.
                continue;
            }
            if sz as u32 + self.block_of(v) > k as u32 {
                self.stats.block_prunes += 1;
                continue;
            }
            if self.dfs(g, active, s, v, stack, constraint) {
                found = true;
                break;
            }
        }

        if !found {
            stack.pop();
            self.on_stack.remove(u as usize);
            // If a true short distance to `s` was discovered for `u` mid-scan
            // (the excluded-2-cycle branch above lowered `u.block` below the
            // pessimistic failed-subtree bound), re-propagate it now that the
            // subtree has unwound: vertices explored *after* the discovery
            // acquired failed-subtree bounds conditioned on `u` sitting on the
            // stack, and those bounds are stale the moment `u` pops — without
            // this repair they incorrectly prune later branches that reach `s`
            // through `u` (e.g. w -> u -> s).
            let pessimistic = (k + 1 - hops_to_u) as u32;
            let current = self.block_of(u);
            if current < pessimistic {
                self.unblock(g, active, u, current);
            }
        }
        found
    }

    /// Algorithm 10 (`Unblock`): set `u.block = level` and propagate the
    /// improved bound backwards over in-neighbors that are not on the stack.
    /// Implemented with an explicit worklist so that long in-neighbor chains
    /// cannot overflow the call stack.
    fn unblock<V: GraphView>(&mut self, g: &V, active: &ActiveSet, u: VertexId, level: u32) {
        self.unblock_worklist.clear();
        self.unblock_worklist.push((u, level));
        while let Some((x, l)) = self.unblock_worklist.pop() {
            self.set_block(x, l);
            for w in g.in_iter(x) {
                if active.is_active(w)
                    && !self.on_stack.contains(w as usize)
                    && self.block_of(w) > l + 1
                {
                    self.unblock_worklist.push((w, l + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_cycle::{find_cycle_through, is_valid_cycle};
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{
        directed_cycle, directed_path, erdos_renyi_gnm, layered_dag, preferential_attachment,
        PreferentialConfig,
    };
    use tdb_graph::Graph;

    fn all_active(g: &impl GraphView) -> ActiveSet {
        ActiveSet::all_active(g.vertex_count())
    }

    #[test]
    fn agrees_with_naive_on_small_cycles() {
        let g = directed_cycle(5);
        let active = all_active(&g);
        let mut searcher = BlockSearcher::new(5);
        for k in 2..8 {
            let constraint = HopConstraint::new(k);
            for v in g.vertices() {
                let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
                let block = searcher
                    .find_cycle_through(&g, &active, v, &constraint)
                    .is_some();
                assert_eq!(naive, block, "k = {k}, v = {v}");
            }
        }
    }

    #[test]
    fn witness_is_a_valid_cycle() {
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 0),
            (1, 4),
            (4, 2),
        ]);
        let active = all_active(&g);
        let constraint = HopConstraint::new(5);
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in g.vertices() {
            if let Some(c) = searcher.find_cycle_through(&g, &active, v, &constraint) {
                assert_eq!(c[0], v);
                assert!(is_valid_cycle(&g, &active, &c, &constraint), "cycle {c:?}");
            }
        }
    }

    #[test]
    fn no_cycle_in_dags() {
        for g in [directed_path(20), layered_dag(5, 4)] {
            let active = all_active(&g);
            let mut searcher = BlockSearcher::new(g.num_vertices());
            for v in g.vertices() {
                assert!(!searcher.is_on_constrained_cycle(&g, &active, v, &HopConstraint::new(6)));
            }
        }
    }

    #[test]
    fn two_cycle_exclusion_and_inclusion() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        let mut searcher = BlockSearcher::new(2);
        assert!(!searcher.is_on_constrained_cycle(&g, &active, 0, &HopConstraint::new(5)));
        let c = searcher
            .find_cycle_through(&g, &active, 0, &HopConstraint::with_two_cycles(5))
            .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn two_cycle_unblock_repairs_longer_cycles() {
        // Regression shape for the Unblock path: the 2-cycle (1, 2) is found
        // first and must not block the 4-cycle 0 -> 1 -> 2 -> 3 -> 0.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 1), (2, 3), (3, 0)]);
        let active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in g.vertices() {
            let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
            let block = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
            assert_eq!(naive, block, "vertex {v}");
        }
    }

    #[test]
    fn stale_bound_after_two_cycle_discovery_is_repropagated_on_pop() {
        // Regression shape for the pop-time Unblock repair: scanning from 0,
        // the subtree of 3 first rejects the 2-cycle 0 <-> 3 (lowering 3's
        // block to its true distance 1), then visits 11, which fails and
        // records a pessimistic bound *conditioned on 3 being on the stack*.
        // When 3 pops, that bound is stale — the 4-cycle 0 -> 7 -> 11 -> 3 -> 0
        // reaches 0 through 3 — and must be repaired, or the 7-branch prunes
        // the only witness.
        let g = graph_from_edges(&[(0, 3), (3, 0), (3, 11), (0, 7), (7, 11), (11, 3)]);
        let active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in [0u32, 3, 7, 11] {
            let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
            let block = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
            assert_eq!(naive, block, "vertex {v}");
        }
        let witness = searcher
            .find_cycle_through(&g, &active, 0, &constraint)
            .unwrap();
        assert!(is_valid_cycle(&g, &active, &witness, &constraint));
    }

    #[test]
    fn differential_test_on_reciprocated_random_graphs() {
        // Dense-in-2-cycles random graphs stress the pop-time repair path far
        // harder than plain G(n, m): reciprocated pairs are what seed the
        // stale bounds.
        for seed in 0..10u64 {
            let g = preferential_attachment(&PreferentialConfig {
                num_vertices: 40,
                out_degree: 3,
                reciprocity: 0.6,
                random_rewire: 0.25,
                seed,
            });
            let active = all_active(&g);
            let mut searcher = BlockSearcher::new(g.num_vertices());
            for k in [3usize, 4, 5, 6] {
                let constraint = HopConstraint::new(k);
                for v in g.vertices() {
                    let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
                    let block = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
                    assert_eq!(naive, block, "seed {seed}, k {k}, vertex {v}");
                }
            }
        }
    }

    #[test]
    fn hop_boundary_matches_cycle_length() {
        for len in 3..9 {
            let g = directed_cycle(len);
            let active = all_active(&g);
            let mut searcher = BlockSearcher::new(len);
            assert!(!searcher.is_on_constrained_cycle(
                &g,
                &active,
                0,
                &HopConstraint::new(len - 1)
            ));
            assert!(searcher.is_on_constrained_cycle(&g, &active, 0, &HopConstraint::new(len)));
        }
    }

    #[test]
    fn deactivation_is_respected() {
        let g = directed_cycle(4);
        let mut active = all_active(&g);
        let mut searcher = BlockSearcher::new(4);
        let k = HopConstraint::new(6);
        assert!(searcher.is_on_constrained_cycle(&g, &active, 0, &k));
        active.deactivate(2);
        assert!(!searcher.is_on_constrained_cycle(&g, &active, 0, &k));
        assert!(!searcher.is_on_constrained_cycle(&g, &active, 2, &k));
    }

    #[test]
    fn differential_test_against_naive_on_random_graphs() {
        // The block DFS must agree with the exhaustive DFS on every vertex of a
        // batch of random graphs, for several k, in both 2-cycle modes.
        for seed in 0..12u64 {
            let g = erdos_renyi_gnm(40, 120, seed);
            let active = all_active(&g);
            let mut searcher = BlockSearcher::new(g.num_vertices());
            for k in [3usize, 4, 5] {
                for include2 in [false, true] {
                    let constraint = if include2 {
                        HopConstraint::with_two_cycles(k)
                    } else {
                        HopConstraint::new(k)
                    };
                    for v in g.vertices() {
                        let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
                        let block = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
                        assert_eq!(
                            naive, block,
                            "seed {seed}, k {k}, include2 {include2}, vertex {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn differential_test_on_skewed_graph_with_partial_activation() {
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 60,
            out_degree: 3,
            reciprocity: 0.3,
            random_rewire: 0.2,
            seed: 5,
        });
        let mut active = all_active(&g);
        // Deactivate every third vertex to exercise reduced-graph behaviour.
        for v in (0..g.num_vertices() as VertexId).step_by(3) {
            active.deactivate(v);
        }
        let mut searcher = BlockSearcher::new(g.num_vertices());
        let constraint = HopConstraint::new(5);
        for v in g.vertices() {
            let naive = find_cycle_through(&g, &active, v, &constraint).is_some();
            let block = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
            assert_eq!(naive, block, "vertex {v}");
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let g = directed_cycle(6);
        let active = all_active(&g);
        let mut searcher = BlockSearcher::new(6);
        searcher.is_on_constrained_cycle(&g, &active, 0, &HopConstraint::new(6));
        let s = searcher.stats();
        assert_eq!(s.queries, 1);
        assert!(s.pushes >= 6);
        assert_eq!(s.hits, 1);
        searcher.reset_stats();
        assert_eq!(searcher.stats(), SearchStats::default());
    }

    #[test]
    fn isolated_or_sink_vertices_short_circuit() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let active = all_active(&g);
        let mut searcher = BlockSearcher::new(3);
        let k = HopConstraint::new(4);
        assert!(!searcher.is_on_constrained_cycle(&g, &active, 2, &k)); // sink
        assert!(!searcher.is_on_constrained_cycle(&g, &active, 0, &k)); // source
                                                                        // The short-circuit must not skew correctness counters for later calls.
        assert_eq!(searcher.stats().queries, 2);
    }

    #[test]
    fn repeated_queries_reuse_scratch_correctly() {
        let g = erdos_renyi_gnm(30, 90, 3);
        let active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut searcher = BlockSearcher::new(g.num_vertices());
        let first: Vec<bool> = g
            .vertices()
            .map(|v| searcher.is_on_constrained_cycle(&g, &active, v, &constraint))
            .collect();
        for _ in 0..5 {
            let again: Vec<bool> = g
                .vertices()
                .map(|v| searcher.is_on_constrained_cycle(&g, &active, v, &constraint))
                .collect();
            assert_eq!(first, again);
        }
    }
}
