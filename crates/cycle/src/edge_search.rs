//! Edge-anchored hop-constrained cycle search — the inner primitive of the
//! incremental cover maintenance in `tdb-dynamic`.
//!
//! When an edge `(u, v)` is inserted into a graph whose constrained cycles are
//! already covered, the only cycles that can newly violate the cover are the
//! ones *containing that edge*. Finding them does not need a full per-vertex
//! scan: a cycle through `(u, v)` is the edge plus a simple path from `v` back
//! to `u`, so the query is a bounded path search.
//!
//! [`EdgeCycleSearcher`] answers it with a bounded bidirectional strategy:
//!
//! 1. a *backward* hop-bounded BFS from `u` (over in-edges, [`BoundedBfs`])
//!    computes `dist(x, u)` for every active vertex within `k − 1` hops, and
//! 2. a *forward* DFS from `v` extends simple paths, pruning any branch whose
//!    optimistic completion `|path| + dist(x, u)` already exceeds `k`.
//!
//! The BFS distances ignore the DFS's on-path exclusions, so they are
//! admissible lower bounds and the search is exact: it returns a witness iff a
//! constrained simple cycle through the edge exists in the active subgraph.
//! Like the other engines in this crate, all scratch state is reusable across
//! queries, and the search is generic over [`GraphView`] so it runs directly
//! on the `DeltaGraph` overlay.

use tdb_graph::{ActiveSet, GraphView, VertexId};

use crate::reach::{BoundedBfs, Direction};
use crate::HopConstraint;

/// Reusable engine finding hop-constrained simple cycles through a given edge.
#[derive(Debug, Clone)]
pub struct EdgeCycleSearcher {
    bfs: BoundedBfs,
    on_path: Vec<bool>,
    path: Vec<VertexId>,
}

impl EdgeCycleSearcher {
    /// Create a searcher for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeCycleSearcher {
            bfs: BoundedBfs::new(n),
            on_path: vec![false; n],
            path: Vec::new(),
        }
    }

    /// Number of vertices the scratch state is sized for.
    pub fn capacity(&self) -> usize {
        self.on_path.len()
    }

    /// Grow the scratch state to serve graphs with at least `n` vertices.
    pub fn ensure_capacity(&mut self, n: usize) {
        if n > self.on_path.len() {
            self.bfs = BoundedBfs::new(n);
            self.on_path = vec![false; n];
        }
    }

    /// Find one constrained simple cycle containing the directed edge
    /// `(u, v)` in the active subgraph.
    ///
    /// The witness is returned as `[u, v, x1, ..., xt]` with the closing edge
    /// `xt -> u` implicit (for a 2-cycle, just `[u, v]`). Returns `None` when
    /// the edge is absent, an endpoint is inactive, or every cycle through the
    /// edge violates the hop constraint.
    pub fn find_cycle_through_edge<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        u: VertexId,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> Option<Vec<VertexId>> {
        debug_assert!(g.vertex_count() <= self.capacity());
        let _timer = tdb_obs::histogram!("tdb_cycle_edge_query_seconds").start();
        if u == v || !active.is_active(u) || !active.is_active(v) || !g.contains_edge(u, v) {
            return None;
        }
        // Backward pass: hop-bounded distances *to* u. Any return path needs
        // at most k - 1 edges (the edge (u, v) spends one hop).
        self.bfs
            .run(g, active, u, constraint.max_hops - 1, Direction::Backward);
        self.bfs.distance(v)?; // v cannot reach u => no cycle through (u, v)

        self.path.clear();
        self.path.push(u);
        self.path.push(v);
        self.on_path[u as usize] = true;
        self.on_path[v as usize] = true;
        let found = self.dfs(g, active, u, v, constraint);
        let witness = if found { Some(self.path.clone()) } else { None };
        for &x in &self.path {
            self.on_path[x as usize] = false;
        }
        self.path.clear();
        witness
    }

    /// Whether any constrained simple cycle contains the edge `(u, v)`.
    pub fn edge_on_constrained_cycle<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        u: VertexId,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> bool {
        self.find_cycle_through_edge(g, active, u, v, constraint)
            .is_some()
    }

    /// Forward DFS from `c` (the current path tip) toward `target`, pruned by
    /// the backward BFS distances. Recursion depth is bounded by `k`.
    fn dfs<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        target: VertexId,
        c: VertexId,
        constraint: &HopConstraint,
    ) -> bool {
        let d = self.path.len(); // vertices on the open path, = cycle length if closed now
        let k = constraint.max_hops;
        for w in g.out_iter(c) {
            if w == target {
                if constraint.covers_len(d) {
                    return true;
                }
                continue;
            }
            if d >= k || !active.is_active(w) || self.on_path[w as usize] {
                continue;
            }
            // Optimistic completion bound: extending to w yields d + 1 path
            // vertices, and the shortest continuation w ->* target adds at
            // least dist(w) - 1 more, so the cycle has >= d + dist(w)
            // vertices. Unreached w (None) cannot close within the budget.
            match self.bfs.distance(w) {
                Some(dist) if d + dist as usize <= k => {}
                _ => continue,
            }
            self.path.push(w);
            self.on_path[w as usize] = true;
            if self.dfs(g, active, target, w, constraint) {
                return true;
            }
            self.path.pop();
            self.on_path[w as usize] = false;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_cycles;
    use crate::find_cycle::is_valid_cycle;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
    use tdb_graph::{DeltaGraph, Graph};

    fn all_active(g: &impl GraphView) -> ActiveSet {
        ActiveSet::all_active(g.vertex_count())
    }

    #[test]
    fn finds_cycle_through_each_triangle_edge() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut s = EdgeCycleSearcher::new(3);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            let c = s
                .find_cycle_through_edge(&g, &active, u, v, &constraint)
                .unwrap();
            assert_eq!(c[0], u);
            assert_eq!(c[1], v);
            assert!(is_valid_cycle(&g, &active, &c, &constraint), "{c:?}");
        }
        // An absent edge never has a cycle through it.
        assert!(s
            .find_cycle_through_edge(&g, &active, 1, 0, &constraint)
            .is_none());
    }

    #[test]
    fn hop_constraint_bounds_the_witness() {
        // A 3-cycle and a 5-cycle sharing the edge (0, 1).
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 5), (5, 0)]);
        let active = all_active(&g);
        let mut s = EdgeCycleSearcher::new(g.num_vertices());
        let c3 = s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::new(3))
            .unwrap();
        assert_eq!(c3.len(), 3);
        // k = 4: only the 3-cycle fits; the edge (1, 3) only closes at length 5.
        assert!(s
            .find_cycle_through_edge(&g, &active, 1, 3, &HopConstraint::new(4))
            .is_none());
        let c5 = s
            .find_cycle_through_edge(&g, &active, 1, 3, &HopConstraint::new(5))
            .unwrap();
        assert_eq!(c5.len(), 5);
    }

    #[test]
    fn two_cycle_modes() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        let mut s = EdgeCycleSearcher::new(2);
        assert!(s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::new(5))
            .is_none());
        let c = s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::with_two_cycles(5))
            .unwrap();
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn cover_vertices_block_witnesses() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 0)]);
        let mut active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut s = EdgeCycleSearcher::new(g.num_vertices());
        assert!(s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        active.deactivate(2);
        // The 3-cycle is gone but 0 -> 1 -> 3 -> 0 remains.
        let c = s
            .find_cycle_through_edge(&g, &active, 0, 1, &constraint)
            .unwrap();
        assert_eq!(c, vec![0, 1, 3]);
        active.deactivate(3);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        // Inactive endpoints short-circuit.
        active.deactivate(0);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
    }

    #[test]
    fn agrees_with_enumeration_on_random_graphs() {
        // Exactness: for every edge of a batch of random graphs, the searcher
        // reports a cycle through that edge iff full enumeration contains one.
        for seed in 0..10u64 {
            let g = erdos_renyi_gnm(18, 60, seed);
            let mut active = all_active(&g);
            // Punch holes to exercise reduced-graph behaviour.
            let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..4 {
                active.deactivate(rng.next_index(18) as VertexId);
            }
            for k in [3usize, 4, 5] {
                for include2 in [false, true] {
                    let constraint = if include2 {
                        HopConstraint::with_two_cycles(k)
                    } else {
                        HopConstraint::new(k)
                    };
                    let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
                    let mut s = EdgeCycleSearcher::new(g.num_vertices());
                    for e in g.edges() {
                        let expected = cycles.iter().any(|c| {
                            c.iter()
                                .zip(c.iter().cycle().skip(1))
                                .take(c.len())
                                .any(|(&a, &b)| a == e.source && b == e.target)
                        });
                        let got = s.edge_on_constrained_cycle(
                            &g,
                            &active,
                            e.source,
                            e.target,
                            &constraint,
                        );
                        assert_eq!(
                            got, expected,
                            "seed {seed}, k {k}, include2 {include2}, edge {e}"
                        );
                        if let Some(c) =
                            s.find_cycle_through_edge(&g, &active, e.source, e.target, &constraint)
                        {
                            assert!(is_valid_cycle(&g, &active, &c, &constraint), "{c:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn runs_on_delta_graph_overlays() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (1, 2)]));
        let constraint = HopConstraint::new(3);
        let mut s = EdgeCycleSearcher::new(3);
        let active = ActiveSet::all_active(3);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        g.insert_edge(2, 0);
        let c = s
            .find_cycle_through_edge(&g, &active, 2, 0, &constraint)
            .unwrap();
        assert_eq!(c, vec![2, 0, 1]);
        g.remove_edge(1, 2);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 2, 0, &constraint));
    }
}
