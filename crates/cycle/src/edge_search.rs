//! Edge-anchored hop-constrained cycle search — the inner primitive of the
//! incremental cover maintenance in `tdb-dynamic`.
//!
//! When an edge `(u, v)` is inserted into a graph whose constrained cycles are
//! already covered, the only cycles that can newly violate the cover are the
//! ones *containing that edge*. Finding them does not need a full per-vertex
//! scan: a cycle through `(u, v)` is the edge plus a simple path from `v` back
//! to `u`, so the query is a bounded path search.
//!
//! [`EdgeCycleSearcher`] answers it with a bounded bidirectional strategy:
//!
//! 1. a *backward* hop-bounded BFS from `u` (over in-edges, [`BoundedBfs`])
//!    computes `dist(x, u)` for every active vertex within `k − 1` hops, and
//! 2. a *forward* DFS from `v` (iterative, over reusable [`DfsArena`] frames)
//!    extends simple paths, pruning any branch whose optimistic completion
//!    `|path| + dist(x, u)` already exceeds `k`.
//!
//! The BFS distances ignore the DFS's on-path exclusions, so they are
//! admissible lower bounds and the search is exact: it returns a witness iff a
//! constrained simple cycle through the edge exists in the active subgraph.
//! Like the other engines in this crate, all scratch state is reusable across
//! queries, and the search is generic over [`GraphView`] so it runs directly
//! on the `DeltaGraph` overlay.

use tdb_graph::{ActiveSet, DfsArena, FixedBitSet, GraphView, VertexId};

use crate::reach::{BoundedBfs, Direction};
use crate::HopConstraint;

/// Reusable engine finding hop-constrained simple cycles through a given edge.
#[derive(Debug, Clone)]
pub struct EdgeCycleSearcher {
    bfs: BoundedBfs,
    on_path: FixedBitSet,
    dfs: DfsArena,
    queries: u64,
}

impl EdgeCycleSearcher {
    /// Create a searcher for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeCycleSearcher {
            bfs: BoundedBfs::new(n),
            on_path: FixedBitSet::new(n),
            dfs: DfsArena::new(),
            queries: 0,
        }
    }

    /// Number of vertices the scratch state is sized for.
    pub fn capacity(&self) -> usize {
        self.on_path.len()
    }

    /// Grow the scratch state *in place* to serve graphs with at least `n`
    /// vertices (no-op when already large enough). Dynamic-graph growth
    /// extends the existing allocations instead of replacing them.
    pub fn ensure_capacity(&mut self, n: usize) {
        self.bfs.ensure_capacity(n);
        self.on_path.grow(n, false);
    }

    /// Find one constrained simple cycle containing the directed edge
    /// `(u, v)` in the active subgraph.
    ///
    /// The witness is returned as `[u, v, x1, ..., xt]` with the closing edge
    /// `xt -> u` implicit (for a 2-cycle, just `[u, v]`). Returns `None` when
    /// the edge is absent, an endpoint is inactive, or every cycle through the
    /// edge violates the hop constraint.
    pub fn find_cycle_through_edge<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        u: VertexId,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> Option<Vec<VertexId>> {
        // Sampled 1-in-64: per-query timing would dominate the
        // instrumentation budget on hot update batches (see the block
        // searcher).
        let _timer = if self.queries & 0x3F == 0 {
            tdb_obs::histogram!("tdb_cycle_edge_query_seconds").start()
        } else {
            None
        };
        self.queries += 1;
        self.ensure_capacity(g.vertex_count());
        if u == v || !active.is_active(u) || !active.is_active(v) || !g.contains_edge(u, v) {
            return None;
        }
        // Backward pass: hop-bounded distances *to* u. Any return path needs
        // at most k - 1 edges (the edge (u, v) spends one hop).
        self.bfs
            .run(g, active, u, constraint.max_hops - 1, Direction::Backward);
        self.bfs.distance(v)?; // v cannot reach u => no cycle through (u, v)

        // Forward DFS from v toward u, pruned by the backward BFS distances.
        // `u` is on the path but not a frame: the open path is `[u]` plus the
        // frame stack, so its length is `1 + depth`.
        let k = constraint.max_hops;
        self.dfs.clear();
        self.on_path.insert(u as usize);
        self.on_path.insert(v as usize);
        self.dfs.push(v, g.out_iter(v));
        let mut found = false;
        while !self.dfs.is_done() {
            let d = 1 + self.dfs.depth();
            match self.dfs.next_neighbor() {
                Some(w) => {
                    if w == u {
                        if constraint.covers_len(d) {
                            found = true;
                            break;
                        }
                        continue;
                    }
                    if d >= k || !active.is_active(w) || self.on_path.contains(w as usize) {
                        continue;
                    }
                    // Optimistic completion bound: extending to w yields d + 1
                    // path vertices, and the shortest continuation w ->* u
                    // adds at least dist(w) - 1 more, so the cycle has
                    // >= d + dist(w) vertices. Unreached w (None) cannot close
                    // within the budget.
                    match self.bfs.distance(w) {
                        Some(dist) if d + dist as usize <= k => {}
                        _ => continue,
                    }
                    self.on_path.insert(w as usize);
                    self.dfs.push(w, g.out_iter(w));
                }
                None => {
                    let x = self.dfs.pop().expect("non-empty stack");
                    self.on_path.remove(x as usize);
                }
            }
        }
        if found {
            let mut witness = Vec::with_capacity(1 + self.dfs.depth());
            witness.push(u);
            witness.extend(self.dfs.path());
            for &x in &witness {
                self.on_path.remove(x as usize);
            }
            self.dfs.clear();
            Some(witness)
        } else {
            // Every pop already unmarked its vertex; only u remains marked.
            self.on_path.remove(u as usize);
            None
        }
    }

    /// Whether any constrained simple cycle contains the edge `(u, v)`.
    pub fn edge_on_constrained_cycle<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        u: VertexId,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> bool {
        self.find_cycle_through_edge(g, active, u, v, constraint)
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_cycles;
    use crate::find_cycle::is_valid_cycle;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
    use tdb_graph::{DeltaGraph, Graph};

    fn all_active(g: &impl GraphView) -> ActiveSet {
        ActiveSet::all_active(g.vertex_count())
    }

    #[test]
    fn finds_cycle_through_each_triangle_edge() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut s = EdgeCycleSearcher::new(3);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            let c = s
                .find_cycle_through_edge(&g, &active, u, v, &constraint)
                .unwrap();
            assert_eq!(c[0], u);
            assert_eq!(c[1], v);
            assert!(is_valid_cycle(&g, &active, &c, &constraint), "{c:?}");
        }
        // An absent edge never has a cycle through it.
        assert!(s
            .find_cycle_through_edge(&g, &active, 1, 0, &constraint)
            .is_none());
    }

    #[test]
    fn hop_constraint_bounds_the_witness() {
        // A 3-cycle and a 5-cycle sharing the edge (0, 1).
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 5), (5, 0)]);
        let active = all_active(&g);
        let mut s = EdgeCycleSearcher::new(g.num_vertices());
        let c3 = s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::new(3))
            .unwrap();
        assert_eq!(c3.len(), 3);
        // k = 4: only the 3-cycle fits; the edge (1, 3) only closes at length 5.
        assert!(s
            .find_cycle_through_edge(&g, &active, 1, 3, &HopConstraint::new(4))
            .is_none());
        let c5 = s
            .find_cycle_through_edge(&g, &active, 1, 3, &HopConstraint::new(5))
            .unwrap();
        assert_eq!(c5.len(), 5);
    }

    #[test]
    fn two_cycle_modes() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        let mut s = EdgeCycleSearcher::new(2);
        assert!(s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::new(5))
            .is_none());
        let c = s
            .find_cycle_through_edge(&g, &active, 0, 1, &HopConstraint::with_two_cycles(5))
            .unwrap();
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn cover_vertices_block_witnesses() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 0)]);
        let mut active = all_active(&g);
        let constraint = HopConstraint::new(4);
        let mut s = EdgeCycleSearcher::new(g.num_vertices());
        assert!(s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        active.deactivate(2);
        // The 3-cycle is gone but 0 -> 1 -> 3 -> 0 remains.
        let c = s
            .find_cycle_through_edge(&g, &active, 0, 1, &constraint)
            .unwrap();
        assert_eq!(c, vec![0, 1, 3]);
        active.deactivate(3);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        // Inactive endpoints short-circuit.
        active.deactivate(0);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
    }

    #[test]
    fn agrees_with_enumeration_on_random_graphs() {
        // Exactness: for every edge of a batch of random graphs, the searcher
        // reports a cycle through that edge iff full enumeration contains one.
        for seed in 0..10u64 {
            let g = erdos_renyi_gnm(18, 60, seed);
            let mut active = all_active(&g);
            // Punch holes to exercise reduced-graph behaviour.
            let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..4 {
                active.deactivate(rng.next_index(18) as VertexId);
            }
            for k in [3usize, 4, 5] {
                for include2 in [false, true] {
                    let constraint = if include2 {
                        HopConstraint::with_two_cycles(k)
                    } else {
                        HopConstraint::new(k)
                    };
                    let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
                    let mut s = EdgeCycleSearcher::new(g.num_vertices());
                    for e in g.edges() {
                        let expected = cycles.iter().any(|c| {
                            c.iter()
                                .zip(c.iter().cycle().skip(1))
                                .take(c.len())
                                .any(|(&a, &b)| a == e.source && b == e.target)
                        });
                        let got = s.edge_on_constrained_cycle(
                            &g,
                            &active,
                            e.source,
                            e.target,
                            &constraint,
                        );
                        assert_eq!(
                            got, expected,
                            "seed {seed}, k {k}, include2 {include2}, edge {e}"
                        );
                        if let Some(c) =
                            s.find_cycle_through_edge(&g, &active, e.source, e.target, &constraint)
                        {
                            assert!(is_valid_cycle(&g, &active, &c, &constraint), "{c:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn runs_on_delta_graph_overlays() {
        let mut g = DeltaGraph::new(graph_from_edges(&[(0, 1), (1, 2)]));
        let constraint = HopConstraint::new(3);
        let mut s = EdgeCycleSearcher::new(3);
        let active = ActiveSet::all_active(3);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 0, 1, &constraint));
        g.insert_edge(2, 0);
        let c = s
            .find_cycle_through_edge(&g, &active, 2, 0, &constraint)
            .unwrap();
        assert_eq!(c, vec![2, 0, 1]);
        g.remove_edge(1, 2);
        assert!(!s.edge_on_constrained_cycle(&g, &active, 2, 0, &constraint));
    }
}
