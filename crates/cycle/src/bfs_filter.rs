//! The BFS upper-bound filter of Algorithm 11 (`BFS-Filter`).
//!
//! Before running the (comparatively expensive) block DFS on a vertex `v`, the
//! TDB++ variant runs a single hop-bounded breadth-first search to compute the
//! length of the *shortest closed walk* through `v` in the active subgraph. If
//! no closed walk of length at most `k` exists, no simple cycle of length at
//! most `k` through `v` can exist either, so `v` is pruned without any DFS.
//!
//! The implementation walks the reverse direction from `v` (distance *to* `v`)
//! up to `k − 1` hops and then inspects `v`'s out-neighbors: the shortest closed
//! walk is `1 + min_w sd(w → v)` over active out-neighbors `w`. Because BFS
//! shortest paths are simple and never pass through the (already settled)
//! source, the returned length is in fact achieved by a *simple* cycle — the
//! filter is exact except for the excluded 2-cycles, which is why a `2` result
//! still requires the DFS verification in the default (no-2-cycle) mode.

use tdb_graph::{ActiveSet, GraphView, VertexId};

use crate::reach::{BoundedBfs, Direction};
use crate::HopConstraint;

/// Outcome of the BFS filter for one vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// No closed walk of length `<= k` exists: the vertex cannot lie on any
    /// hop-constrained cycle and is pruned without further work.
    Prune,
    /// A simple cycle within the constraint provably exists (shortest closed
    /// walk length `l` with `min_len <= l <= k`), so the vertex is necessary
    /// and the DFS can be skipped. Only reported when
    /// [`BfsFilter::decide_exact`] is used.
    ProvenNecessary(usize),
    /// The filter is inconclusive; the block DFS must verify the vertex.
    NeedsVerification,
}

/// Reusable BFS filter (Algorithm 11).
#[derive(Debug, Clone)]
pub struct BfsFilter {
    bfs: BoundedBfs,
    /// Number of filter evaluations.
    pub evaluations: u64,
    /// Number of evaluations that pruned the vertex.
    pub pruned: u64,
}

impl BfsFilter {
    /// Create a filter for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsFilter {
            bfs: BoundedBfs::new(n),
            evaluations: 0,
            pruned: 0,
        }
    }

    /// Length of the shortest closed walk through `v` of length at most
    /// `max_hops` in the active subgraph, or `None` if there is none.
    ///
    /// Self-loops are ignored (they are excluded from the problem definition).
    pub fn shortest_closed_walk<G: GraphView>(
        &mut self,
        g: &G,
        active: &ActiveSet,
        v: VertexId,
        max_hops: usize,
    ) -> Option<usize> {
        if !active.is_active(v) || max_hops == 0 {
            return None;
        }
        // Distances *to* v within max_hops - 1 hops.
        self.bfs.run(
            g,
            active,
            v,
            max_hops.saturating_sub(1),
            Direction::Backward,
        );
        let mut best: Option<usize> = None;
        for w in g.out_iter(v) {
            if w == v || !active.is_active(w) {
                continue;
            }
            if let Some(d) = self.bfs.distance(w) {
                let len = d as usize + 1;
                if len <= max_hops {
                    best = Some(best.map_or(len, |b| b.min(len)));
                    if len == 2 {
                        break; // cannot do better
                    }
                }
            }
        }
        best
    }

    /// The paper's filter (Algorithm 11): prune `v` iff no closed walk of
    /// length at most `k` exists; otherwise hand the vertex to the DFS.
    pub fn decide<G: GraphView>(
        &mut self,
        g: &G,
        active: &ActiveSet,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> FilterDecision {
        self.evaluations += 1;
        match self.shortest_closed_walk(g, active, v, constraint.max_hops) {
            None => {
                self.pruned += 1;
                FilterDecision::Prune
            }
            Some(_) => FilterDecision::NeedsVerification,
        }
    }

    /// Extension beyond the paper: also classify vertices as *proven necessary*
    /// when the shortest closed walk is itself an admissible simple cycle
    /// (length within `[min_len, k]`), skipping the DFS for them too. With
    /// 2-cycles excluded, a result of exactly 2 stays inconclusive.
    pub fn decide_exact<G: GraphView>(
        &mut self,
        g: &G,
        active: &ActiveSet,
        v: VertexId,
        constraint: &HopConstraint,
    ) -> FilterDecision {
        self.evaluations += 1;
        match self.shortest_closed_walk(g, active, v, constraint.max_hops) {
            None => {
                self.pruned += 1;
                FilterDecision::Prune
            }
            Some(len) if constraint.covers_len(len) => FilterDecision::ProvenNecessary(len),
            Some(_) => FilterDecision::NeedsVerification,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_cycle::find_cycle_through;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_cycle, directed_path, erdos_renyi_gnm, Xoshiro256};
    use tdb_graph::{DeltaGraph, Graph, GraphBuilder};

    fn all_active(g: &impl Graph) -> ActiveSet {
        ActiveSet::all_active(g.num_vertices())
    }

    #[test]
    fn walk_length_on_a_plain_cycle() {
        let g = directed_cycle(5);
        let active = all_active(&g);
        let mut f = BfsFilter::new(5);
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 10), Some(5));
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 5), Some(5));
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 4), None);
    }

    #[test]
    fn two_cycle_reports_length_two() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        let mut f = BfsFilter::new(2);
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 5), Some(2));
    }

    #[test]
    fn acyclic_vertices_are_pruned() {
        let g = directed_path(8);
        let active = all_active(&g);
        let mut f = BfsFilter::new(8);
        let c = HopConstraint::new(6);
        for v in g.vertices() {
            assert_eq!(f.decide(&g, &active, v, &c), FilterDecision::Prune);
        }
        assert_eq!(f.evaluations, 8);
        assert_eq!(f.pruned, 8);
    }

    #[test]
    fn filter_never_prunes_a_vertex_with_a_constrained_cycle() {
        // Soundness: pruning must only happen when the exhaustive search also
        // finds nothing.
        for seed in 0..10u64 {
            let g = erdos_renyi_gnm(35, 100, seed);
            let active = all_active(&g);
            let mut f = BfsFilter::new(g.num_vertices());
            for k in [3usize, 4, 5] {
                let c = HopConstraint::new(k);
                for v in g.vertices() {
                    if f.decide(&g, &active, v, &c) == FilterDecision::Prune {
                        assert!(
                            find_cycle_through(&g, &active, v, &c).is_none(),
                            "seed {seed}, k {k}, v {v} pruned but has a cycle"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_mode_proofs_are_correct() {
        for seed in 0..10u64 {
            let g = erdos_renyi_gnm(35, 110, seed + 100);
            let active = all_active(&g);
            let mut f = BfsFilter::new(g.num_vertices());
            for k in [3usize, 5] {
                let c = HopConstraint::new(k);
                for v in g.vertices() {
                    match f.decide_exact(&g, &active, v, &c) {
                        FilterDecision::Prune => {
                            assert!(find_cycle_through(&g, &active, v, &c).is_none());
                        }
                        FilterDecision::ProvenNecessary(len) => {
                            let cycle = find_cycle_through(&g, &active, v, &c)
                                .expect("proven-necessary vertex must have a cycle");
                            assert!(cycle.len() >= 3);
                            assert!(len >= 3 && len <= k);
                        }
                        FilterDecision::NeedsVerification => {}
                    }
                }
            }
        }
    }

    #[test]
    fn deactivated_vertices_are_pruned_immediately() {
        let g = directed_cycle(4);
        let mut active = all_active(&g);
        active.deactivate(1);
        let mut f = BfsFilter::new(4);
        let c = HopConstraint::new(6);
        assert_eq!(f.decide(&g, &active, 1, &c), FilterDecision::Prune);
        // The hole also breaks the only cycle through 0.
        assert_eq!(f.decide(&g, &active, 0, &c), FilterDecision::Prune);
    }

    #[test]
    fn shortest_walk_prefers_the_shorter_cycle() {
        // Vertex 0 sits on both a triangle and a 5-cycle.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 0),
        ]);
        let active = all_active(&g);
        let mut f = BfsFilter::new(g.num_vertices());
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 10), Some(3));
    }

    #[test]
    fn delta_graph_overlay_matches_materialized_graph() {
        // Satellite of the GraphView relaxation: the filter must produce the
        // same decisions on a DeltaGraph overlay as on a CsrGraph rebuilt from
        // the overlay's effective edge set — Algorithm 11 now runs directly on
        // the streaming storage.
        for seed in 0..5u64 {
            let n: VertexId = 24;
            let base = erdos_renyi_gnm(n as usize, 60, seed);
            let mut delta = DeltaGraph::new(base.clone());
            let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5EED);
            // Random churn: remove a few base edges, insert a few fresh ones.
            let edges: Vec<_> = base.edges().collect();
            for _ in 0..8 {
                let e = edges[rng.next_index(edges.len())];
                delta.remove_edge(e.source, e.target);
            }
            for _ in 0..8 {
                let u = rng.next_index(n as usize) as VertexId;
                let v = rng.next_index(n as usize) as VertexId;
                if u != v {
                    delta.insert_edge(u, v);
                }
            }
            // Materialize the overlay's effective edge set.
            let mut b = GraphBuilder::new();
            b.reserve_vertices(n as usize);
            for u in 0..n {
                for v in delta.out_iter(u) {
                    b.add_edge(u, v);
                }
            }
            let materialized = b.build();
            let active = ActiveSet::all_active(n as usize);
            let mut f_delta = BfsFilter::new(n as usize);
            let mut f_plain = BfsFilter::new(n as usize);
            for k in [3usize, 4, 6] {
                let c = HopConstraint::new(k);
                for v in 0..n {
                    assert_eq!(
                        f_delta.shortest_closed_walk(&delta, &active, v, k),
                        f_plain.shortest_closed_walk(&materialized, &active, v, k),
                        "seed {seed}, k {k}, v {v}"
                    );
                    assert_eq!(
                        f_delta.decide(&delta, &active, v, &c),
                        f_plain.decide(&materialized, &active, v, &c)
                    );
                    assert_eq!(
                        f_delta.decide_exact(&delta, &active, v, &c),
                        f_plain.decide_exact(&materialized, &active, v, &c)
                    );
                }
            }
        }
    }

    #[test]
    fn max_hops_zero_and_inactive_source() {
        let g = directed_cycle(3);
        let active = all_active(&g);
        let mut f = BfsFilter::new(3);
        assert_eq!(f.shortest_closed_walk(&g, &active, 0, 0), None);
        let mut inactive = all_active(&g);
        inactive.deactivate(0);
        assert_eq!(f.shortest_closed_walk(&g, &inactive, 0, 5), None);
    }
}
