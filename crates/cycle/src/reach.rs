//! Hop-bounded reachability over active subgraphs.
//!
//! A reusable BFS engine with an epoch-stamped distance array
//! ([`TimestampedVec`]) so that a single allocation serves millions of queries
//! without `O(n)` clearing between them. Both search directions are supported:
//! the BFS-filter walks the *reverse* direction (distance *to* the query
//! vertex), while the verifier and some examples walk forward.

use tdb_graph::{ActiveSet, GraphView, TimestampedVec, VertexId};

/// Direction of a BFS traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges: distances *from* the source.
    Forward,
    /// Follow in-edges: distances *to* the source.
    Backward,
}

/// Reusable hop-bounded BFS engine.
///
/// All scratch state is epoch-stamped: starting a new query bumps a counter
/// instead of clearing the arrays, so a query costs `O(visited)` rather than
/// `O(n)`. The engine auto-resizes when handed a graph larger than its
/// current capacity, so it stays sound when a dynamic graph grows under it.
#[derive(Debug, Clone)]
pub struct BoundedBfs {
    dist: TimestampedVec<u32>,
    queue: Vec<VertexId>,
}

impl BoundedBfs {
    /// Create an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BoundedBfs {
            dist: TimestampedVec::new(n, u32::MAX),
            queue: Vec::new(),
        }
    }

    /// Number of vertices this engine is currently sized for.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// Grow the scratch arrays in place to cover `n` vertices (no-op when
    /// already large enough).
    pub fn ensure_capacity(&mut self, n: usize) {
        self.dist.ensure_len(n);
    }

    /// Force the internal epoch counter (clears all stamps first). Test
    /// support for exercising the wrap-around reset without billions of
    /// warm-up queries.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.dist.force_epoch(epoch);
    }

    /// Run a hop-bounded BFS from `source` over active vertices.
    ///
    /// After the call, [`BoundedBfs::distance`] reports distances (in hops) of
    /// vertices reached within `max_hops`; unreached vertices report `None`.
    /// Returns the number of vertices reached (including the source).
    pub fn run<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        source: VertexId,
        max_hops: usize,
        direction: Direction,
    ) -> usize {
        self.ensure_capacity(g.vertex_count());
        self.dist.reset();
        self.queue.clear();
        if !active.is_active(source) {
            return 0;
        }
        self.visit(source, 0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let d = self.dist.get(u as usize);
            if d as usize >= max_hops {
                continue;
            }
            match direction {
                Direction::Forward => {
                    for v in g.out_iter(u) {
                        // Visited-check first: it is the cheaper test and, once
                        // the frontier saturates, the one that short-circuits.
                        if !self.dist.is_set(v as usize) && active.is_active(v) {
                            self.visit(v, d + 1);
                        }
                    }
                }
                Direction::Backward => {
                    for v in g.in_iter(u) {
                        if !self.dist.is_set(v as usize) && active.is_active(v) {
                            self.visit(v, d + 1);
                        }
                    }
                }
            }
        }
        self.queue.len()
    }

    #[inline]
    fn visit(&mut self, v: VertexId, d: u32) {
        self.dist.set(v as usize, d);
        self.queue.push(v);
    }

    /// Distance of `v` from the most recent query's source, if reached.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Option<u32> {
        if self.dist.is_set(v as usize) {
            Some(self.dist.get(v as usize))
        } else {
            None
        }
    }

    /// Vertices reached by the most recent query, in BFS order.
    pub fn reached(&self) -> &[VertexId] {
        &self.queue
    }
}

/// Convenience wrapper: hop-bounded distance from `u` to `v` over active
/// vertices, or `None` if `v` is unreachable within `max_hops`.
pub fn bounded_distance<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    u: VertexId,
    v: VertexId,
    max_hops: usize,
) -> Option<u32> {
    let mut bfs = BoundedBfs::new(g.vertex_count());
    bfs.run(g, active, u, max_hops, Direction::Forward);
    bfs.distance(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_cycle, directed_path};

    #[test]
    fn forward_distances_on_a_path() {
        let g = directed_path(6);
        let active = ActiveSet::all_active(6);
        let mut bfs = BoundedBfs::new(6);
        let reached = bfs.run(&g, &active, 0, 10, Direction::Forward);
        assert_eq!(reached, 6);
        for v in 0..6u32 {
            assert_eq!(bfs.distance(v), Some(v));
        }
    }

    #[test]
    fn hop_bound_truncates_search() {
        let g = directed_path(6);
        let active = ActiveSet::all_active(6);
        let mut bfs = BoundedBfs::new(6);
        bfs.run(&g, &active, 0, 2, Direction::Forward);
        assert_eq!(bfs.distance(2), Some(2));
        assert_eq!(bfs.distance(3), None);
    }

    #[test]
    fn backward_distances_follow_in_edges() {
        let g = directed_path(4);
        let active = ActiveSet::all_active(4);
        let mut bfs = BoundedBfs::new(4);
        bfs.run(&g, &active, 3, 10, Direction::Backward);
        assert_eq!(bfs.distance(0), Some(3));
        assert_eq!(bfs.distance(3), Some(0));
        // Forward from the sink reaches nothing else.
        bfs.run(&g, &active, 3, 10, Direction::Forward);
        assert_eq!(bfs.distance(0), None);
    }

    #[test]
    fn inactive_vertices_block_traversal() {
        let g = directed_cycle(5);
        let mut active = ActiveSet::all_active(5);
        active.deactivate(2);
        let mut bfs = BoundedBfs::new(5);
        bfs.run(&g, &active, 0, 10, Direction::Forward);
        assert_eq!(bfs.distance(1), Some(1));
        assert_eq!(bfs.distance(3), None); // cut off behind the hole
                                           // Inactive source reaches nothing.
        assert_eq!(bfs.run(&g, &active, 2, 10, Direction::Forward), 0);
        assert_eq!(bfs.distance(2), None);
    }

    #[test]
    fn epoch_reuse_does_not_leak_previous_query() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        let active = ActiveSet::all_active(4);
        let mut bfs = BoundedBfs::new(4);
        bfs.run(&g, &active, 0, 5, Direction::Forward);
        assert_eq!(bfs.distance(1), Some(1));
        bfs.run(&g, &active, 2, 5, Direction::Forward);
        assert_eq!(bfs.distance(1), None, "stale result from earlier query");
        assert_eq!(bfs.distance(3), Some(1));
        assert_eq!(bfs.reached(), &[2, 3]);
    }

    #[test]
    fn bounded_distance_helper() {
        let g = directed_cycle(6);
        let active = ActiveSet::all_active(6);
        assert_eq!(bounded_distance(&g, &active, 0, 3, 10), Some(3));
        assert_eq!(bounded_distance(&g, &active, 0, 3, 2), None);
        assert_eq!(bounded_distance(&g, &active, 0, 0, 10), Some(0));
    }

    #[test]
    fn many_queries_with_epoch_wrap_protection() {
        let g = directed_cycle(4);
        let active = ActiveSet::all_active(4);
        let mut bfs = BoundedBfs::new(4);
        for _ in 0..10_000 {
            bfs.run(&g, &active, 1, 4, Direction::Forward);
        }
        assert_eq!(bfs.distance(0), Some(3));
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        let active = ActiveSet::all_active(4);
        let mut bfs = BoundedBfs::new(4);
        bfs.run(&g, &active, 0, 5, Direction::Forward);
        bfs.force_epoch(u32::MAX);
        // The next run wraps the u32 epoch; stale stamps must not leak.
        bfs.run(&g, &active, 2, 5, Direction::Forward);
        assert_eq!(bfs.distance(0), None);
        assert_eq!(bfs.distance(3), Some(1));
    }

    #[test]
    fn undersized_engine_auto_resizes() {
        // An engine built for a smaller graph must transparently cover a
        // larger one (release builds used to index out of bounds here).
        let g = directed_cycle(8);
        let active = ActiveSet::all_active(8);
        let mut bfs = BoundedBfs::new(2);
        let reached = bfs.run(&g, &active, 0, 8, Direction::Forward);
        assert_eq!(reached, 8);
        assert_eq!(bfs.capacity(), 8);
        assert_eq!(bfs.distance(7), Some(7));
    }
}
