//! Bounded simple-cycle enumeration.
//!
//! Two consumers need more than a single witness cycle:
//!
//! * the DARC baseline (Algorithms 1–3) repeatedly asks for a hop-constrained
//!   cycle *through a specific edge* that avoids an evolving set of covered
//!   edges ([`find_cycle_through_edge`]), and
//! * the brute-force verifier and the property tests enumerate *all*
//!   hop-constrained cycles of small graphs to cross-check the fast algorithms
//!   ([`enumerate_cycles`]).
//!
//! Enumeration is exponential by nature; every entry point takes an explicit
//! limit so that a misbehaving caller cannot hang the test suite.

use tdb_graph::{ActiveSet, Edge, FixedBitSet, Graph, VertexId};

use crate::HopConstraint;

/// Enumerate all hop-constrained simple cycles of the active subgraph.
///
/// Each cycle is reported exactly once, as a vertex sequence rotated so that
/// its minimum vertex id comes first (the closing edge back to the first vertex
/// is implicit). Enumeration stops after `limit` cycles.
///
/// Intended for verification on small graphs; the running time is exponential.
pub fn enumerate_cycles<G: Graph>(
    g: &G,
    active: &ActiveSet,
    constraint: &HopConstraint,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    let mut results = Vec::new();
    let n = g.num_vertices();
    let mut on_path = vec![false; n];
    for start in 0..n as VertexId {
        if results.len() >= limit {
            break;
        }
        if !active.is_active(start) {
            continue;
        }
        let mut path = vec![start];
        on_path[start as usize] = true;
        // Only allow vertices with id > start on the rest of the path so each
        // cycle is discovered exactly once (rooted at its minimum vertex).
        enumerate_from(
            g,
            active,
            start,
            constraint,
            &mut path,
            &mut on_path,
            &mut results,
            limit,
        );
        on_path[start as usize] = false;
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn enumerate_from<G: Graph>(
    g: &G,
    active: &ActiveSet,
    start: VertexId,
    constraint: &HopConstraint,
    path: &mut Vec<VertexId>,
    on_path: &mut [bool],
    results: &mut Vec<Vec<VertexId>>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    let current = *path.last().expect("path never empty");
    let len = path.len();
    for &next in g.out_neighbors(current) {
        if results.len() >= limit {
            return;
        }
        if !active.is_active(next) {
            continue;
        }
        if next == start {
            if constraint.covers_len(len) {
                results.push(path.clone());
            }
            continue;
        }
        if next < start || on_path[next as usize] || len >= constraint.max_hops {
            continue;
        }
        path.push(next);
        on_path[next as usize] = true;
        enumerate_from(g, active, start, constraint, path, on_path, results, limit);
        on_path[next as usize] = false;
        path.pop();
    }
}

/// Count all hop-constrained simple cycles (up to `limit`).
pub fn count_cycles<G: Graph>(
    g: &G,
    active: &ActiveSet,
    constraint: &HopConstraint,
    limit: usize,
) -> usize {
    enumerate_cycles(g, active, constraint, limit).len()
}

/// Reusable engine for the filtered edge-anchored cycle search.
///
/// The DARC loops (`AUGMENT` / `PRUNE`) issue one query per edge per round;
/// holding the on-path mask across queries removes the former `vec![false; n]`
/// per call. The search itself is the bounded recursion of
/// [`find_cycle_through_edge`].
#[derive(Debug, Clone)]
pub struct EdgeDfsSearcher {
    on_path: FixedBitSet,
    path_edges: Vec<Edge>,
}

impl EdgeDfsSearcher {
    /// Create an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeDfsSearcher {
            on_path: FixedBitSet::new(n),
            path_edges: Vec::new(),
        }
    }

    /// Grow the scratch in place to cover `n` vertices (no-op when already
    /// large enough).
    pub fn ensure_capacity(&mut self, n: usize) {
        self.on_path.grow(n, false);
    }

    /// Find one hop-constrained simple cycle that traverses `through`, uses
    /// only edges accepted by `edge_allowed`, and only active vertices. See
    /// [`find_cycle_through_edge`] for the contract.
    pub fn find_cycle_through_edge<G, F>(
        &mut self,
        g: &G,
        active: &ActiveSet,
        through: Edge,
        constraint: &HopConstraint,
        edge_allowed: F,
    ) -> Option<Vec<Edge>>
    where
        G: Graph,
        F: Fn(Edge) -> bool,
    {
        self.ensure_capacity(g.num_vertices());
        let (u, v) = (through.source, through.target);
        if u == v || !active.is_active(u) || !active.is_active(v) {
            return None;
        }
        if !edge_allowed(through) {
            return None;
        }
        // A cycle of length l through (u, v) is the edge plus a simple path
        // from v back to u of length l - 1 that avoids u and v internally.
        self.on_path.insert(u as usize);
        self.on_path.insert(v as usize);
        let mut path_edges = std::mem::take(&mut self.path_edges);
        path_edges.clear();
        path_edges.push(through);
        let found = edge_dfs(
            g,
            active,
            u,
            v,
            constraint,
            &edge_allowed,
            &mut path_edges,
            &mut self.on_path,
        );
        // Unmark the path (on failure only u and v are marked; the recursion
        // unwinds its own marks).
        self.on_path.remove(u as usize);
        self.on_path.remove(v as usize);
        let witness = if found {
            for e in &path_edges {
                self.on_path.remove(e.target as usize);
            }
            Some(path_edges.clone())
        } else {
            None
        };
        self.path_edges = path_edges; // hand the buffer back
        witness
    }
}

/// Find one hop-constrained simple cycle that traverses the directed edge
/// `through`, uses only edges accepted by `edge_allowed`, and only active
/// vertices. Returns the cycle as a sequence of edges, starting with `through`.
///
/// This is the search primitive behind DARC's `AUGMENT` (find an uncovered
/// cycle through the edge being processed) and `PRUNE` (check whether removing
/// an edge from the transversal re-exposes a cycle). Thin wrapper building a
/// fresh [`EdgeDfsSearcher`] per call; the DARC loops hold a reusable engine.
pub fn find_cycle_through_edge<G, F>(
    g: &G,
    active: &ActiveSet,
    through: Edge,
    constraint: &HopConstraint,
    edge_allowed: F,
) -> Option<Vec<Edge>>
where
    G: Graph,
    F: Fn(Edge) -> bool,
{
    EdgeDfsSearcher::new(g.num_vertices()).find_cycle_through_edge(
        g,
        active,
        through,
        constraint,
        edge_allowed,
    )
}

#[allow(clippy::too_many_arguments)]
fn edge_dfs<G, F>(
    g: &G,
    active: &ActiveSet,
    target: VertexId,
    current: VertexId,
    constraint: &HopConstraint,
    edge_allowed: &F,
    path_edges: &mut Vec<Edge>,
    on_path: &mut FixedBitSet,
) -> bool
where
    G: Graph,
    F: Fn(Edge) -> bool,
{
    let len = path_edges.len(); // edges used so far
    for &next in g.out_neighbors(current) {
        if !active.is_active(next) {
            continue;
        }
        let e = Edge::new(current, next);
        if !edge_allowed(e) {
            continue;
        }
        if next == target {
            // Closing the cycle: total length = len + 1 edges.
            if constraint.covers_len(len + 1) {
                path_edges.push(e);
                return true;
            }
            continue;
        }
        if on_path.contains(next as usize) || len + 1 >= constraint.max_hops {
            continue;
        }
        path_edges.push(e);
        on_path.insert(next as usize);
        if edge_dfs(
            g,
            active,
            target,
            next,
            constraint,
            edge_allowed,
            path_edges,
            on_path,
        ) {
            return true;
        }
        on_path.remove(next as usize);
        path_edges.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, directed_path};

    fn all_active(g: &impl Graph) -> ActiveSet {
        ActiveSet::all_active(g.num_vertices())
    }

    #[test]
    fn single_cycle_enumerated_once() {
        let g = directed_cycle(4);
        let cycles = enumerate_cycles(&g, &all_active(&g), &HopConstraint::new(6), 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn triangle_counts_in_complete_graphs() {
        // K4 has 8 directed triangles and 6 directed 4-cycles; with k = 3 only
        // the triangles count.
        let g = complete_digraph(4);
        let active = all_active(&g);
        assert_eq!(count_cycles(&g, &active, &HopConstraint::new(3), 1000), 8);
        assert_eq!(
            count_cycles(&g, &active, &HopConstraint::new(4), 1000),
            8 + 6
        );
        // Including 2-cycles adds the 6 bidirectional pairs.
        assert_eq!(
            count_cycles(&g, &active, &HopConstraint::with_two_cycles(3), 1000),
            8 + 6
        );
    }

    #[test]
    fn acyclic_graphs_enumerate_nothing() {
        let g = directed_path(6);
        assert!(enumerate_cycles(&g, &all_active(&g), &HopConstraint::new(5), 10).is_empty());
    }

    #[test]
    fn limit_truncates_enumeration() {
        let g = complete_digraph(5);
        let cycles = enumerate_cycles(&g, &all_active(&g), &HopConstraint::new(4), 7);
        assert_eq!(cycles.len(), 7);
    }

    #[test]
    fn deactivation_removes_cycles() {
        let g = complete_digraph(4);
        let mut active = all_active(&g);
        active.deactivate(0);
        // Remaining K3 has 2 directed triangles.
        assert_eq!(count_cycles(&g, &active, &HopConstraint::new(3), 100), 2);
    }

    #[test]
    fn every_enumerated_cycle_is_canonical_and_valid() {
        let g = complete_digraph(5);
        let active = all_active(&g);
        let constraint = HopConstraint::new(5);
        let cycles = enumerate_cycles(&g, &active, &constraint, 10_000);
        let mut seen = std::collections::HashSet::new();
        for c in &cycles {
            assert!(crate::find_cycle::is_valid_cycle(
                &g,
                &active,
                c,
                &constraint
            ));
            // First vertex is the minimum -> canonical rotation -> no duplicates.
            assert_eq!(*c.iter().min().unwrap(), c[0]);
            assert!(seen.insert(c.clone()), "duplicate cycle {c:?}");
        }
    }

    #[test]
    fn edge_cycle_search_finds_and_respects_filter() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (1, 3), (3, 0)]);
        let active = all_active(&g);
        let c = HopConstraint::new(4);
        let through = Edge::new(0, 1);
        let cycle = find_cycle_through_edge(&g, &active, through, &c, |_| true).unwrap();
        assert_eq!(cycle[0], through);
        assert!(cycle.len() == 3 || cycle.len() == 4);
        // Forbid the edge (2, 0): only the 0 -> 1 -> 3 -> 0 cycle remains.
        let banned = Edge::new(2, 0);
        let cycle = find_cycle_through_edge(&g, &active, through, &c, |e| e != banned).unwrap();
        assert_eq!(cycle.len(), 3);
        assert_eq!(cycle, vec![through, Edge::new(1, 3), Edge::new(3, 0)]);
        assert!(!cycle.contains(&banned));
        // Forbid both closing edges: nothing remains.
        let banned2 = Edge::new(3, 0);
        assert!(
            find_cycle_through_edge(&g, &active, through, &c, |e| e != banned && e != banned2)
                .is_none()
        );
    }

    #[test]
    fn edge_cycle_search_honours_hop_constraint() {
        let g = directed_cycle(5);
        let active = all_active(&g);
        let through = Edge::new(0, 1);
        assert!(
            find_cycle_through_edge(&g, &active, through, &HopConstraint::new(4), |_| true)
                .is_none()
        );
        let found = find_cycle_through_edge(&g, &active, through, &HopConstraint::new(5), |_| true)
            .unwrap();
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn edge_cycle_search_excludes_two_cycles_by_default() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        let through = Edge::new(0, 1);
        assert!(
            find_cycle_through_edge(&g, &active, through, &HopConstraint::new(5), |_| true)
                .is_none()
        );
        let c2 = find_cycle_through_edge(
            &g,
            &active,
            through,
            &HopConstraint::with_two_cycles(5),
            |_| true,
        )
        .unwrap();
        assert_eq!(c2.len(), 2);
    }

    #[test]
    fn edge_cycle_search_rejects_filtered_seed_edge() {
        let g = directed_cycle(3);
        let active = all_active(&g);
        let through = Edge::new(0, 1);
        assert!(
            find_cycle_through_edge(&g, &active, through, &HopConstraint::new(3), |e| e
                != through)
            .is_none()
        );
    }
}
