//! # tdb-cycle
//!
//! Hop-constrained cycle search primitives for the TDB hop-constrained cycle
//! cover library.
//!
//! The cover algorithms in `tdb-core` never enumerate all cycles — they only
//! ever need to answer two questions, millions of times, on ever-changing
//! reduced graphs:
//!
//! 1. *Is there a hop-constrained simple cycle through vertex `s` in the
//!    currently active subgraph?* (and if so, produce one witness), and
//! 2. *Can vertex `s` be ruled out cheaply without a full search?*
//!
//! This crate provides three answers of increasing sophistication, matching the
//! paper's TDB / TDB+ / TDB++ ladder:
//!
//! * [`find_cycle::find_cycle_through`] — the naive bounded DFS of Algorithm 5
//!   (`FindCycle`), exponential in the worst case, used by the bottom-up
//!   baseline and as the reference oracle in tests.
//! * [`block_dfs::BlockSearcher`] — the block/barrier DFS of Algorithms 9–10
//!   (`NodeNecessary` / `Unblock`) with `O(k·m)` worst-case time per query.
//! * [`bfs_filter::BfsFilter`] — the BFS upper-bound filter of Algorithm 11,
//!   a linear-time prune that skips the DFS entirely for most vertices.
//!
//! [`enumerate`] provides bounded simple-cycle enumeration (needed by the DARC
//! baseline and by the brute-force verifier), and [`reach`] provides
//! hop-bounded reachability used by the filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs_filter;
pub mod block_dfs;
pub mod edge_search;
pub mod enumerate;
pub mod find_cycle;
pub mod reach;

pub use bfs_filter::BfsFilter;
pub use block_dfs::BlockSearcher;
pub use edge_search::EdgeCycleSearcher;
pub use enumerate::EdgeDfsSearcher;
pub use find_cycle::{find_cycle_through, NaiveSearcher};

/// The hop constraint governing which cycles must be covered.
///
/// A *constrained cycle* (Definition 1 of the paper) is a simple cycle `c` with
/// `3 <= |c| <= k`. Table IV of the paper additionally evaluates the variant
/// that also covers 2-cycles (bidirectional edge pairs), which is expressed
/// here with [`HopConstraint::include_two_cycles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopConstraint {
    /// Maximum cycle length `k` (inclusive).
    pub max_hops: usize,
    /// Whether length-2 cycles (bidirectional edges) must also be covered.
    pub include_two_cycles: bool,
}

impl HopConstraint {
    /// Standard constraint of the paper: cycles of length `3..=k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "hop constraint must be at least 2, got {k}");
        HopConstraint {
            max_hops: k,
            include_two_cycles: false,
        }
    }

    /// Constraint that also covers 2-cycles: cycles of length `2..=k`
    /// (the "With 2-cycle" column of Table IV).
    pub fn with_two_cycles(k: usize) -> Self {
        assert!(k >= 2, "hop constraint must be at least 2, got {k}");
        HopConstraint {
            max_hops: k,
            include_two_cycles: true,
        }
    }

    /// Minimum length a cycle must have to require covering.
    #[inline]
    pub fn min_len(&self) -> usize {
        if self.include_two_cycles {
            2
        } else {
            3
        }
    }

    /// Whether a simple cycle of length `len` falls under this constraint.
    #[inline]
    pub fn covers_len(&self, len: usize) -> bool {
        len >= self.min_len() && len <= self.max_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constraint_excludes_two_cycles() {
        let c = HopConstraint::new(5);
        assert_eq!(c.min_len(), 3);
        assert!(!c.covers_len(2));
        assert!(c.covers_len(3));
        assert!(c.covers_len(5));
        assert!(!c.covers_len(6));
    }

    #[test]
    fn two_cycle_constraint_includes_length_two() {
        let c = HopConstraint::with_two_cycles(4);
        assert_eq!(c.min_len(), 2);
        assert!(c.covers_len(2));
        assert!(c.covers_len(4));
        assert!(!c.covers_len(5));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_below_two_panics() {
        HopConstraint::new(1);
    }
}
