//! Naive bounded-DFS cycle search (`FindCycle`, Algorithm 5 of the paper).
//!
//! This is the search used inside the bottom-up approach (Section V) and the
//! reference oracle for the block-based search: it explores every simple path
//! of length at most `k` starting at the query vertex and reports the first one
//! that closes back on the start. The worst case is `O(n^k)`, which is exactly
//! the complexity the paper attributes to the bottom-up family.

use tdb_graph::{ActiveSet, GraphView, VertexId};

use crate::HopConstraint;

/// Find one hop-constrained simple cycle through `start` in the subgraph
/// induced by `active` vertices.
///
/// Returns the cycle as a vertex sequence `[start, v1, ..., v_{l-1}]` (the
/// closing edge back to `start` is implicit), or `None` if no cycle through
/// `start` satisfies the constraint.
///
/// `start` itself must be active; inactive query vertices trivially return
/// `None`.
///
/// Generic over [`GraphView`], so the search runs identically on a plain
/// [`tdb_graph::CsrGraph`] and on the [`tdb_graph::DeltaGraph`] overlay used
/// by the incremental-maintenance subsystem.
pub fn find_cycle_through<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    start: VertexId,
    constraint: &HopConstraint,
) -> Option<Vec<VertexId>> {
    let _timer = tdb_obs::histogram!("tdb_cycle_naive_query_seconds").start();
    if !active.is_active(start) {
        return None;
    }
    let mut on_path = vec![false; g.vertex_count()];
    let mut path: Vec<VertexId> = Vec::with_capacity(constraint.max_hops + 1);
    path.push(start);
    on_path[start as usize] = true;
    if dfs(g, active, start, constraint, &mut path, &mut on_path) {
        Some(path)
    } else {
        None
    }
}

fn dfs<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    start: VertexId,
    constraint: &HopConstraint,
    path: &mut Vec<VertexId>,
    on_path: &mut [bool],
) -> bool {
    let current = *path.last().expect("path never empty");
    let len = path.len(); // number of vertices on the open path
    for next in g.out_iter(current) {
        if !active.is_active(next) {
            continue;
        }
        if next == start {
            // Closing the cycle: its length equals the number of vertices on
            // the path.
            if constraint.covers_len(len) {
                return true;
            }
            continue;
        }
        if on_path[next as usize] {
            continue;
        }
        if len >= constraint.max_hops {
            // Extending would exceed the hop budget even before closing.
            continue;
        }
        path.push(next);
        on_path[next as usize] = true;
        if dfs(g, active, start, constraint, path, on_path) {
            return true;
        }
        on_path[next as usize] = false;
        path.pop();
    }
    false
}

/// Check whether the returned vertex sequence really is a hop-constrained
/// simple cycle of the graph. Used by tests and by the verifier to validate
/// witnesses produced by any of the search routines.
pub fn is_valid_cycle<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    cycle: &[VertexId],
    constraint: &HopConstraint,
) -> bool {
    let len = cycle.len();
    if !constraint.covers_len(len) {
        return false;
    }
    // All vertices distinct and active.
    let mut seen = std::collections::HashSet::with_capacity(len);
    for &v in cycle {
        if (v as usize) >= g.vertex_count() || !active.is_active(v) || !seen.insert(v) {
            return false;
        }
    }
    // All consecutive edges (including the closing edge) present.
    for i in 0..len {
        let u = cycle[i];
        let v = cycle[(i + 1) % len];
        if !g.contains_edge(u, v) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_cycle, directed_path, layered_dag};
    use tdb_graph::Graph;

    fn all_active(g: &impl GraphView) -> ActiveSet {
        ActiveSet::all_active(g.vertex_count())
    }

    #[test]
    fn finds_triangle_from_every_vertex() {
        let g = directed_cycle(3);
        let active = all_active(&g);
        let k = HopConstraint::new(5);
        for v in g.vertices() {
            let c = find_cycle_through(&g, &active, v, &k).expect("triangle must be found");
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], v);
            assert!(is_valid_cycle(&g, &active, &c, &k));
        }
    }

    #[test]
    fn respects_hop_constraint_boundary() {
        let g = directed_cycle(6);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(6)).is_some());
    }

    #[test]
    fn excludes_two_cycles_by_default() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
        let with2 = HopConstraint::with_two_cycles(5);
        let c = find_cycle_through(&g, &active, 0, &with2).unwrap();
        assert_eq!(c.len(), 2);
        assert!(is_valid_cycle(&g, &active, &c, &with2));
    }

    #[test]
    fn acyclic_graphs_have_no_cycles() {
        for g in [directed_path(10), layered_dag(4, 3)] {
            let active = all_active(&g);
            for v in g.vertices() {
                assert!(find_cycle_through(&g, &active, v, &HopConstraint::new(6)).is_none());
            }
        }
    }

    #[test]
    fn deactivated_vertices_break_the_cycle() {
        let g = directed_cycle(4);
        let mut active = all_active(&g);
        let k = HopConstraint::new(5);
        assert!(find_cycle_through(&g, &active, 0, &k).is_some());
        active.deactivate(2);
        assert!(find_cycle_through(&g, &active, 0, &k).is_none());
        // Query on the deactivated vertex itself.
        assert!(find_cycle_through(&g, &active, 2, &k).is_none());
    }

    #[test]
    fn finds_shorter_of_two_cycles_when_long_one_exceeds_k() {
        // start 0 is on a 3-cycle (0,1,2) and a 5-cycle (0,3,4,5,6).
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 0),
        ]);
        let active = all_active(&g);
        let c = find_cycle_through(&g, &active, 0, &HopConstraint::new(3)).unwrap();
        assert_eq!(c.len(), 3);
        // With k = 7, either cycle is acceptable.
        let c = find_cycle_through(&g, &active, 0, &HopConstraint::new(7)).unwrap();
        assert!(c.len() == 3 || c.len() == 5);
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // Triangle on 1,2,3; vertex 0 only feeds into it.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 1)]);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(6)).is_none());
        assert!(find_cycle_through(&g, &active, 1, &HopConstraint::new(6)).is_some());
    }

    #[test]
    fn is_valid_cycle_rejects_malformed_witnesses() {
        let g = directed_cycle(4);
        let active = all_active(&g);
        let k = HopConstraint::new(5);
        assert!(is_valid_cycle(&g, &active, &[0, 1, 2, 3], &k));
        // Wrong order: edge 0 -> 2 missing.
        assert!(!is_valid_cycle(&g, &active, &[0, 2, 1, 3], &k));
        // Repeated vertex.
        assert!(!is_valid_cycle(&g, &active, &[0, 1, 0, 1], &k));
        // Too short under the default constraint.
        assert!(!is_valid_cycle(&g, &active, &[0, 1], &k));
        // Too long for k = 3.
        assert!(!is_valid_cycle(
            &g,
            &active,
            &[0, 1, 2, 3],
            &HopConstraint::new(3)
        ));
    }

    #[test]
    fn self_loop_is_never_a_cycle() {
        let mut b = tdb_graph::GraphBuilder::new();
        b.keep_self_loops(true);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let active = ActiveSet::all_active(2);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
    }
}
