//! Naive bounded-DFS cycle search (`FindCycle`, Algorithm 5 of the paper).
//!
//! This is the search used inside the bottom-up approach (Section V) and the
//! reference oracle for the block-based search: it explores every simple path
//! of length at most `k` starting at the query vertex and reports the first one
//! that closes back on the start. The worst case is `O(n^k)`, which is exactly
//! the complexity the paper attributes to the bottom-up family.
//!
//! The search lives in a reusable engine, [`NaiveSearcher`]: the on-path mask
//! is a [`FixedBitSet`] and the explicit DFS stack a [`DfsArena`], both of
//! which amortize to zero allocation across queries. The bottom-up solver
//! issues one query per vertex per round, so the former `vec![false; n]` per
//! call was O(n²) of hidden clearing per solve. A thin free-function wrapper
//! ([`find_cycle_through`]) is kept for tests and one-off queries.

use tdb_graph::{ActiveSet, DfsArena, FixedBitSet, GraphView, VertexId};

use crate::HopConstraint;

/// Reusable engine for the naive bounded-DFS cycle search.
///
/// All scratch state (the on-path bit mask and the DFS frame arena) is
/// retained across queries, so a query costs O(paths explored), with no O(n)
/// setup. The engine auto-resizes when handed a graph larger than its
/// current capacity.
#[derive(Debug, Clone)]
pub struct NaiveSearcher {
    on_path: FixedBitSet,
    dfs: DfsArena,
    queries: u64,
}

impl NaiveSearcher {
    /// Create an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        NaiveSearcher {
            on_path: FixedBitSet::new(n),
            dfs: DfsArena::new(),
            queries: 0,
        }
    }

    /// Number of vertices this engine is currently sized for.
    pub fn capacity(&self) -> usize {
        self.on_path.len()
    }

    /// Grow the scratch in place to cover `n` vertices (no-op when already
    /// large enough).
    pub fn ensure_capacity(&mut self, n: usize) {
        self.on_path.grow(n, false);
    }

    /// Find one hop-constrained simple cycle through `start` in the subgraph
    /// induced by `active` vertices.
    ///
    /// Returns the cycle as a vertex sequence `[start, v1, ..., v_{l-1}]`
    /// (the closing edge back to `start` is implicit), or `None` if no cycle
    /// through `start` satisfies the constraint. `start` itself must be
    /// active; inactive query vertices trivially return `None`.
    ///
    /// The exploration order is identical to the recursive formulation: at
    /// each vertex the out-neighbors are tried in adjacency order, and the
    /// first closing edge that satisfies the constraint wins.
    pub fn find_cycle_through<V: GraphView>(
        &mut self,
        g: &V,
        active: &ActiveSet,
        start: VertexId,
        constraint: &HopConstraint,
    ) -> Option<Vec<VertexId>> {
        // Sampled 1-in-64: per-query timing would dominate the
        // instrumentation budget on hot solves (see the block searcher).
        let _timer = if self.queries & 0x3F == 0 {
            tdb_obs::histogram!("tdb_cycle_naive_query_seconds").start()
        } else {
            None
        };
        self.queries += 1;
        self.ensure_capacity(g.vertex_count());
        if !active.is_active(start) {
            return None;
        }
        self.dfs.clear();
        self.on_path.insert(start as usize);
        self.dfs.push(start, g.out_iter(start));
        let mut found = false;
        while !self.dfs.is_done() {
            // Number of vertices on the open path == current stack depth.
            let len = self.dfs.depth();
            match self.dfs.next_neighbor() {
                Some(next) => {
                    if !active.is_active(next) {
                        continue;
                    }
                    if next == start {
                        // Closing the cycle: its length equals the number of
                        // vertices on the path.
                        if constraint.covers_len(len) {
                            found = true;
                            break;
                        }
                        continue;
                    }
                    if self.on_path.contains(next as usize) {
                        continue;
                    }
                    if len >= constraint.max_hops {
                        // Extending would exceed the hop budget even before
                        // closing.
                        continue;
                    }
                    self.on_path.insert(next as usize);
                    self.dfs.push(next, g.out_iter(next));
                }
                None => {
                    let v = self.dfs.pop().expect("non-empty stack");
                    self.on_path.remove(v as usize);
                }
            }
        }
        if found {
            let path: Vec<VertexId> = self.dfs.path().collect();
            for &v in &path {
                self.on_path.remove(v as usize);
            }
            self.dfs.clear();
            Some(path)
        } else {
            // Every pop already unmarked its vertex; the scratch is clean.
            None
        }
    }
}

/// Find one hop-constrained simple cycle through `start` in the subgraph
/// induced by `active` vertices.
///
/// Thin convenience wrapper that builds a fresh [`NaiveSearcher`] per call —
/// fine for tests and one-off queries. Solver loops that issue millions of
/// queries hold a reusable engine instead.
///
/// Generic over [`GraphView`], so the search runs identically on a plain
/// [`tdb_graph::CsrGraph`] and on the [`tdb_graph::DeltaGraph`] overlay used
/// by the incremental-maintenance subsystem.
pub fn find_cycle_through<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    start: VertexId,
    constraint: &HopConstraint,
) -> Option<Vec<VertexId>> {
    NaiveSearcher::new(g.vertex_count()).find_cycle_through(g, active, start, constraint)
}

/// Check whether the returned vertex sequence really is a hop-constrained
/// simple cycle of the graph. Used by tests and by the verifier to validate
/// witnesses produced by any of the search routines.
pub fn is_valid_cycle<V: GraphView>(
    g: &V,
    active: &ActiveSet,
    cycle: &[VertexId],
    constraint: &HopConstraint,
) -> bool {
    let len = cycle.len();
    if !constraint.covers_len(len) {
        return false;
    }
    // All vertices distinct and active.
    let mut seen = std::collections::HashSet::with_capacity(len);
    for &v in cycle {
        if (v as usize) >= g.vertex_count() || !active.is_active(v) || !seen.insert(v) {
            return false;
        }
    }
    // All consecutive edges (including the closing edge) present.
    for i in 0..len {
        let u = cycle[i];
        let v = cycle[(i + 1) % len];
        if !g.contains_edge(u, v) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_cycle, directed_path, layered_dag};
    use tdb_graph::Graph;

    fn all_active(g: &impl GraphView) -> ActiveSet {
        ActiveSet::all_active(g.vertex_count())
    }

    #[test]
    fn finds_triangle_from_every_vertex() {
        let g = directed_cycle(3);
        let active = all_active(&g);
        let k = HopConstraint::new(5);
        for v in g.vertices() {
            let c = find_cycle_through(&g, &active, v, &k).expect("triangle must be found");
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], v);
            assert!(is_valid_cycle(&g, &active, &c, &k));
        }
    }

    #[test]
    fn respects_hop_constraint_boundary() {
        let g = directed_cycle(6);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(6)).is_some());
    }

    #[test]
    fn excludes_two_cycles_by_default() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
        let with2 = HopConstraint::with_two_cycles(5);
        let c = find_cycle_through(&g, &active, 0, &with2).unwrap();
        assert_eq!(c.len(), 2);
        assert!(is_valid_cycle(&g, &active, &c, &with2));
    }

    #[test]
    fn acyclic_graphs_have_no_cycles() {
        for g in [directed_path(10), layered_dag(4, 3)] {
            let active = all_active(&g);
            for v in g.vertices() {
                assert!(find_cycle_through(&g, &active, v, &HopConstraint::new(6)).is_none());
            }
        }
    }

    #[test]
    fn deactivated_vertices_break_the_cycle() {
        let g = directed_cycle(4);
        let mut active = all_active(&g);
        let k = HopConstraint::new(5);
        assert!(find_cycle_through(&g, &active, 0, &k).is_some());
        active.deactivate(2);
        assert!(find_cycle_through(&g, &active, 0, &k).is_none());
        // Query on the deactivated vertex itself.
        assert!(find_cycle_through(&g, &active, 2, &k).is_none());
    }

    #[test]
    fn finds_shorter_of_two_cycles_when_long_one_exceeds_k() {
        // start 0 is on a 3-cycle (0,1,2) and a 5-cycle (0,3,4,5,6).
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 0),
        ]);
        let active = all_active(&g);
        let c = find_cycle_through(&g, &active, 0, &HopConstraint::new(3)).unwrap();
        assert_eq!(c.len(), 3);
        // With k = 7, either cycle is acceptable.
        let c = find_cycle_through(&g, &active, 0, &HopConstraint::new(7)).unwrap();
        assert!(c.len() == 3 || c.len() == 5);
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // Triangle on 1,2,3; vertex 0 only feeds into it.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 1)]);
        let active = all_active(&g);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(6)).is_none());
        assert!(find_cycle_through(&g, &active, 1, &HopConstraint::new(6)).is_some());
    }

    #[test]
    fn is_valid_cycle_rejects_malformed_witnesses() {
        let g = directed_cycle(4);
        let active = all_active(&g);
        let k = HopConstraint::new(5);
        assert!(is_valid_cycle(&g, &active, &[0, 1, 2, 3], &k));
        // Wrong order: edge 0 -> 2 missing.
        assert!(!is_valid_cycle(&g, &active, &[0, 2, 1, 3], &k));
        // Repeated vertex.
        assert!(!is_valid_cycle(&g, &active, &[0, 1, 0, 1], &k));
        // Too short under the default constraint.
        assert!(!is_valid_cycle(&g, &active, &[0, 1], &k));
        // Too long for k = 3.
        assert!(!is_valid_cycle(
            &g,
            &active,
            &[0, 1, 2, 3],
            &HopConstraint::new(3)
        ));
    }

    #[test]
    fn self_loop_is_never_a_cycle() {
        let mut b = tdb_graph::GraphBuilder::new();
        b.keep_self_loops(true);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let active = ActiveSet::all_active(2);
        assert!(find_cycle_through(&g, &active, 0, &HopConstraint::new(5)).is_none());
    }

    #[test]
    fn reused_engine_leaves_no_state_behind() {
        // A found cycle marks its path in the on-path mask; the next query on
        // the same engine must not see those marks.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let active = all_active(&g);
        let mut engine = NaiveSearcher::new(g.num_vertices());
        let k3 = HopConstraint::new(3);
        let with2 = HopConstraint::with_two_cycles(5);
        for _ in 0..100 {
            let c = engine.find_cycle_through(&g, &active, 0, &k3).unwrap();
            assert_eq!(c, vec![0, 1, 2]);
            assert!(engine.find_cycle_through(&g, &active, 3, &k3).is_none());
            let c2 = engine.find_cycle_through(&g, &active, 3, &with2).unwrap();
            assert_eq!(c2, vec![3, 4]);
        }
    }

    #[test]
    fn undersized_engine_auto_resizes() {
        let g = directed_cycle(10);
        let active = all_active(&g);
        let mut engine = NaiveSearcher::new(2);
        let c = engine
            .find_cycle_through(&g, &active, 0, &HopConstraint::new(10))
            .unwrap();
        assert_eq!(c.len(), 10);
        assert_eq!(engine.capacity(), 10);
    }
}
