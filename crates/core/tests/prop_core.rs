//! Property-based tests for the cover algorithms, at the crate level: validity
//! and minimality against brute-force enumeration, and structural relations
//! between the algorithm families.

use proptest::prelude::*;

use tdb_core::prelude::*;
use tdb_core::verify::verify_by_enumeration;
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_graph::builder::graph_from_edges;
use tdb_graph::{ActiveSet, CsrGraph, Graph};

fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 0..m).prop_map(|edges| graph_from_edges(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The top-down cover is brute-force valid, minimal, and never larger than
    /// the total number of constrained cycles (each kept vertex kills at least
    /// one otherwise-uncovered cycle).
    #[test]
    fn top_down_structural_bounds(g in arb_graph(16, 60), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        let run = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
        prop_assert!(verify_by_enumeration(&g, &run.cover, &constraint, 1_000_000).is_ok());
        prop_assert!(verify_cover(&g, &run.cover, &constraint).is_minimal);
        let active = ActiveSet::all_active(g.num_vertices());
        let total_cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000).len();
        prop_assert!(run.cover_size() <= total_cycles,
            "cover {} larger than cycle count {}", run.cover_size(), total_cycles);
        if total_cycles == 0 {
            prop_assert!(run.cover.is_empty());
        } else {
            prop_assert!(!run.cover.is_empty());
        }
    }

    /// BUR+ equals BUR followed by the stand-alone minimal pruning pass.
    #[test]
    fn bur_plus_is_bur_plus_pruning(g in arb_graph(14, 50), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        let plain = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur());
        let plus = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        let mut manual = plain.cover.clone();
        let mut metrics = RunMetrics::new("manual", k, false);
        minimal_prune(&g, &mut manual, &constraint, SearchEngine::Naive, &mut metrics);
        prop_assert_eq!(&manual, &plus.cover);
        prop_assert!(plus.cover_size() <= plain.cover_size());
    }

    /// The DARC-DV baseline is valid (brute force) even though it is allowed to
    /// be larger than the other covers.
    #[test]
    fn darc_dv_brute_force_valid(g in arb_graph(12, 40), k in 3usize..5) {
        let constraint = HopConstraint::new(k);
        let run = darc_dv_cover(&g, &constraint);
        prop_assert!(verify_by_enumeration(&g, &run.cover, &constraint, 1_000_000).is_ok());
    }

    /// Every vertex the verifier reports as redundant really can be removed on
    /// its own without exposing a cycle.
    #[test]
    fn reported_redundancy_is_real(g in arb_graph(14, 50), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        // Deliberately oversized cover: every vertex with positive degree.
        let oversized: CycleCover = g
            .vertices()
            .filter(|&v| g.out_degree(v) > 0 || g.in_degree(v) > 0)
            .collect();
        for v in tdb_core::minimal::redundant_vertices(&g, &oversized, &constraint) {
            let mut without = oversized.clone();
            without.remove(v);
            prop_assert!(
                verify_by_enumeration(&g, &without, &constraint, 1_000_000).is_ok(),
                "removing {} was reported safe but exposes a cycle", v
            );
        }
    }

    /// The combined 2-cycle + top-down strategy always yields a cover valid for
    /// the 2..=k constraint.
    #[test]
    fn combined_two_cycle_strategy_valid(g in arb_graph(14, 50), k in 3usize..6) {
        let run = combined_cover(&g, k, &TopDownConfig::tdb_plus_plus());
        prop_assert!(verify_by_enumeration(&g, &run.cover, &HopConstraint::with_two_cycles(k), 1_000_000).is_ok());
    }

    /// The parallel candidate mask is exactly the set of vertices lying on some
    /// constrained cycle of the full graph.
    #[test]
    fn parallel_candidates_exact(g in arb_graph(16, 60), k in 3usize..6) {
        let constraint = HopConstraint::new(k);
        let candidates = tdb_core::parallel::parallel_cycle_candidates(&g, &constraint, 3);
        let active = ActiveSet::all_active(g.num_vertices());
        let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
        for v in g.vertices() {
            let on_cycle = cycles.iter().any(|c| c.contains(&v));
            prop_assert_eq!(candidates[v as usize], on_cycle, "vertex {}", v);
        }
    }
}
