//! Property-style tests for the cover algorithms, at the crate level: validity
//! and minimality against brute-force enumeration, and structural relations
//! between the algorithm families.
//!
//! Deterministic random cases driven by the vendored xoshiro256** RNG replace
//! proptest (the workspace builds offline); each case is reproducible from its
//! printed seed.

use tdb_core::prelude::*;
use tdb_core::verify::verify_by_enumeration;
use tdb_cycle::enumerate::enumerate_cycles;
use tdb_graph::builder::graph_from_edges;
use tdb_graph::gen::{random_edge_list, Xoshiro256};
use tdb_graph::{ActiveSet, CsrGraph, Graph};

fn random_graph(rng: &mut Xoshiro256, n: u32, max_edges: usize) -> CsrGraph {
    graph_from_edges(&random_edge_list(rng, n, max_edges))
}

/// The top-down cover is brute-force valid, minimal, and never larger than
/// the total number of constrained cycles (each kept vertex kills at least
/// one otherwise-uncovered cycle).
#[test]
fn top_down_structural_bounds() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(case);
        let g = random_graph(&mut rng, 16, 60);
        let k = 3 + rng.next_index(3);
        let constraint = HopConstraint::new(k);
        let run = Solver::new(Algorithm::TdbPlusPlus)
            .solve(&g, &constraint)
            .unwrap();
        assert!(
            verify_by_enumeration(&g, &run.cover, &constraint, 1_000_000).is_ok(),
            "case {case}"
        );
        assert!(
            verify_cover(&g, &run.cover, &constraint).is_minimal,
            "case {case}"
        );
        let active = ActiveSet::all_active(g.num_vertices());
        let total_cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000).len();
        assert!(
            run.cover_size() <= total_cycles,
            "case {case}: cover {} larger than cycle count {total_cycles}",
            run.cover_size()
        );
        if total_cycles == 0 {
            assert!(run.cover.is_empty(), "case {case}");
        } else {
            assert!(!run.cover.is_empty(), "case {case}");
        }
    }
}

/// BUR+ equals BUR followed by the stand-alone minimal pruning pass.
#[test]
fn bur_plus_is_bur_plus_pruning() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(1000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = 3 + rng.next_index(3);
        let constraint = HopConstraint::new(k);
        let plain = Solver::new(Algorithm::Bur).solve(&g, &constraint).unwrap();
        let plus = Solver::new(Algorithm::BurPlus)
            .solve(&g, &constraint)
            .unwrap();
        let mut manual = plain.cover.clone();
        let mut metrics = RunMetrics::new("manual", k, false);
        minimal_prune(
            &g,
            &mut manual,
            &constraint,
            SearchEngine::Naive,
            &mut metrics,
        );
        assert_eq!(&manual, &plus.cover, "case {case}");
        assert!(plus.cover_size() <= plain.cover_size(), "case {case}");
    }
}

/// The DARC-DV baseline is valid (brute force) even though it is allowed to
/// be larger than the other covers.
#[test]
fn darc_dv_brute_force_valid() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(2000 + case);
        let g = random_graph(&mut rng, 12, 40);
        let k = 3 + rng.next_index(2);
        let constraint = HopConstraint::new(k);
        let run = Solver::new(Algorithm::DarcDv)
            .solve(&g, &constraint)
            .unwrap();
        assert!(
            verify_by_enumeration(&g, &run.cover, &constraint, 1_000_000).is_ok(),
            "case {case}"
        );
    }
}

/// Every vertex the verifier reports as redundant really can be removed on
/// its own without exposing a cycle.
#[test]
fn reported_redundancy_is_real() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(3000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = 3 + rng.next_index(3);
        let constraint = HopConstraint::new(k);
        // Deliberately oversized cover: every vertex with positive degree.
        let oversized: CycleCover = g
            .vertices()
            .filter(|&v| g.out_degree(v) > 0 || g.in_degree(v) > 0)
            .collect();
        for v in tdb_core::minimal::redundant_vertices(&g, &oversized, &constraint) {
            let mut without = oversized.clone();
            without.remove(v);
            assert!(
                verify_by_enumeration(&g, &without, &constraint, 1_000_000).is_ok(),
                "case {case}: removing {v} was reported safe but exposes a cycle"
            );
        }
    }
}

/// The combined 2-cycle + top-down strategy always yields a cover valid for
/// the 2..=k constraint.
#[test]
fn combined_two_cycle_strategy_valid() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(4000 + case);
        let g = random_graph(&mut rng, 14, 50);
        let k = 3 + rng.next_index(3);
        let run = combined_cover(&g, k, &TopDownConfig::tdb_plus_plus());
        assert!(
            verify_by_enumeration(
                &g,
                &run.cover,
                &HopConstraint::with_two_cycles(k),
                1_000_000
            )
            .is_ok(),
            "case {case}"
        );
    }
}

/// The parallel candidate mask is exactly the set of vertices lying on some
/// constrained cycle of the full graph.
#[test]
fn parallel_candidates_exact() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(5000 + case);
        let g = random_graph(&mut rng, 16, 60);
        let k = 3 + rng.next_index(3);
        let constraint = HopConstraint::new(k);
        let candidates = tdb_core::parallel::parallel_cycle_candidates(&g, &constraint, 3);
        let active = ActiveSet::all_active(g.num_vertices());
        let cycles = enumerate_cycles(&g, &active, &constraint, 1_000_000);
        for v in g.vertices() {
            let on_cycle = cycles.iter().any(|c| c.contains(&v));
            assert_eq!(candidates[v as usize], on_cycle, "case {case}: vertex {v}");
        }
    }
}
