//! The DARC baseline (Algorithms 1–3) and its vertex adaptation DARC-DV.
//!
//! DARC (Kuhnle, Crawford, Thai — "Scalable approximations to k-cycle
//! transversal problems on dynamic networks", KAIS 2019) computes a minimal
//! *edge* set intersecting every hop-constrained cycle. It is the
//! state-of-the-art the paper compares against. The algorithm keeps three edge
//! sets:
//!
//! * `S` — the current transversal,
//! * `W` — edges that were in the transversal but proved removable,
//! * `P` — the prune queue of edges that entered `S`.
//!
//! `AUGMENT(e)` repeatedly finds a hop-constrained cycle through `e` that is
//! disjoint from `S` and covers it (preferring to recycle a `W` edge on the
//! cycle, otherwise inserting the whole cycle), and `PRUNE()` then removes every
//! edge whose removal does not re-expose a cycle.
//!
//! The paper's baseline **DARC-DV** converts the *vertex* cover problem to this
//! edge problem through the directed line graph (Section III-B): every edge of
//! `G` becomes a vertex of `L(G)`, every length-2 path of `G` becomes an edge of
//! `L(G)` identified with its middle vertex, DARC runs on `L(G)`, and the
//! selected line-graph edges are mapped back to the middle vertices. The line
//! graph has `Σ_v in(v)·out(v)` edges, which is what makes DARC-DV blow up on
//! hub-heavy graphs — the effect Table III and Figure 6 of the paper quantify.

use std::collections::VecDeque;

use tdb_cycle::enumerate::EdgeDfsSearcher;
use tdb_cycle::HopConstraint;
use tdb_graph::line_graph::LineGraph;
use tdb_graph::{ActiveSet, CsrGraph, Edge, FixedBitSet, Graph};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::solver::{CoverAlgorithm, SolveContext, SolveError};
use crate::stats::Timer;

/// Configuration marker for the DARC-DV baseline.
///
/// DARC-DV has no tunable parameters; this unit-like struct exists so the
/// baseline participates in the [`CoverAlgorithm`] trait like every other
/// family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DarcDvConfig;

impl DarcDvConfig {
    /// The (only) DARC-DV configuration.
    pub fn new() -> Self {
        DarcDvConfig
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        "DARC-DV"
    }
}

impl CoverAlgorithm for DarcDvConfig {
    fn name(&self) -> &'static str {
        DarcDvConfig::name(self)
    }

    fn solve(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        darc_dv_cover_with(g, constraint, ctx)
    }
}

/// Result of the edge-level k-cycle transversal.
#[derive(Debug, Clone)]
pub struct EdgeTransversal {
    /// The selected edges, sorted.
    pub edges: Vec<Edge>,
    /// Number of cycle searches issued.
    pub cycle_queries: u64,
}

/// Run DARC (Algorithms 1–3) on `g`, producing a minimal hop-constrained
/// *edge* cycle transversal.
///
/// Legacy entry point kept for compatibility; prefer
/// [`darc_edge_transversal_with`], which honors a time budget.
pub fn darc_edge_transversal<G: Graph>(g: &G, constraint: &HopConstraint) -> EdgeTransversal {
    let mut ctx = SolveContext::new();
    darc_edge_transversal_with(g, constraint, &mut ctx)
        .expect("unbudgeted DARC transversal cannot fail")
}

/// Dense edge numbering for a [`Graph`]: edge `(u, v)` maps to
/// `offset[u] + rank of v in out_neighbors(u)`, i.e. edges are numbered in
/// lexicographic adjacency order. Lookup is a binary search in `u`'s sorted
/// neighbor slice — O(log deg(u)) and allocation-free, which is what lets the
/// DARC working sets be bitsets over edge ids instead of `HashSet<Edge>`.
struct EdgeIndex {
    offsets: Vec<usize>,
}

impl EdgeIndex {
    fn build<G: Graph>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for u in g.vertices() {
            acc += g.out_degree(u);
            offsets.push(acc);
        }
        EdgeIndex { offsets }
    }

    /// Total number of edges indexed.
    fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Dense id of an edge that is present in `g`.
    #[inline]
    fn id<G: Graph>(&self, g: &G, e: Edge) -> usize {
        let rank = g
            .out_neighbors(e.source)
            .binary_search(&e.target)
            .expect("EdgeIndex::id called with an edge absent from the graph");
        self.offsets[e.source as usize] + rank
    }
}

/// Budget-aware DARC edge transversal: the context's deadline is checked once
/// per augmented edge and once per prune-queue pop.
///
/// The working sets `S` and `W` are bitsets over a dense edge numbering
/// ([`EdgeIndex`]); together with the reusable [`EdgeDfsSearcher`] this makes
/// the whole augment/prune loop allocation-free in steady state.
pub fn darc_edge_transversal_with<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    ctx: &mut SolveContext,
) -> Result<EdgeTransversal, SolveError> {
    darc_edge_transversal_ordered(g, constraint, ctx, None)
}

/// [`darc_edge_transversal_with`] with an optional per-edge cost used to order
/// the PRUNE queue, costliest first.
///
/// The prune loop only ever *pops* — augmentation pushed every transversal
/// edge before pruning starts — so reordering the queue cannot change which
/// edges are examined, only when. Examining expensive edges first drops a
/// costly redundant edge before the cheap edges that would re-justify it are
/// tested, skewing the surviving transversal cheap. `None` (and a stable sort
/// under equal costs) preserves the FIFO order bit-exactly.
pub(crate) fn darc_edge_transversal_ordered<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    ctx: &mut SolveContext,
    edge_cost: Option<&dyn Fn(Edge) -> u64>,
) -> Result<EdgeTransversal, SolveError> {
    ctx.ensure_armed();
    let active = ActiveSet::all_active(g.num_vertices());
    let idx = EdgeIndex::build(g);
    let mut s = FixedBitSet::new(idx.len());
    let mut w = FixedBitSet::new(idx.len());
    let mut p: VecDeque<Edge> = VecDeque::new();
    let mut searcher = EdgeDfsSearcher::new(g.num_vertices());
    let mut cycle_queries = 0u64;

    // Algorithm 1: AUGMENT every edge not already covered.
    for e in g.edges() {
        ctx.checkpoint()?;
        if s.contains(idx.id(g, e)) {
            continue;
        }
        augment(
            g,
            &active,
            constraint,
            e,
            &idx,
            &mut s,
            &mut w,
            &mut p,
            &mut searcher,
            &mut cycle_queries,
        );
    }

    // Algorithm 3: PRUNE, costliest first when a cost function is supplied.
    if let Some(cost) = edge_cost {
        let mut queue: Vec<Edge> = p.drain(..).collect();
        queue.sort_by_key(|&e| std::cmp::Reverse(cost(e)));
        p.extend(queue);
    }
    while let Some(e) = p.pop_front() {
        ctx.checkpoint()?;
        let e_id = idx.id(g, e);
        if !s.contains(e_id) {
            continue;
        }
        cycle_queries += 1;
        let still_needed = searcher
            .find_cycle_through_edge(g, &active, e, constraint, |x| {
                x == e || !s.contains(idx.id(g, x))
            })
            .is_some();
        if !still_needed {
            s.remove(e_id);
            w.insert(e_id);
        }
    }

    // Walk the adjacency in order: ascending edge ids are exactly the sorted
    // lexicographic edge order, so no post-sort is needed.
    let mut edges: Vec<Edge> = Vec::with_capacity(s.count_ones());
    for u in g.vertices() {
        let base = idx.offsets[u as usize];
        for (rank, &v) in g.out_neighbors(u).iter().enumerate() {
            if s.contains(base + rank) {
                edges.push(Edge::new(u, v));
            }
        }
    }
    Ok(EdgeTransversal {
        edges,
        cycle_queries,
    })
}

/// Algorithm 2: cover every not-yet-covered cycle through `e`.
#[allow(clippy::too_many_arguments)]
fn augment<G: Graph>(
    g: &G,
    active: &ActiveSet,
    constraint: &HopConstraint,
    e: Edge,
    idx: &EdgeIndex,
    s: &mut FixedBitSet,
    w: &mut FixedBitSet,
    p: &mut VecDeque<Edge>,
    searcher: &mut EdgeDfsSearcher,
    cycle_queries: &mut u64,
) {
    let e_id = idx.id(g, e);
    if s.contains(e_id) {
        return;
    }
    if w.remove(e_id) {
        s.insert(e_id);
        p.push_back(e);
        return;
    }
    loop {
        *cycle_queries += 1;
        let Some(cycle_edges) = searcher
            .find_cycle_through_edge(g, active, e, constraint, |x| !s.contains(idx.id(g, x)))
        else {
            break;
        };
        if let Some(&w_edge) = cycle_edges.iter().find(|&&x| w.contains(idx.id(g, x))) {
            // Recycle an edge that used to be in the transversal (lines 12–13).
            let w_id = idx.id(g, w_edge);
            w.remove(w_id);
            s.insert(w_id);
            p.push_back(w_edge);
        } else {
            // Cover the whole cycle (lines 10–11).
            for ce in cycle_edges {
                if s.insert(idx.id(g, ce)) {
                    p.push_back(ce);
                }
            }
        }
    }
}

/// Budget-aware DARC-DV cover computation.
///
/// When the context carries a non-uniform [`CostModel`](tdb_graph::CostModel),
/// the line-graph prune queue is ordered by the cost of each line-graph edge's
/// *middle vertex* (the vertex the edge maps back to), costliest first — the
/// DARC analogue of weight-aware minimization.
pub fn darc_dv_cover_with(
    g: &CsrGraph,
    constraint: &HopConstraint,
    ctx: &mut SolveContext,
) -> Result<CoverRun, SolveError> {
    ctx.ensure_armed();
    let timer = Timer::start();
    let mut metrics = RunMetrics::new(
        "DARC-DV",
        constraint.max_hops,
        constraint.include_two_cycles,
    );

    let lg = LineGraph::build(g);
    metrics.working_edges = lg.graph().num_edges();

    let costs = ctx.vertex_costs().clone();
    let transversal = if costs.is_uniform() {
        darc_edge_transversal_with(lg.graph(), constraint, ctx)?
    } else {
        let middle_cost = |e: Edge| costs.cost(lg.middle_vertex(e));
        darc_edge_transversal_ordered(lg.graph(), constraint, ctx, Some(&middle_cost))?
    };
    metrics.cycle_queries = transversal.cycle_queries;

    let vertices = lg.middle_vertices(&transversal.edges);
    metrics.elapsed = timer.elapsed();
    ctx.accumulate(&metrics);
    Ok(CoverRun {
        cover: CycleCover::from_vertices(vertices),
        metrics,
    })
}

/// Extension: a direct vertex-level analogue of DARC that skips the line-graph
/// blow-up (augment with whole cycles of *vertices*, then prune). Not part of
/// the paper; included to separate how much of DARC-DV's cost is the line graph
/// versus the augment/prune paradigm itself.
pub fn darc_vertex_direct<G: Graph>(g: &G, constraint: &HopConstraint) -> CoverRun {
    use tdb_cycle::NaiveSearcher;

    let timer = Timer::start();
    let mut metrics = RunMetrics::new("DARC-V", constraint.max_hops, constraint.include_two_cycles);
    metrics.working_edges = g.num_edges();

    let n = g.num_vertices();
    let mut active = ActiveSet::all_active(n);
    let mut searcher = NaiveSearcher::new(n);
    let mut prune_queue: VecDeque<tdb_graph::VertexId> = VecDeque::new();

    // Augment: scan vertices; whenever an uncovered cycle through the vertex
    // exists, move the whole cycle into the cover.
    for v in 0..n as tdb_graph::VertexId {
        if !active.is_active(v) {
            continue;
        }
        loop {
            metrics.cycle_queries += 1;
            let Some(cycle) = searcher.find_cycle_through(g, &active, v, constraint) else {
                break;
            };
            for &c in &cycle {
                if active.deactivate(c) {
                    prune_queue.push_back(c);
                }
            }
        }
    }

    // Prune: re-admit vertices whose removal from the cover is safe.
    while let Some(v) = prune_queue.pop_front() {
        active.activate(v);
        metrics.cycle_queries += 1;
        if searcher
            .find_cycle_through(g, &active, v, constraint)
            .is_some()
        {
            active.deactivate(v);
        }
    }

    let cover: Vec<tdb_graph::VertexId> = active.iter_inactive().collect();
    metrics.elapsed = timer.elapsed();
    CoverRun {
        cover: CycleCover::from_vertices(cover),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_valid_cover, verify_cover};
    use std::collections::HashSet;
    use tdb_cycle::enumerate::find_cycle_through_edge;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, erdos_renyi_gnm, layered_dag};

    fn darc_dv_cover(g: &CsrGraph, constraint: &HopConstraint) -> CoverRun {
        darc_dv_cover_with(g, constraint, &mut SolveContext::new())
            .expect("unbudgeted solve cannot fail")
    }

    #[test]
    fn edge_transversal_covers_a_triangle_with_one_edge() {
        let g = directed_cycle(3);
        let t = darc_edge_transversal(&g, &HopConstraint::new(3));
        assert_eq!(t.edges.len(), 1);
    }

    #[test]
    fn edge_transversal_ignores_cycles_longer_than_k() {
        let g = directed_cycle(6);
        let t = darc_edge_transversal(&g, &HopConstraint::new(5));
        assert!(t.edges.is_empty());
        let t = darc_edge_transversal(&g, &HopConstraint::new(6));
        assert_eq!(t.edges.len(), 1);
    }

    #[test]
    fn edge_transversal_is_minimal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(25, 90, seed);
            let constraint = HopConstraint::new(4);
            let t = darc_edge_transversal(&g, &constraint);
            let active = ActiveSet::all_active(g.num_vertices());
            let s: HashSet<Edge> = t.edges.iter().copied().collect();
            // Valid: no constrained cycle avoids S.
            for e in g.edges() {
                if !s.contains(&e) {
                    assert!(
                        find_cycle_through_edge(&g, &active, e, &constraint, |x| !s.contains(&x))
                            .is_none(),
                        "uncovered cycle through {e:?} (seed {seed})"
                    );
                }
            }
            // Minimal: every selected edge has a witness cycle of its own.
            for &e in &t.edges {
                assert!(
                    find_cycle_through_edge(&g, &active, e, &constraint, |x| x == e
                        || !s.contains(&x))
                    .is_some(),
                    "redundant edge {e:?} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn darc_dv_covers_simple_graphs() {
        let g = directed_cycle(4);
        let constraint = HopConstraint::new(4);
        let run = darc_dv_cover(&g, &constraint);
        assert_eq!(run.cover_size(), 1);
        assert!(is_valid_cover(&g, &run.cover, &constraint));
        assert_eq!(run.metrics.algorithm, "DARC-DV");
    }

    #[test]
    fn darc_dv_empty_on_acyclic_graphs() {
        let g = layered_dag(4, 3);
        let run = darc_dv_cover(&g, &HopConstraint::new(5));
        assert!(run.cover.is_empty());
    }

    #[test]
    fn darc_dv_is_valid_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi_gnm(30, 120, seed + 3);
            for k in [3usize, 4] {
                let constraint = HopConstraint::new(k);
                let run = darc_dv_cover(&g, &constraint);
                assert!(
                    is_valid_cover(&g, &run.cover, &constraint),
                    "seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn darc_dv_handles_two_cycle_mode() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2), (2, 0)]);
        let without = darc_dv_cover(&g, &HopConstraint::new(4));
        let with = darc_dv_cover(&g, &HopConstraint::with_two_cycles(4));
        assert!(is_valid_cover(&g, &without.cover, &HopConstraint::new(4)));
        assert!(is_valid_cover(
            &g,
            &with.cover,
            &HopConstraint::with_two_cycles(4)
        ));
        assert!(with.cover_size() >= without.cover_size());
    }

    #[test]
    fn darc_dv_line_graph_size_is_recorded() {
        let g = complete_digraph(5);
        let run = darc_dv_cover(&g, &HopConstraint::new(3));
        let expected: usize = g.vertices().map(|v| g.in_degree(v) * g.out_degree(v)).sum();
        assert_eq!(run.metrics.working_edges, expected);
        assert!(is_valid_cover(&g, &run.cover, &HopConstraint::new(3)));
    }

    #[test]
    fn direct_vertex_variant_is_valid_and_minimal() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(30, 130, seed + 40);
            let constraint = HopConstraint::new(4);
            let run = darc_vertex_direct(&g, &constraint);
            let v = verify_cover(&g, &run.cover, &constraint);
            assert!(v.is_valid, "seed {seed}");
            assert!(v.is_minimal, "seed {seed}: {:?}", v.redundant);
        }
    }

    #[test]
    fn darc_dv_cover_size_is_at_least_top_down_quality_band() {
        // Table III / Figure 7: DARC-DV returns the worst (largest) covers of
        // the three compared algorithms. We check the weaker, robust property
        // that it is never *smaller* than half the TDB++ cover (it is a valid
        // cover, so it cannot be arbitrarily small either).
        use crate::top_down::{top_down_cover_with, TopDownConfig};
        for seed in 0..3u64 {
            let g = erdos_renyi_gnm(35, 150, seed + 11);
            let constraint = HopConstraint::new(4);
            let dv = darc_dv_cover(&g, &constraint);
            let td = top_down_cover_with(
                &g,
                &constraint,
                &TopDownConfig::tdb_plus_plus(),
                &mut SolveContext::new(),
            )
            .unwrap();
            assert!(
                2 * dv.cover_size() + 1 >= td.cover_size(),
                "seed {seed}: DARC-DV {} vs TDB++ {}",
                dv.cover_size(),
                td.cover_size()
            );
        }
    }
}
