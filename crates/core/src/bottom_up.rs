//! The bottom-up cover algorithm (`BUR`, Algorithms 4–6 of Section V).
//!
//! The bottom-up approach starts from the empty cover and grows it: for every
//! vertex `v_i` of the graph it repeatedly searches for a hop-constrained cycle
//! starting at `v_i` in the current reduced graph, bumps a hit counter `H` for
//! every vertex on the found cycle, inserts the vertex with the highest hit
//! count into the cover, and removes that vertex's edges (here: deactivates the
//! vertex). The hit-count heuristic (Algorithm 6, `FindCoverNode`) prefers hub
//! vertices that have appeared on many cycles, which keeps the resulting cover
//! small — the paper shows `BUR+` produces the smallest covers of all evaluated
//! algorithms, at the cost of `O(n^{k+1})` worst-case time because the inner
//! search (`FindCycle`, Algorithm 5) is an exhaustive bounded DFS.
//!
//! `BUR+` is `BUR` followed by the minimal-pruning pass of Algorithm 7
//! ([`crate::minimal`]).

use tdb_cycle::HopConstraint;
use tdb_graph::{Graph, VertexId};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::minimal::{minimal_prune_with, SearchEngine};
use crate::solver::{CoverAlgorithm, SolveContext, SolveError, SolveScratch};
use crate::stats::Timer;

/// Configuration of the bottom-up algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BottomUpConfig {
    /// Run the minimal-pruning pass of Algorithm 7 afterwards (`BUR+`).
    pub minimal: bool,
    /// Which search engine the minimal pass uses. The paper's BUR+ uses the
    /// naive `FindCycle`; the block engine is offered as an ablation.
    pub minimal_engine: SearchEngine,
}

impl Default for BottomUpConfig {
    fn default() -> Self {
        BottomUpConfig {
            minimal: true,
            minimal_engine: SearchEngine::Naive,
        }
    }
}

impl BottomUpConfig {
    /// Plain `BUR` (no minimal pruning).
    pub fn bur() -> Self {
        BottomUpConfig {
            minimal: false,
            minimal_engine: SearchEngine::Naive,
        }
    }

    /// `BUR+` (with the Algorithm-7 minimal pruning pass).
    pub fn bur_plus() -> Self {
        BottomUpConfig::default()
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        if self.minimal {
            "BUR+"
        } else {
            "BUR"
        }
    }
}

/// Budget- and progress-aware bottom-up cover computation.
///
/// The exhaustive inner search makes this the family that needs a budget most:
/// the context's deadline is checked before every cycle query, including the
/// ones issued by the minimal-pruning pass.
pub fn bottom_up_cover_with<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    config: &BottomUpConfig,
    ctx: &mut SolveContext,
) -> Result<CoverRun, SolveError> {
    ctx.ensure_armed();
    let timer = Timer::start();
    let n = g.num_vertices();
    let mut metrics = RunMetrics::new(
        config.name(),
        constraint.max_hops,
        constraint.include_two_cycles,
    );
    metrics.working_edges = g.num_edges();

    let mut scratch = ctx.take_scratch();
    let grown = bottom_up_grow(g, constraint, ctx, &mut metrics, &mut scratch);
    ctx.restore_scratch(scratch);

    let mut cover = CycleCover::from_vertices(grown?);

    if config.minimal {
        let removed = minimal_prune_with(
            g,
            &mut cover,
            constraint,
            config.minimal_engine,
            &mut metrics,
            ctx,
        )?;
        metrics.minimal_pruned = removed as u64;
    }

    metrics.elapsed = timer.elapsed();
    ctx.report_progress(n as u64, n as u64, cover.len() as u64);
    ctx.accumulate(&metrics);
    Ok(CoverRun { cover, metrics })
}

/// The growth phase of Algorithm 4, factored out so the entry point can hand
/// the borrowed scratch back to the context on every exit path.
fn bottom_up_grow<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    ctx: &mut SolveContext,
    metrics: &mut RunMetrics,
    scratch: &mut SolveScratch,
) -> Result<Vec<VertexId>, SolveError> {
    let n = g.num_vertices();
    // H[v]: how many discovered cycles vertex v appeared on so far (Algorithm 4
    // line 2). The counter persists across start vertices, which is what makes
    // the heuristic favour globally popular vertices.
    scratch.reset_hit_count(n);
    scratch.reset_active(n, true);
    let mut cover_vertices: Vec<VertexId> = Vec::new();
    let costs = ctx.vertex_costs().clone();

    for start in 0..n as VertexId {
        ctx.report_progress(start as u64, n as u64, cover_vertices.len() as u64);
        loop {
            ctx.checkpoint()?;
            metrics.cycle_queries += 1;
            let Some(cycle) =
                scratch
                    .naive
                    .find_cycle_through(g, &scratch.active, start, constraint)
            else {
                break;
            };
            // Update hit counts for every vertex on the cycle (lines 6–7).
            for &v in &cycle {
                scratch.hit_count[v as usize] += 1;
            }
            // FindCoverNode (Algorithm 6): the cycle vertex with the highest
            // hit count; ties resolved towards the earliest position on the
            // cycle, matching the pseudocode's strict `>` comparison. Under a
            // non-uniform cost model the criterion becomes hits *per unit
            // cost*, compared exactly via u128 cross-multiplication — with
            // equal costs the comparison reduces to the original strict `>`,
            // so the unweighted pick is preserved bit-exactly.
            let mut cover_vertex = cycle[0];
            let mut best_hits = scratch.hit_count[cover_vertex as usize];
            let mut best_cost = costs.cost(cover_vertex);
            for &v in &cycle[1..] {
                let hits = scratch.hit_count[v as usize];
                let cost = costs.cost(v);
                if (hits as u128) * (best_cost as u128) > (best_hits as u128) * (cost as u128) {
                    best_hits = hits;
                    best_cost = cost;
                    cover_vertex = v;
                }
            }
            cover_vertices.push(cover_vertex);
            scratch.active.deactivate(cover_vertex);
        }
    }
    Ok(cover_vertices)
}

impl CoverAlgorithm for BottomUpConfig {
    fn name(&self) -> &'static str {
        BottomUpConfig::name(self)
    }

    fn solve(
        &self,
        g: &tdb_graph::CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        bottom_up_cover_with(g, constraint, self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, erdos_renyi_gnm, layered_dag};

    fn bottom_up_cover<G: Graph>(
        g: &G,
        constraint: &HopConstraint,
        config: &BottomUpConfig,
    ) -> CoverRun {
        bottom_up_cover_with(g, constraint, config, &mut SolveContext::new())
            .expect("unbudgeted solve cannot fail")
    }

    fn check_valid(g: &impl Graph, run: &CoverRun, constraint: &HopConstraint) {
        let v = verify_cover(g, &run.cover, constraint);
        assert!(v.is_valid, "cover invalid, witness: {:?}", v.witness);
    }

    #[test]
    fn single_cycle_needs_one_vertex() {
        let g = directed_cycle(5);
        let constraint = HopConstraint::new(5);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        assert_eq!(run.cover_size(), 1);
        check_valid(&g, &run, &constraint);
    }

    #[test]
    fn cycle_longer_than_k_needs_no_cover() {
        let g = directed_cycle(8);
        let constraint = HopConstraint::new(5);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        assert_eq!(run.cover_size(), 0);
    }

    #[test]
    fn acyclic_graph_has_empty_cover() {
        let g = layered_dag(4, 3);
        let run = bottom_up_cover(&g, &HopConstraint::new(6), &BottomUpConfig::bur_plus());
        assert!(run.cover.is_empty());
    }

    #[test]
    fn complete_graph_cover_is_valid_and_minimal_shape() {
        let g = complete_digraph(6);
        let constraint = HopConstraint::new(4);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        check_valid(&g, &run, &constraint);
        // Removing all triangles from K6 needs at least n - 2 = 4 vertices.
        assert!(run.cover_size() >= 4, "size {}", run.cover_size());
        let v = verify_cover(&g, &run.cover, &constraint);
        assert!(v.is_minimal, "redundant vertices: {:?}", v.redundant);
    }

    #[test]
    fn bur_plus_never_larger_than_bur() {
        for seed in 0..5u64 {
            let g = erdos_renyi_gnm(40, 160, seed);
            let constraint = HopConstraint::new(4);
            let plain = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur());
            let plus = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
            assert!(plus.cover_size() <= plain.cover_size());
            check_valid(&g, &plain, &constraint);
            check_valid(&g, &plus, &constraint);
        }
    }

    #[test]
    fn bur_plus_is_minimal_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi_gnm(35, 140, seed + 50);
            let constraint = HopConstraint::new(4);
            let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
            let v = verify_cover(&g, &run.cover, &constraint);
            assert!(v.is_valid);
            assert!(v.is_minimal, "redundant: {:?}", v.redundant);
        }
    }

    #[test]
    fn two_cycle_mode_covers_bidirectional_pairs() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let constraint = HopConstraint::with_two_cycles(5);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        assert_eq!(run.cover_size(), 2);
        check_valid(&g, &run, &constraint);
        // Default mode ignores the 2-cycles entirely.
        let run = bottom_up_cover(&g, &HopConstraint::new(5), &BottomUpConfig::bur_plus());
        assert_eq!(run.cover_size(), 0);
    }

    #[test]
    fn hub_vertex_is_preferred_by_hit_counts() {
        // Three triangles all sharing vertex 0 (the motivation example of
        // Figure 3): the heuristic should cover everything with vertex 0 after
        // pruning.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 0),
        ]);
        let constraint = HopConstraint::new(3);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        assert_eq!(run.cover_size(), 1);
        assert!(run.cover.contains(0));
    }

    #[test]
    fn metrics_are_populated() {
        let g = directed_cycle(4);
        let constraint = HopConstraint::new(4);
        let run = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
        assert_eq!(run.metrics.algorithm, "BUR+");
        assert_eq!(run.metrics.k, 4);
        assert!(run.metrics.cycle_queries >= 4);
        assert!(run.metrics.elapsed > std::time::Duration::ZERO);
    }
}
