//! The top-down cover family — `TDB`, `TDB+`, `TDB++` (Section VI, Algorithm 8)
//! plus the extensions evaluated in the ablation benches.
//!
//! The top-down process is the opposite of the bottom-up one: it starts from
//! the *full* cover (every vertex) and an empty working graph `G0`, then scans
//! the vertices once. For each vertex `v` it tentatively re-inserts `v`'s edges
//! into `G0` and asks whether that creates a hop-constrained cycle through `v`:
//!
//! * if **no**, `v` is not needed — it is released from the cover and its edges
//!   stay in `G0`;
//! * if **yes**, `v` stays in the cover and its edges are removed again.
//!
//! `G0` is therefore always the subgraph induced by the released vertices (plus
//! the vertex currently under test), which this implementation represents with
//! an [`ActiveSet`] instead of a materialized graph — activating a vertex *is*
//! inserting its in- and out-edges.
//!
//! The three paper variants differ only in how the per-vertex question is
//! answered:
//!
//! * **TDB** — the naive bounded DFS (Algorithm 5),
//! * **TDB+** — the `O(k·m)` block/barrier DFS (Algorithms 9–10),
//! * **TDB++** — TDB+ preceded by the linear BFS filter (Algorithm 11).
//!
//! Correctness and minimality of the result follow the argument of Theorem 7:
//! when the scan finishes, any remaining cycle would have had all of its
//! vertices released, but then its last-scanned vertex would have seen the
//! cycle and been kept; and every kept vertex has a witness cycle whose other
//! vertices are all released, so it cannot be dropped either.

use tdb_cycle::bfs_filter::FilterDecision;
use tdb_cycle::HopConstraint;
use tdb_graph::scc::tarjan_scc;
use tdb_graph::{Graph, VertexId};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::minimal::SearchEngine;
use crate::solver::{CoverAlgorithm, SolveContext, SolveError, SolveScratch};
use crate::stats::Timer;

/// Order in which the top-down scan processes vertices.
///
/// The paper scans in ascending vertex id; the alternatives quantify how much
/// the cover size depends on that choice (ablation `ablation_order`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanOrder {
    /// Ascending vertex id (the paper's order).
    #[default]
    Ascending,
    /// Descending total degree (hubs first — hubs tend to be kept, covering
    /// many cycles early).
    DegreeDescending,
    /// Ascending total degree (leaves first).
    DegreeAscending,
    /// Deterministic pseudo-random permutation with the given seed.
    Random(u64),
}

/// Configuration of the top-down algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopDownConfig {
    /// Engine answering the per-vertex cycle-existence question.
    pub engine: SearchEngine,
    /// Run the BFS filter (Algorithm 11) before the DFS.
    pub bfs_filter: bool,
    /// Extension: let the BFS filter also *prove* vertices necessary (skip the
    /// DFS when the shortest closed walk is an admissible cycle).
    pub exact_filter: bool,
    /// Extension: release all vertices outside non-trivial strongly connected
    /// components up front, without any per-vertex search.
    pub scc_prefilter: bool,
    /// Vertex scan order.
    pub scan_order: ScanOrder,
}

impl Default for TopDownConfig {
    fn default() -> Self {
        TopDownConfig::tdb_plus_plus()
    }
}

impl TopDownConfig {
    /// Plain `TDB`: naive DFS, no filters.
    pub fn tdb() -> Self {
        TopDownConfig {
            engine: SearchEngine::Naive,
            bfs_filter: false,
            exact_filter: false,
            scc_prefilter: false,
            scan_order: ScanOrder::Ascending,
        }
    }

    /// `TDB+`: block DFS, no BFS filter.
    pub fn tdb_plus() -> Self {
        TopDownConfig {
            engine: SearchEngine::Block,
            ..TopDownConfig::tdb()
        }
    }

    /// `TDB++`: block DFS preceded by the BFS filter — the paper's flagship
    /// configuration.
    pub fn tdb_plus_plus() -> Self {
        TopDownConfig {
            engine: SearchEngine::Block,
            bfs_filter: true,
            ..TopDownConfig::tdb()
        }
    }

    /// Extension: `TDB++` with the exact-filter shortcut and SCC pre-filter.
    pub fn extended() -> Self {
        TopDownConfig {
            engine: SearchEngine::Block,
            bfs_filter: true,
            exact_filter: true,
            scc_prefilter: true,
            scan_order: ScanOrder::Ascending,
        }
    }

    /// Set the scan order (builder style).
    pub fn with_scan_order(mut self, order: ScanOrder) -> Self {
        self.scan_order = order;
        self
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match (
            self.engine,
            self.bfs_filter,
            self.exact_filter || self.scc_prefilter,
        ) {
            (SearchEngine::Naive, false, false) => "TDB",
            (SearchEngine::Block, false, false) => "TDB+",
            (SearchEngine::Block, true, false) => "TDB++",
            (SearchEngine::Block, true, true) => "TDB++X",
            _ => "TDB*",
        }
    }
}

/// Compute the scan order as an explicit permutation of the vertex ids, into a
/// reusable buffer. Shared with the parallel variant so both scans order
/// vertices identically.
pub(crate) fn scan_permutation_into<G: Graph>(
    g: &G,
    order: ScanOrder,
    vertices: &mut Vec<VertexId>,
) {
    let n = g.num_vertices();
    vertices.clear();
    vertices.extend(0..n as VertexId);
    match order {
        ScanOrder::Ascending => {}
        ScanOrder::DegreeDescending => {
            vertices.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
        }
        ScanOrder::DegreeAscending => {
            vertices.sort_by_key(|&v| g.out_degree(v) + g.in_degree(v));
        }
        ScanOrder::Random(seed) => {
            let mut rng = tdb_graph::gen::Xoshiro256::seed_from_u64(seed);
            rng.shuffle(vertices);
        }
    }
}

/// Refine a scan permutation for a weight-aware solve: stable-sort so that
/// costlier vertices are scanned *first*. Early-scanned vertices face a sparse
/// `G0` and tend to be released; late-scanned ones face the dense end of the
/// scan and tend to be kept — so scanning expensive vertices early biases the
/// kept (cover) positions toward cheap vertices without changing any
/// keep/release decision's correctness (the scan is correct under any
/// permutation). The sort is stable and keyed on cost alone, so under equal
/// weights it is the identity and the unweighted scan order is preserved
/// bit-exactly.
pub(crate) fn order_costly_first(costs: &tdb_graph::CostModel, vertices: &mut [VertexId]) {
    if costs.is_uniform() {
        return;
    }
    vertices.sort_by_key(|&v| std::cmp::Reverse(costs.cost(v)));
}

/// Budget- and progress-aware top-down cover computation.
///
/// Checks `ctx`'s deadline once per scanned vertex and reports progress as the
/// scan advances; the completed run's metrics are folded into `ctx`'s totals.
pub fn top_down_cover_with<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    config: &TopDownConfig,
    ctx: &mut SolveContext,
) -> Result<CoverRun, SolveError> {
    let mut scratch = ctx.take_scratch();
    let result = top_down_scan(g, constraint, config, ctx, &mut scratch);
    ctx.restore_scratch(scratch);
    result
}

/// The scan itself, factored out so the entry point can hand the borrowed
/// scratch back to the context on *every* exit path (including a budget
/// overrun surfacing through `?`).
fn top_down_scan<G: Graph>(
    g: &G,
    constraint: &HopConstraint,
    config: &TopDownConfig,
    ctx: &mut SolveContext,
    scratch: &mut SolveScratch,
) -> Result<CoverRun, SolveError> {
    ctx.ensure_armed();
    let _solve_span = tdb_obs::trace::span_owned(format!("solve/{}", config.name()));
    let timer = Timer::start();
    let n = g.num_vertices();
    let mut metrics = RunMetrics::new(
        config.name(),
        constraint.max_hops,
        constraint.include_two_cycles,
    );
    metrics.working_edges = g.num_edges();

    // G0 starts empty: nothing is active, everything is (conceptually) covered.
    scratch.reset_active(n, false);
    let mut cover_vertices: Vec<VertexId> = Vec::new();

    // Optional SCC pre-filter: a vertex in a trivial SCC (and, when 2-cycles
    // matter, without any reciprocated edge) can never lie on a constrained
    // cycle of the full graph, let alone of a subgraph — release it for free.
    scratch.reset_prereleased(n);
    if config.scc_prefilter {
        let _span = tdb_obs::trace::span("solve/scc_prefilter");
        let _timer = tdb_obs::histogram!("tdb_solve_scc_prefilter_seconds").start();
        let scc = tarjan_scc(g);
        let candidates = scc.cycle_candidates();
        for v in 0..n as VertexId {
            if !candidates[v as usize] {
                scratch.prereleased.insert(v as usize);
                scratch.active.activate(v);
                metrics.scc_released += 1;
            }
        }
    }

    scan_permutation_into(g, config.scan_order, &mut scratch.order);
    order_costly_first(ctx.vertex_costs(), &mut scratch.order);
    let total = scratch.order.len() as u64;
    let _scan_span = tdb_obs::trace::span("solve/scan");
    let _scan_timer = tdb_obs::histogram!("tdb_solve_scan_seconds").start();
    for scanned in 0..scratch.order.len() {
        let v = scratch.order[scanned];
        ctx.checkpoint()?;
        ctx.report_progress(scanned as u64, total, cover_vertices.len() as u64);
        if scratch.prereleased.contains(v as usize) {
            continue;
        }
        // Tentatively insert v's in- and out-edges into G0 (Algorithm 8 line 3).
        scratch.active.activate(v);

        if config.bfs_filter {
            let decision = {
                // Sampled 1-in-64: a per-decision timer costs two clock reads
                // per scanned vertex, which alone would blow the documented
                // 2% overhead budget on millisecond-scale solves. Sampling
                // preserves the latency distribution at 1/64th the cost.
                let _timer = if scanned & 0x3F == 0 {
                    tdb_obs::histogram!("tdb_solve_bfs_filter_seconds").start()
                } else {
                    None
                };
                if config.exact_filter {
                    scratch
                        .filter
                        .decide_exact(g, &scratch.active, v, constraint)
                } else {
                    scratch.filter.decide(g, &scratch.active, v, constraint)
                }
            };
            match decision {
                FilterDecision::Prune => {
                    // No constrained cycle can pass through v: release it.
                    metrics.filter_released += 1;
                    continue;
                }
                FilterDecision::ProvenNecessary(_) => {
                    cover_vertices.push(v);
                    scratch.active.deactivate(v);
                    continue;
                }
                FilterDecision::NeedsVerification => {}
            }
        }

        metrics.cycle_queries += 1;
        let necessary = match config.engine {
            SearchEngine::Block => {
                scratch
                    .block
                    .is_on_constrained_cycle(g, &scratch.active, v, constraint)
            }
            SearchEngine::Naive => scratch
                .naive
                .find_cycle_through(g, &scratch.active, v, constraint)
                .is_some(),
        };
        if necessary {
            // Keep v in the cover and take its edges back out of G0.
            cover_vertices.push(v);
            scratch.active.deactivate(v);
        }
        // Otherwise v stays active: released from the cover.
    }

    drop(_scan_timer);
    drop(_scan_span);
    metrics.elapsed = timer.elapsed();
    ctx.report_progress(total, total, cover_vertices.len() as u64);
    ctx.accumulate(&metrics);
    Ok(CoverRun {
        cover: CycleCover::from_vertices(cover_vertices),
        metrics,
    })
}

impl CoverAlgorithm for TopDownConfig {
    fn name(&self) -> &'static str {
        TopDownConfig::name(self)
    }

    fn solve(
        &self,
        g: &tdb_graph::CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        top_down_cover_with(g, constraint, self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::{bottom_up_cover_with, BottomUpConfig};
    use crate::verify::verify_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{
        complete_digraph, directed_cycle, erdos_renyi_gnm, layered_dag, preferential_attachment,
        small_world, PreferentialConfig,
    };

    fn top_down_cover<G: Graph>(
        g: &G,
        constraint: &HopConstraint,
        config: &TopDownConfig,
    ) -> CoverRun {
        top_down_cover_with(g, constraint, config, &mut SolveContext::new())
            .expect("unbudgeted solve cannot fail")
    }

    fn bottom_up_cover<G: Graph>(
        g: &G,
        constraint: &HopConstraint,
        config: &BottomUpConfig,
    ) -> CoverRun {
        bottom_up_cover_with(g, constraint, config, &mut SolveContext::new())
            .expect("unbudgeted solve cannot fail")
    }

    fn all_variants() -> Vec<TopDownConfig> {
        vec![
            TopDownConfig::tdb(),
            TopDownConfig::tdb_plus(),
            TopDownConfig::tdb_plus_plus(),
            TopDownConfig::extended(),
        ]
    }

    fn assert_valid_and_minimal(g: &impl Graph, run: &CoverRun, constraint: &HopConstraint) {
        let v = verify_cover(g, &run.cover, constraint);
        assert!(
            v.is_valid,
            "{} produced an invalid cover, witness {:?}",
            run.metrics.algorithm, v.witness
        );
        assert!(
            v.is_minimal,
            "{} produced a non-minimal cover, redundant {:?}",
            run.metrics.algorithm, v.redundant
        );
    }

    #[test]
    fn single_cycle_covered_by_one_vertex() {
        let g = directed_cycle(5);
        let constraint = HopConstraint::new(5);
        for config in all_variants() {
            let run = top_down_cover(&g, &constraint, &config);
            assert_eq!(run.cover_size(), 1, "{}", config.name());
            assert_valid_and_minimal(&g, &run, &constraint);
        }
    }

    #[test]
    fn long_cycle_outside_constraint_needs_nothing() {
        let g = directed_cycle(9);
        let constraint = HopConstraint::new(5);
        for config in all_variants() {
            let run = top_down_cover(&g, &constraint, &config);
            assert_eq!(run.cover_size(), 0, "{}", config.name());
        }
    }

    #[test]
    fn acyclic_graphs_need_nothing() {
        let g = layered_dag(5, 4);
        let constraint = HopConstraint::new(7);
        for config in all_variants() {
            let run = top_down_cover(&g, &constraint, &config);
            assert!(run.cover.is_empty(), "{}", config.name());
        }
    }

    #[test]
    fn all_variants_produce_identical_covers() {
        // The paper notes (Section VII-B) that TDB, TDB+ and TDB++ return the
        // same result set — the filters only skip work, never change decisions.
        for seed in 0..6u64 {
            let g = erdos_renyi_gnm(50, 220, seed);
            let constraint = HopConstraint::new(4);
            let reference = top_down_cover(&g, &constraint, &TopDownConfig::tdb());
            for config in [
                TopDownConfig::tdb_plus(),
                TopDownConfig::tdb_plus_plus(),
                TopDownConfig::extended(),
            ] {
                let run = top_down_cover(&g, &constraint, &config);
                assert_eq!(
                    run.cover,
                    reference.cover,
                    "{} differs from TDB on seed {seed}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn covers_are_valid_and_minimal_on_random_graphs() {
        for seed in 0..6u64 {
            let g = erdos_renyi_gnm(45, 200, seed + 30);
            for k in [3usize, 4, 5] {
                let constraint = HopConstraint::new(k);
                let run = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
                assert_valid_and_minimal(&g, &run, &constraint);
            }
        }
    }

    #[test]
    fn covers_are_valid_on_scale_free_and_small_world_graphs() {
        let pa = preferential_attachment(&PreferentialConfig {
            num_vertices: 150,
            out_degree: 3,
            reciprocity: 0.25,
            random_rewire: 0.1,
            seed: 7,
        });
        let sw = small_world(120, 2, 0.2, 9);
        for g in [pa, sw] {
            for constraint in [HopConstraint::new(4), HopConstraint::with_two_cycles(4)] {
                let run = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
                assert_valid_and_minimal(&g, &run, &constraint);
            }
        }
    }

    #[test]
    fn two_cycle_mode_grows_the_cover() {
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 200,
            out_degree: 3,
            reciprocity: 0.5,
            random_rewire: 0.1,
            seed: 11,
        });
        let without = top_down_cover(&g, &HopConstraint::new(5), &TopDownConfig::tdb_plus_plus());
        let with = top_down_cover(
            &g,
            &HopConstraint::with_two_cycles(5),
            &TopDownConfig::tdb_plus_plus(),
        );
        assert!(
            with.cover_size() > without.cover_size(),
            "with 2-cycles {} <= without {}",
            with.cover_size(),
            without.cover_size()
        );
        assert_valid_and_minimal(&g, &with, &HopConstraint::with_two_cycles(5));
    }

    #[test]
    fn top_down_size_is_comparable_to_bottom_up() {
        // Table III: TDB++ covers are within a few percent of BUR+ covers. On
        // small random graphs we allow a generous 35% band to keep the test
        // robust while still catching gross regressions.
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(60, 300, seed + 70);
            let constraint = HopConstraint::new(4);
            let td = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
            let bu = bottom_up_cover(&g, &constraint, &BottomUpConfig::bur_plus());
            let td_size = td.cover_size() as f64;
            let bu_size = bu.cover_size() as f64;
            if bu_size > 0.0 {
                assert!(
                    td_size <= bu_size * 1.35 + 2.0,
                    "seed {seed}: TDB++ {td_size} much larger than BUR+ {bu_size}"
                );
            }
        }
    }

    #[test]
    fn scan_order_changes_are_still_valid_and_minimal() {
        let g = complete_digraph(7);
        let constraint = HopConstraint::new(4);
        for order in [
            ScanOrder::Ascending,
            ScanOrder::DegreeDescending,
            ScanOrder::DegreeAscending,
            ScanOrder::Random(3),
        ] {
            let config = TopDownConfig::tdb_plus_plus().with_scan_order(order);
            let run = top_down_cover(&g, &constraint, &config);
            assert_valid_and_minimal(&g, &run, &constraint);
        }
    }

    #[test]
    fn filter_and_scc_counters_are_populated() {
        // A graph with a large acyclic fringe: prefilters should fire.
        let mut edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 0)];
        for i in 3..60u32 {
            edges.push((i - 1, i));
        }
        let g = graph_from_edges(&edges);
        let constraint = HopConstraint::new(4);
        let run = top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus());
        assert!(run.metrics.filter_released > 0);
        let run = top_down_cover(&g, &constraint, &TopDownConfig::extended());
        assert!(run.metrics.scc_released > 40);
        assert_eq!(run.cover_size(), 1);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(TopDownConfig::tdb().name(), "TDB");
        assert_eq!(TopDownConfig::tdb_plus().name(), "TDB+");
        assert_eq!(TopDownConfig::tdb_plus_plus().name(), "TDB++");
        assert_eq!(TopDownConfig::extended().name(), "TDB++X");
    }
}
