//! Handling of 2-cycles (bidirectional edge pairs).
//!
//! The paper excludes 2-cycles from the main problem because they are trivial
//! to detect and would dominate the cover size (Table IV shows the cover
//! growing ~3× on average when they are included), and notes that "2-cycles
//! could be efficiently verified separately". This module provides that
//! separate treatment:
//!
//! * [`two_cycle_cover`] — a matching-based 2-approximation of the minimum
//!   vertex set covering every 2-cycle (exactly the `S(G, 2, 2)` routine used
//!   in the inapproximability proof of Theorem 3),
//! * [`minimal_two_cycle_cover`] — the same cover after redundancy pruning,
//! * [`combined_cover`] — a cover for *all* cycles of length `2..=k`, obtained
//!   by uniting a 2-cycle cover with a `3..=k` cover of the residual graph; an
//!   alternative to running the main algorithms with
//!   [`HopConstraint::with_two_cycles`].

use tdb_cycle::HopConstraint;
use tdb_graph::{CsrGraph, Graph, VertexId};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::solver::SolveContext;
use crate::stats::Timer;
use crate::top_down::{top_down_cover_with, TopDownConfig};

/// All reciprocated pairs `{u, v}` (with `u < v`) of the graph — the 2-cycles.
pub fn two_cycle_pairs<G: Graph>(g: &G) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::new();
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            if v > u && g.has_edge(v, u) {
                pairs.push((u, v));
            }
        }
    }
    pairs
}

/// Matching-based 2-approximation of the minimum vertex cover of all 2-cycles:
/// both endpoints of every pair of a greedily-built maximal matching are taken.
pub fn two_cycle_cover<G: Graph>(g: &G) -> CycleCover {
    let mut chosen = vec![false; g.num_vertices()];
    let mut cover = Vec::new();
    for (u, v) in two_cycle_pairs(g) {
        if !chosen[u as usize] && !chosen[v as usize] {
            chosen[u as usize] = true;
            chosen[v as usize] = true;
            cover.push(u);
            cover.push(v);
        }
    }
    CycleCover::from_vertices(cover)
}

/// [`two_cycle_cover`] followed by a redundancy-pruning pass: a chosen vertex
/// is dropped when all of its reciprocated partners are themselves chosen.
pub fn minimal_two_cycle_cover<G: Graph>(g: &G) -> CycleCover {
    let base = two_cycle_cover(g);
    let mut chosen = vec![false; g.num_vertices()];
    for v in base.iter() {
        chosen[v as usize] = true;
    }
    // Greedy removal in descending id order (arbitrary but deterministic).
    let mut result: Vec<VertexId> = base.iter().collect();
    for idx in (0..result.len()).rev() {
        let v = result[idx];
        let removable = g.out_neighbors(v).iter().all(|&w| {
            // Only reciprocated partners matter.
            !g.has_edge(w, v) || w == v || chosen[w as usize]
        });
        if removable {
            chosen[v as usize] = false;
            result.swap_remove(idx);
        }
    }
    CycleCover::from_vertices(result)
}

/// Whether `cover` hits every 2-cycle of the graph.
pub fn covers_all_two_cycles<G: Graph>(g: &G, cover: &CycleCover) -> bool {
    two_cycle_pairs(g)
        .into_iter()
        .all(|(u, v)| cover.contains(u) || cover.contains(v))
}

/// Cover all cycles of length `2..=k` by combining a minimal 2-cycle cover
/// with a `3..=k` top-down cover of the graph with the 2-cycle cover removed.
///
/// This is the "verify 2-cycles separately" strategy the paper alludes to; the
/// result is valid for [`HopConstraint::with_two_cycles`] but is generally a
/// little larger than running the main algorithm in that mode directly, which
/// is what the `ablation_two_cycle_strategy` bench quantifies.
pub fn combined_cover(g: &CsrGraph, k: usize, config: &TopDownConfig) -> CoverRun {
    let timer = Timer::start();
    let two = minimal_two_cycle_cover(g);

    // Remove the 2-cycle cover vertices, then cover the remaining 3..=k cycles.
    let mut remove = vec![false; g.num_vertices()];
    for v in two.iter() {
        remove[v as usize] = true;
    }
    let residual = g.remove_vertices(&remove);
    let rest = top_down_cover_with(
        &residual,
        &HopConstraint::new(k),
        config,
        &mut SolveContext::new(),
    )
    .expect("unbudgeted solve cannot fail");

    let mut metrics = RunMetrics::new("2CYC+TDB", k, true);
    metrics.cycle_queries = rest.metrics.cycle_queries;
    metrics.filter_released = rest.metrics.filter_released;
    metrics.working_edges = g.num_edges();

    let mut vertices: Vec<VertexId> = two.into_vertices();
    vertices.extend(rest.cover.iter());
    metrics.elapsed = timer.elapsed();
    CoverRun {
        cover: CycleCover::from_vertices(vertices),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{
        complete_digraph, directed_cycle, preferential_attachment, PreferentialConfig,
    };

    #[test]
    fn pairs_are_detected_once() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3)]);
        assert_eq!(two_cycle_pairs(&g), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn cover_hits_every_pair() {
        let g = complete_digraph(6);
        let cover = two_cycle_cover(&g);
        assert!(covers_all_two_cycles(&g, &cover));
        let minimal = minimal_two_cycle_cover(&g);
        assert!(covers_all_two_cycles(&g, &minimal));
        assert!(minimal.len() <= cover.len());
        // K6: covering all 2-cycles needs at least 5 vertices.
        assert!(minimal.len() >= 5);
    }

    #[test]
    fn graphs_without_reciprocation_need_nothing() {
        let g = directed_cycle(5);
        assert!(two_cycle_pairs(&g).is_empty());
        assert!(two_cycle_cover(&g).is_empty());
        assert!(minimal_two_cycle_cover(&g).is_empty());
    }

    #[test]
    fn minimal_cover_drops_redundant_endpoint_of_isolated_pair() {
        // A single 2-cycle: the matching picks both endpoints, pruning keeps one.
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        assert_eq!(two_cycle_cover(&g).len(), 2);
        assert_eq!(minimal_two_cycle_cover(&g).len(), 1);
    }

    #[test]
    fn star_of_two_cycles_is_covered_by_the_hub() {
        // Vertex 0 reciprocates with 1..=4: the minimum cover is {0}.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 0),
            (0, 2),
            (2, 0),
            (0, 3),
            (3, 0),
            (0, 4),
            (4, 0),
        ]);
        let minimal = minimal_two_cycle_cover(&g);
        assert!(covers_all_two_cycles(&g, &minimal));
        // The 2-approximation guarantee: at most 2x optimum (= 2 here).
        assert!(minimal.len() <= 2);
    }

    #[test]
    fn combined_cover_is_valid_for_the_two_cycle_constraint() {
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 150,
            out_degree: 3,
            reciprocity: 0.4,
            random_rewire: 0.1,
            seed: 21,
        });
        let run = combined_cover(&g, 4, &TopDownConfig::tdb_plus_plus());
        assert!(is_valid_cover(
            &g,
            &run.cover,
            &HopConstraint::with_two_cycles(4)
        ));
        // And it naturally also covers the 3..=k-only constraint.
        assert!(is_valid_cover(&g, &run.cover, &HopConstraint::new(4)));
    }

    #[test]
    fn combined_cover_larger_than_plain_cover() {
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 120,
            out_degree: 3,
            reciprocity: 0.5,
            random_rewire: 0.1,
            seed: 33,
        });
        let plain = top_down_cover_with(
            &g,
            &HopConstraint::new(4),
            &TopDownConfig::tdb_plus_plus(),
            &mut SolveContext::new(),
        )
        .unwrap();
        let combined = combined_cover(&g, 4, &TopDownConfig::tdb_plus_plus());
        assert!(combined.cover_size() >= plain.cover_size());
    }
}
