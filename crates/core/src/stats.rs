//! Small timing utilities used by the algorithms and the experiment harness.

use std::time::{Duration, Instant};

/// A monotonic stopwatch.
#[derive(Debug, Clone)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start a new timer.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Time elapsed since the timer was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restart the timer and return the time elapsed before the restart.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Format a duration the way the paper's tables do: seconds with millisecond
/// precision below 100 s, whole seconds above.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 100.0 {
        format!("{secs:.3}s")
    } else {
        format!("{secs:.0}s")
    }
}

/// A simple accumulator for repeated measurements (used by the ablation
/// benches to report mean / min / max without pulling in a statistics crate).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    values: Vec<f64>,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a value.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Minimum recorded value.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum recorded value.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_time() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.elapsed() >= Duration::from_millis(4));
        let lap = t.lap();
        assert!(lap >= Duration::from_millis(4));
        assert!(t.elapsed() < lap);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(1234)), "1.234s");
        assert_eq!(format_duration(Duration::from_secs(250)), "250s");
    }

    #[test]
    fn accumulator_statistics() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), None);
        for v in [2.0, 4.0, 6.0] {
            a.record(v);
        }
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(6.0));
    }
}
