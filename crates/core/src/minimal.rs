//! Minimal pruning of a cycle cover (`FindMinimalCover`, Algorithm 7).
//!
//! A cover `R` is *minimal* (Definition 4) when no single vertex can be dropped
//! from it without exposing an uncovered hop-constrained cycle. Algorithm 7
//! enforces that property a posteriori: for each cover vertex `v` it searches
//! the graph `G − R + {v}` (every non-cover vertex plus `v` itself) for a
//! hop-constrained cycle through `v`; if none exists, `v` is redundant and is
//! removed — and, crucially, stays *active* for the subsequent checks, so the
//! final set is minimal with respect to itself (Theorem 4).
//!
//! The same routine doubles as the redundancy detector of the verifier.

use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::{GraphView, VertexId};

use crate::cover::{CycleCover, RunMetrics};
use crate::solver::{SolveContext, SolveError, SolveScratch};

/// Which cycle-existence engine a pass should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchEngine {
    /// The exhaustive bounded DFS of Algorithm 5 — what the paper's `BUR+`
    /// uses, and the reference for differential tests.
    #[default]
    Naive,
    /// The block/barrier DFS of Algorithm 9 — asymptotically `O(k·m)` per
    /// query; used by the top-down family and offered here as an ablation.
    Block,
}

/// Run Algorithm 7 on `cover`, removing every redundant vertex in place.
///
/// Returns the number of removed vertices. `metrics.cycle_queries` is advanced
/// by one per examined vertex.
pub fn minimal_prune<V: GraphView>(
    g: &V,
    cover: &mut CycleCover,
    constraint: &HopConstraint,
    engine: SearchEngine,
    metrics: &mut RunMetrics,
) -> usize {
    let mut ctx = SolveContext::new();
    minimal_prune_with(g, cover, constraint, engine, metrics, &mut ctx)
        .expect("unbudgeted pruning cannot fail")
}

/// Budget-aware variant of [`minimal_prune`]: checks the context's deadline
/// once per examined cover vertex.
pub fn minimal_prune_with<V: GraphView>(
    g: &V,
    cover: &mut CycleCover,
    constraint: &HopConstraint,
    engine: SearchEngine,
    metrics: &mut RunMetrics,
    ctx: &mut SolveContext,
) -> Result<usize, SolveError> {
    let candidates: Vec<VertexId> = cover.iter().collect();
    minimal_prune_candidates_with(g, cover, &candidates, constraint, engine, metrics, ctx)
}

/// Algorithm 7 restricted to a candidate subset of the cover.
///
/// Only the vertices of `candidates` (which must be a subset of `cover`) are
/// examined for redundancy; the rest of the cover is held fixed. This is what
/// makes component-scoped re-minimization in `tdb-dynamic` sound *and* cheap:
/// a caller that can prove the untested cover vertices still have intact
/// witness cycles (e.g. because their strongly connected component saw no
/// update) skips one cycle query per skipped vertex, and removing a candidate
/// can never make a non-candidate redundant — pruning only ever *adds* active
/// vertices, hence only adds cycles through the others.
pub fn minimal_prune_candidates_with<V: GraphView>(
    g: &V,
    cover: &mut CycleCover,
    candidates: &[VertexId],
    constraint: &HopConstraint,
    engine: SearchEngine,
    metrics: &mut RunMetrics,
    ctx: &mut SolveContext,
) -> Result<usize, SolveError> {
    let mut scratch = ctx.take_scratch();
    // Weight-aware examination order: drop the costliest redundant breaker
    // first. Algorithm 7 is correct under any candidate order (a removed
    // vertex stays active for subsequent checks regardless), and examining
    // expensive vertices first means a costly redundancy is committed before
    // the cheap vertices that would re-justify it are tested — so the
    // surviving minimal cover skews cheap. The stable cost-keyed sort is the
    // identity under equal weights, preserving the unweighted order
    // bit-exactly.
    let ordered: Vec<VertexId>;
    let candidates = if ctx.vertex_costs().is_uniform() {
        candidates
    } else {
        let costs = ctx.vertex_costs().clone();
        let mut by_cost = candidates.to_vec();
        by_cost.sort_by_key(|&v| std::cmp::Reverse(costs.cost(v)));
        ordered = by_cost;
        &ordered
    };
    let result = prune_candidates(
        g,
        cover,
        candidates,
        constraint,
        engine,
        metrics,
        ctx,
        &mut scratch,
    );
    ctx.restore_scratch(scratch);
    result
}

/// The pruning loop itself, factored out so the entry point can hand the
/// borrowed scratch back to the context on every exit path.
#[allow(clippy::too_many_arguments)]
fn prune_candidates<V: GraphView>(
    g: &V,
    cover: &mut CycleCover,
    candidates: &[VertexId],
    constraint: &HopConstraint,
    engine: SearchEngine,
    metrics: &mut RunMetrics,
    ctx: &mut SolveContext,
    scratch: &mut SolveScratch,
) -> Result<usize, SolveError> {
    ctx.ensure_armed();
    let _span = tdb_obs::trace::span("solve/minimize");
    let _timer = tdb_obs::histogram!("tdb_solve_minimize_seconds").start();
    let n = g.vertex_count();
    // G − R + {v}: all non-cover vertices are active; cover vertices inactive.
    scratch.reset_active(n, true);
    for v in cover.iter() {
        scratch.active.deactivate(v);
    }

    let mut removed = 0usize;
    for &v in candidates {
        debug_assert!(cover.contains(v), "candidate {v} is not a cover vertex");
        ctx.checkpoint()?;
        // Temporarily restore v into the graph.
        scratch.active.activate(v);
        metrics.cycle_queries += 1;
        let has_cycle = match engine {
            SearchEngine::Block => {
                scratch
                    .block
                    .is_on_constrained_cycle(g, &scratch.active, v, constraint)
            }
            SearchEngine::Naive => scratch
                .naive
                .find_cycle_through(g, &scratch.active, v, constraint)
                .is_some(),
        };
        if has_cycle {
            // v is still needed: put it back into the reduced-graph hole.
            scratch.active.deactivate(v);
        } else {
            // v is redundant: drop it from the cover and leave it active so the
            // remaining checks see the enlarged graph (Theorem 4's invariant).
            cover.remove(v);
            removed += 1;
        }
    }
    Ok(removed)
}

/// List the redundant vertices of a cover without modifying it.
///
/// Note that redundancy is checked one vertex at a time against the rest of the
/// *original* cover; a cover can have several individually-redundant vertices
/// of which only a subset can actually be removed together. [`minimal_prune`]
/// performs the committed, order-dependent removal.
pub fn redundant_vertices<V: GraphView>(
    g: &V,
    cover: &CycleCover,
    constraint: &HopConstraint,
) -> Vec<VertexId> {
    let n = g.vertex_count();
    let mut active = cover.reduced_active_set(n);
    let mut searcher = BlockSearcher::new(n);
    let mut redundant = Vec::new();
    for v in cover.iter() {
        active.activate(v);
        if !searcher.is_on_constrained_cycle(g, &active, v, constraint) {
            redundant.push(v);
        }
        active.deactivate(v);
    }
    redundant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, erdos_renyi_gnm};
    use tdb_graph::Graph;

    fn prune(
        g: &impl Graph,
        vertices: Vec<VertexId>,
        constraint: &HopConstraint,
        engine: SearchEngine,
    ) -> (CycleCover, usize) {
        let mut cover = CycleCover::from_vertices(vertices);
        let mut metrics = RunMetrics::new("test", constraint.max_hops, false);
        let removed = minimal_prune(g, &mut cover, constraint, engine, &mut metrics);
        (cover, removed)
    }

    #[test]
    fn oversized_cover_of_single_cycle_shrinks_to_one() {
        let g = directed_cycle(5);
        let constraint = HopConstraint::new(5);
        for engine in [SearchEngine::Naive, SearchEngine::Block] {
            let (cover, removed) = prune(&g, vec![0, 1, 2, 3, 4], &constraint, engine);
            assert_eq!(cover.len(), 1, "engine {engine:?}");
            assert_eq!(removed, 4);
            let v = verify_cover(&g, &cover, &constraint);
            assert!(v.is_valid && v.is_minimal);
        }
    }

    #[test]
    fn needed_vertices_are_kept() {
        // Two disjoint triangles: one vertex from each is needed.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let constraint = HopConstraint::new(3);
        let (cover, removed) = prune(&g, vec![0, 3], &constraint, SearchEngine::Naive);
        assert_eq!(cover.len(), 2);
        assert_eq!(removed, 0);
    }

    #[test]
    fn whole_vertex_set_prunes_to_a_minimal_cover() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(30, 120, seed);
            let constraint = HopConstraint::new(4);
            let all: Vec<VertexId> = g.vertices().collect();
            let (cover, _) = prune(&g, all, &constraint, SearchEngine::Block);
            let v = verify_cover(&g, &cover, &constraint);
            assert!(v.is_valid, "seed {seed}");
            assert!(v.is_minimal, "seed {seed}: redundant {:?}", v.redundant);
        }
    }

    #[test]
    fn engines_agree_on_final_size() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(25, 100, seed + 10);
            let constraint = HopConstraint::new(4);
            let all: Vec<VertexId> = g.vertices().collect();
            let (a, _) = prune(&g, all.clone(), &constraint, SearchEngine::Naive);
            let (b, _) = prune(&g, all, &constraint, SearchEngine::Block);
            // Same scan order + both engines are exact existence tests =>
            // identical results, not merely same size.
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn redundant_vertices_reports_without_mutation() {
        let g = directed_cycle(4);
        let constraint = HopConstraint::new(4);
        let cover = CycleCover::from_vertices(vec![0, 2]);
        let redundant = redundant_vertices(&g, &cover, &constraint);
        // Either vertex alone suffices, so each is redundant w.r.t. the other.
        assert_eq!(redundant, vec![0, 2]);
        assert_eq!(cover.len(), 2, "cover must be untouched");
        // After pruning, only one survives and nothing is redundant.
        let (pruned, _) = prune(&g, vec![0, 2], &constraint, SearchEngine::Naive);
        assert_eq!(pruned.len(), 1);
        assert!(redundant_vertices(&g, &pruned, &constraint).is_empty());
    }

    #[test]
    fn candidate_restriction_only_touches_the_candidates() {
        // Two disjoint triangles, both vertices of the first in the cover:
        // one of them is redundant, but only candidates may be removed.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let constraint = HopConstraint::new(3);
        let mut cover = CycleCover::from_vertices(vec![0, 1, 3]);
        let mut metrics = RunMetrics::new("test", 3, false);
        let mut ctx = SolveContext::new();
        // Restrict to vertex 3 (still needed): nothing changes, one query.
        let removed = minimal_prune_candidates_with(
            &g,
            &mut cover,
            &[3],
            &constraint,
            SearchEngine::Block,
            &mut metrics,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(removed, 0);
        assert_eq!(metrics.cycle_queries, 1);
        assert_eq!(cover.as_slice(), &[0, 1, 3]);
        // Restrict to vertex 0: it is redundant (1 also breaks the triangle).
        let removed = minimal_prune_candidates_with(
            &g,
            &mut cover,
            &[0],
            &constraint,
            SearchEngine::Block,
            &mut metrics,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(removed, 1);
        assert_eq!(cover.as_slice(), &[1, 3]);
    }

    #[test]
    fn empty_cover_is_a_noop() {
        let g = complete_digraph(4);
        let constraint = HopConstraint::new(3);
        let (cover, removed) = prune(&g, vec![], &constraint, SearchEngine::Block);
        assert!(cover.is_empty());
        assert_eq!(removed, 0);
    }
}
