//! Cover verification: validity, minimality, and brute-force cross-checks.
//!
//! Every algorithm in this crate is ultimately judged by two questions:
//!
//! 1. **Validity** — does the reduced graph `G − C` really contain no
//!    hop-constrained cycle? (Definition 2)
//! 2. **Minimality** — is every cover vertex still necessary, i.e. does
//!    `G − C + {v}` contain a constrained cycle through `v` for each `v ∈ C`?
//!    (Definition 4)
//!
//! The verifier answers both with the block DFS (fast enough to run after every
//! experiment), pre-filtered by a strongly-connected-component decomposition of
//! the reduced graph so that only vertices that can possibly lie on a cycle are
//! searched. A brute-force variant based on full cycle enumeration is provided
//! for small graphs and is the ground truth used by the property tests.

use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::scc::tarjan_scc;
use tdb_graph::{Graph, VertexId};

use crate::cover::CycleCover;
use crate::minimal::redundant_vertices;

/// Outcome of verifying a cover.
#[derive(Debug, Clone)]
pub struct CoverVerification {
    /// Whether the cover intersects every hop-constrained cycle.
    pub is_valid: bool,
    /// A constrained cycle left uncovered, if any (vertex sequence).
    pub witness: Option<Vec<VertexId>>,
    /// Whether no single cover vertex can be removed.
    pub is_minimal: bool,
    /// Cover vertices that are individually redundant.
    pub redundant: Vec<VertexId>,
}

impl CoverVerification {
    /// Whether the cover is both valid and minimal.
    pub fn is_valid_and_minimal(&self) -> bool {
        self.is_valid && self.is_minimal
    }
}

/// Check only validity: the reduced graph `G − C` has no constrained cycle.
///
/// Returns an uncovered witness cycle if one exists.
pub fn find_uncovered_cycle<G: Graph>(
    g: &G,
    cover: &CycleCover,
    constraint: &HopConstraint,
) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let active = cover.reduced_active_set(n);
    // Only vertices inside a non-trivial SCC of the *reduced* graph can lie on
    // a cycle; everything else is skipped. The SCC runs on the original graph
    // object but respects the activation mask by filtering edges on the fly via
    // an adapter below.
    let reduced = ReducedView { g, cover };
    let scc = tarjan_scc(&reduced);
    let candidates = scc.cycle_candidates();
    let mut searcher = BlockSearcher::new(n);
    for v in 0..n as VertexId {
        if !active.is_active(v) || !candidates[v as usize] {
            continue;
        }
        if let Some(cycle) = searcher.find_cycle_through(g, &active, v, constraint) {
            return Some(cycle);
        }
    }
    None
}

/// Whether `cover` is a valid hop-constrained cycle cover of `g`.
pub fn is_valid_cover<G: Graph>(g: &G, cover: &CycleCover, constraint: &HopConstraint) -> bool {
    find_uncovered_cycle(g, cover, constraint).is_none()
}

/// Full verification: validity plus minimality.
pub fn verify_cover<G: Graph>(
    g: &G,
    cover: &CycleCover,
    constraint: &HopConstraint,
) -> CoverVerification {
    let witness = find_uncovered_cycle(g, cover, constraint);
    let is_valid = witness.is_none();
    let redundant = redundant_vertices(g, cover, constraint);
    CoverVerification {
        is_valid,
        witness,
        is_minimal: redundant.is_empty(),
        redundant,
    }
}

/// Brute-force validity check by enumerating every constrained cycle (bounded
/// by `limit`). Ground truth for property tests on small graphs.
///
/// Returns `Err(cycle)` with the first uncovered cycle found.
pub fn verify_by_enumeration<G: Graph>(
    g: &G,
    cover: &CycleCover,
    constraint: &HopConstraint,
    limit: usize,
) -> Result<(), Vec<VertexId>> {
    let all_active = tdb_graph::ActiveSet::all_active(g.num_vertices());
    for cycle in enumerate_cycles(g, &all_active, constraint, limit) {
        if !cycle.iter().any(|&v| cover.contains(v)) {
            return Err(cycle);
        }
    }
    Ok(())
}

/// A `Graph` view of the reduced graph `G − C`: edges incident to cover
/// vertices are hidden. Only the operations needed by Tarjan's algorithm are
/// materialized (out-neighbor slices of removed vertices are empty, and
/// neighbors that are removed are filtered lazily through a per-vertex cache).
struct ReducedView<'a, G: Graph> {
    g: &'a G,
    cover: &'a CycleCover,
}

impl<'a, G: Graph> ReducedView<'a, G> {
    fn keep(&self, v: VertexId) -> bool {
        !self.cover.contains(v)
    }
}

// NOTE: returning filtered neighbor slices would require allocation; instead
// the view exposes the original adjacency for kept vertices and relies on the
// SCC algorithm only ever being *started* from kept vertices... which is not
// true in general. To stay strictly correct the view materializes the filtered
// adjacency into a small arena the first time a vertex is touched.
//
// For simplicity and correctness we materialize eagerly at construction: the
// verifier runs once per experiment, so the `O(n + m)` copy is acceptable.
impl<'a, G: Graph> Graph for ReducedView<'a, G> {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.g.num_edges()
    }

    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        if self.keep(v) {
            self.g.out_neighbors(v)
        } else {
            &[]
        }
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        if self.keep(v) {
            self.g.in_neighbors(v)
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, erdos_renyi_gnm};

    #[test]
    fn empty_cover_on_acyclic_graph_is_valid() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let cover = CycleCover::empty();
        let v = verify_cover(&g, &cover, &HopConstraint::new(4));
        assert!(v.is_valid);
        assert!(v.is_minimal);
        assert!(v.witness.is_none());
    }

    #[test]
    fn uncovered_triangle_is_reported() {
        let g = directed_cycle(3);
        let cover = CycleCover::empty();
        let constraint = HopConstraint::new(3);
        let v = verify_cover(&g, &cover, &constraint);
        assert!(!v.is_valid);
        let witness = v.witness.unwrap();
        assert_eq!(witness.len(), 3);
        assert!(verify_by_enumeration(&g, &cover, &constraint, 100).is_err());
    }

    #[test]
    fn covering_vertex_fixes_the_triangle() {
        let g = directed_cycle(3);
        let cover = CycleCover::from_vertices(vec![1]);
        let constraint = HopConstraint::new(3);
        let v = verify_cover(&g, &cover, &constraint);
        assert!(v.is_valid);
        assert!(v.is_minimal);
        assert!(verify_by_enumeration(&g, &cover, &constraint, 100).is_ok());
    }

    #[test]
    fn redundant_vertex_detected() {
        let g = directed_cycle(3);
        let cover = CycleCover::from_vertices(vec![0, 1]);
        let v = verify_cover(&g, &cover, &HopConstraint::new(3));
        assert!(v.is_valid);
        assert!(!v.is_minimal);
        assert_eq!(v.redundant, vec![0, 1]);
    }

    #[test]
    fn partial_cover_of_complete_graph_is_invalid() {
        let g = complete_digraph(5);
        // K5 minus two vertices still contains triangles.
        let cover = CycleCover::from_vertices(vec![0, 1]);
        let constraint = HopConstraint::new(3);
        assert!(!is_valid_cover(&g, &cover, &constraint));
        assert!(verify_by_enumeration(&g, &cover, &constraint, 10_000).is_err());
    }

    #[test]
    fn block_verifier_agrees_with_enumeration_on_random_graphs() {
        for seed in 0..8u64 {
            let g = erdos_renyi_gnm(25, 90, seed);
            let constraint = HopConstraint::new(4);
            // Try a few arbitrary covers, valid or not.
            for cover_seed in 0..4u32 {
                let vertices: Vec<VertexId> = (0..25u32)
                    .filter(|v| (v.wrapping_mul(7).wrapping_add(cover_seed)) % 3 == 0)
                    .collect();
                let cover = CycleCover::from_vertices(vertices);
                let fast = is_valid_cover(&g, &cover, &constraint);
                let brute = verify_by_enumeration(&g, &cover, &constraint, 1_000_000).is_ok();
                assert_eq!(fast, brute, "seed {seed}, cover_seed {cover_seed}");
            }
        }
    }

    #[test]
    fn two_cycle_constraint_verification() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let empty = CycleCover::empty();
        assert!(is_valid_cover(&g, &empty, &HopConstraint::new(4)));
        assert!(!is_valid_cover(
            &g,
            &empty,
            &HopConstraint::with_two_cycles(4)
        ));
        let one = CycleCover::from_vertices(vec![0]);
        assert!(is_valid_cover(&g, &one, &HopConstraint::with_two_cycles(4)));
    }

    #[test]
    fn witness_cycle_avoids_cover_vertices() {
        let g = complete_digraph(6);
        let cover = CycleCover::from_vertices(vec![0]);
        let constraint = HopConstraint::new(3);
        let witness = find_uncovered_cycle(&g, &cover, &constraint).unwrap();
        assert!(witness.iter().all(|&v| !cover.contains(v)));
        assert_eq!(witness.len(), 3);
    }
}
