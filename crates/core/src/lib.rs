//! # tdb-core
//!
//! Hop-constrained cycle cover algorithms — the primary contribution of
//! *"TDB: Breaking All Hop-Constrained Cycles in Billion-Scale Directed
//! Graphs"* (ICDE 2023) rebuilt as a Rust library.
//!
//! Given a directed graph and a hop constraint `k`, the crate computes a set of
//! vertices intersecting every simple cycle of length `3..=k` (optionally
//! `2..=k`). Three algorithm families are provided:
//!
//! | Family | Paper section | Entry point | Character |
//! |---|---|---|---|
//! | Bottom-up (`BUR`, `BUR+`) | §V, Alg. 4–7 | [`bottom_up::bottom_up_cover`] | smallest covers, `O(n^{k+1})` |
//! | DARC / DARC-DV | §III-B, Alg. 1–3 | [`darc::darc_dv_cover`] | prior state of the art, `O(n^k)` |
//! | Top-down (`TDB`, `TDB+`, `TDB++`) | §VI, Alg. 8–11 | [`top_down::top_down_cover`] | the paper's contribution, `O(k·n·m)` |
//!
//! All of them produce covers that are **valid** (no constrained cycle
//! survives) and **minimal** (no single vertex can be dropped), which
//! [`verify::verify_cover`] checks independently.
//!
//! ```
//! use tdb_core::prelude::*;
//! use tdb_graph::gen::directed_cycle;
//!
//! let g = directed_cycle(4);
//! let run = top_down_cover(&g, &HopConstraint::new(5), &TopDownConfig::tdb_plus_plus());
//! assert_eq!(run.cover_size(), 1);
//! assert!(verify_cover(&g, &run.cover, &HopConstraint::new(5)).is_valid_and_minimal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottom_up;
pub mod cover;
pub mod darc;
pub mod minimal;
pub mod parallel;
pub mod stats;
pub mod top_down;
pub mod two_cycle;
pub mod verify;

pub use cover::{CoverRun, CycleCover, RunMetrics};
pub use tdb_cycle::HopConstraint;

use tdb_graph::CsrGraph;

/// The algorithms evaluated in the paper (plus this crate's extensions), as a
/// single enumeration so that harnesses can sweep over them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Bottom-up without minimal pruning (Section V-B).
    Bur,
    /// Bottom-up with minimal pruning — `BUR+` (Section V-C).
    BurPlus,
    /// The DARC-DV baseline (Section III-B).
    DarcDv,
    /// Top-down with the naive DFS (Section VI-B).
    Tdb,
    /// Top-down with the block DFS — `TDB+`.
    TdbPlus,
    /// Top-down with block DFS and BFS filter — `TDB++` (the paper's flagship).
    TdbPlusPlus,
    /// Extension: `TDB++` with exact-filter shortcut and SCC pre-filter.
    TdbExtended,
    /// Extension: parallel `TDB++`.
    TdbParallel,
}

impl Algorithm {
    /// Display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bur => "BUR",
            Algorithm::BurPlus => "BUR+",
            Algorithm::DarcDv => "DARC-DV",
            Algorithm::Tdb => "TDB",
            Algorithm::TdbPlus => "TDB+",
            Algorithm::TdbPlusPlus => "TDB++",
            Algorithm::TdbExtended => "TDB++X",
            Algorithm::TdbParallel => "TDB++/par",
        }
    }

    /// The three algorithms compared in Table III and Figures 6–7.
    pub fn paper_headline() -> [Algorithm; 3] {
        [Algorithm::DarcDv, Algorithm::BurPlus, Algorithm::TdbPlusPlus]
    }

    /// Every algorithm the crate implements.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::Bur,
            Algorithm::BurPlus,
            Algorithm::DarcDv,
            Algorithm::Tdb,
            Algorithm::TdbPlus,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbExtended,
            Algorithm::TdbParallel,
        ]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BUR" => Ok(Algorithm::Bur),
            "BUR+" | "BURPLUS" | "BUR_PLUS" => Ok(Algorithm::BurPlus),
            "DARC-DV" | "DARCDV" | "DARC_DV" => Ok(Algorithm::DarcDv),
            "TDB" => Ok(Algorithm::Tdb),
            "TDB+" | "TDBPLUS" => Ok(Algorithm::TdbPlus),
            "TDB++" | "TDBPLUSPLUS" => Ok(Algorithm::TdbPlusPlus),
            "TDB++X" | "TDBX" | "EXTENDED" => Ok(Algorithm::TdbExtended),
            "TDB++/PAR" | "PARALLEL" | "PAR" => Ok(Algorithm::TdbParallel),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Compute a hop-constrained cycle cover of `g` with the chosen algorithm.
///
/// This is the uniform entry point used by the examples and the experiment
/// harness; the per-family modules expose richer configuration.
pub fn compute_cover(g: &CsrGraph, constraint: &HopConstraint, algorithm: Algorithm) -> CoverRun {
    match algorithm {
        Algorithm::Bur => {
            bottom_up::bottom_up_cover(g, constraint, &bottom_up::BottomUpConfig::bur())
        }
        Algorithm::BurPlus => {
            bottom_up::bottom_up_cover(g, constraint, &bottom_up::BottomUpConfig::bur_plus())
        }
        Algorithm::DarcDv => darc::darc_dv_cover(g, constraint),
        Algorithm::Tdb => top_down::top_down_cover(g, constraint, &top_down::TopDownConfig::tdb()),
        Algorithm::TdbPlus => {
            top_down::top_down_cover(g, constraint, &top_down::TopDownConfig::tdb_plus())
        }
        Algorithm::TdbPlusPlus => {
            top_down::top_down_cover(g, constraint, &top_down::TopDownConfig::tdb_plus_plus())
        }
        Algorithm::TdbExtended => {
            top_down::top_down_cover(g, constraint, &top_down::TopDownConfig::extended())
        }
        Algorithm::TdbParallel => {
            parallel::parallel_top_down_cover(g, constraint, &parallel::ParallelConfig::default())
        }
    }
}

/// Commonly used items re-exported together.
pub mod prelude {
    pub use crate::bottom_up::{bottom_up_cover, BottomUpConfig};
    pub use crate::compute_cover;
    pub use crate::cover::{CoverRun, CycleCover, RunMetrics};
    pub use crate::darc::darc_dv_cover;
    pub use crate::minimal::{minimal_prune, SearchEngine};
    pub use crate::parallel::{parallel_top_down_cover, ParallelConfig};
    pub use crate::top_down::{top_down_cover, ScanOrder, TopDownConfig};
    pub use crate::two_cycle::{combined_cover, minimal_two_cycle_cover};
    pub use crate::verify::{is_valid_cover, verify_cover};
    pub use crate::Algorithm;
    pub use tdb_cycle::HopConstraint;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_cover;
    use tdb_graph::gen::erdos_renyi_gnm;

    #[test]
    fn algorithm_names_and_parsing_round_trip() {
        for algo in Algorithm::all() {
            let parsed: Algorithm = algo.name().parse().unwrap();
            assert_eq!(parsed, algo);
        }
        assert!("no-such-algo".parse::<Algorithm>().is_err());
        assert_eq!(Algorithm::TdbPlusPlus.to_string(), "TDB++");
    }

    #[test]
    fn every_algorithm_produces_a_valid_cover() {
        let g = erdos_renyi_gnm(30, 120, 1);
        let constraint = HopConstraint::new(4);
        for algo in Algorithm::all() {
            let run = compute_cover(&g, &constraint, algo);
            let v = verify_cover(&g, &run.cover, &constraint);
            assert!(v.is_valid, "{algo} produced an invalid cover");
            assert_eq!(run.metrics.k, 4);
        }
    }

    #[test]
    fn headline_algorithms_match_the_paper() {
        let names: Vec<&str> = Algorithm::paper_headline()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(names, vec!["DARC-DV", "BUR+", "TDB++"]);
    }
}
