//! # tdb-core
//!
//! Hop-constrained cycle cover algorithms — the primary contribution of
//! *"TDB: Breaking All Hop-Constrained Cycles in Billion-Scale Directed
//! Graphs"* (ICDE 2023) rebuilt as a Rust library.
//!
//! Given a directed graph and a hop constraint `k`, the crate computes a set of
//! vertices intersecting every simple cycle of length `3..=k` (optionally
//! `2..=k`). All of the paper's algorithm variants sit behind **one unified
//! surface**:
//!
//! * [`CoverRequest`](request::CoverRequest) / [`CoverReport`](request::CoverReport)
//!   — the primary API: everything a solve needs as one value (algorithm, `k`,
//!   [`Objective`](request::Objective), [`CostModel`](tdb_graph::CostModel),
//!   [`Budget`](request::Budget), two-cycle mode, sharding, …) and a structured
//!   result (cover, total cost, budget exhaustion, residual cycles, per-breaker
//!   explanations) instead of a bare vertex vector.
//! * [`Algorithm`] — the enum of every evaluated variant (`BUR`, `BUR+`,
//!   `DARC-DV`, `TDB`, `TDB+`, `TDB++`, plus this crate's extensions).
//! * [`Solver`](solver::Solver) — the execution engine behind a request
//!   ([`Solver::from_request`](solver::Solver::from_request)); the `with_*`
//!   builders remain as delegating sugar:
//!   `Solver::new(Algorithm::TdbPlusPlus).with_scan_order(..).solve(&g, &c)`.
//! * [`CoverAlgorithm`](solver::CoverAlgorithm) — the trait behind the
//!   builder. Each family's configuration struct ([`top_down::TopDownConfig`],
//!   [`bottom_up::BottomUpConfig`], [`darc::DarcDvConfig`],
//!   [`parallel::ParallelConfig`]) implements it, so an algorithm is a value
//!   you configure once and run against any graph.
//! * [`SolveContext`](solver::SolveContext) / [`SolveError`](solver::SolveError)
//!   — shared run state (seed, per-vertex costs, deadline, accumulated
//!   metrics, progress callback) and typed failure: a solver with a time
//!   budget returns
//!   [`SolveError::BudgetExceeded`](solver::SolveError::BudgetExceeded)
//!   instead of running unbounded.
//!
//! The algorithm families, by paper section:
//!
//! | Family | Paper section | Configuration | Character |
//! |---|---|---|---|
//! | Bottom-up (`BUR`, `BUR+`) | §V, Alg. 4–7 | [`bottom_up::BottomUpConfig`] | smallest covers, `O(n^{k+1})` |
//! | DARC / DARC-DV | §III-B, Alg. 1–3 | [`darc::DarcDvConfig`] | prior state of the art, `O(n^k)` |
//! | Top-down (`TDB`, `TDB+`, `TDB++`) | §VI, Alg. 8–11 | [`top_down::TopDownConfig`] | the paper's contribution, `O(k·n·m)` |
//!
//! All of them produce covers that are **valid** (no constrained cycle
//! survives) and — except `BUR` and `DARC-DV`, which skip the Algorithm-7
//! pruning — **minimal** (no single vertex can be dropped), which
//! [`verify::verify_cover`] checks independently.
//!
//! Because every constrained cycle lies inside one strongly connected
//! component, the problem also **partitions exactly**:
//! [`Solver::with_sharding`](solver::Solver::with_sharding) condenses the
//! graph ([`partition::Partitioner`]), solves the non-trivial SCCs as
//! independent compact shards on worker threads, and merges the per-shard
//! covers — reproducing the unsharded cover while scaling across cores on
//! multi-component graphs.
//!
//! ```
//! use tdb_core::prelude::*;
//! use tdb_graph::gen::directed_cycle;
//!
//! let g = directed_cycle(4);
//! let report = CoverRequest::new(Algorithm::TdbPlusPlus, 5).solve(&g).unwrap();
//! assert_eq!(report.cover_size(), 1);
//! assert_eq!(report.total_cost, 1);
//! assert!(!report.exhausted);
//! ```
//!
//! The budget-aware per-family entry points (`top_down::top_down_cover_with`
//! and friends) remain public for callers that thread their own
//! [`SolveContext`](solver::SolveContext); new code should go through
//! [`CoverRequest`](request::CoverRequest) or [`Solver`](solver::Solver).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottom_up;
pub mod cover;
pub mod darc;
pub mod minimal;
pub mod parallel;
pub mod partition;
pub mod request;
pub mod solver;
pub mod stats;
pub mod top_down;
pub mod two_cycle;
pub mod verify;

pub use cover::{CoverRun, CycleCover, RunMetrics};
pub use partition::{Partition, Partitioner, Shard};
pub use request::{BreakerStat, Budget, CoverReport, CoverRequest, Cycle, Objective};
pub use solver::{
    CoverAlgorithm, ShardingMode, SolveContext, SolveError, SolveProgress, Solver, TwoCycleMode,
};
pub use tdb_cycle::HopConstraint;

use tdb_graph::CsrGraph;

/// The algorithms evaluated in the paper (plus this crate's extensions), as a
/// single enumeration so that harnesses can sweep over them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Bottom-up without minimal pruning (Section V-B).
    Bur,
    /// Bottom-up with minimal pruning — `BUR+` (Section V-C).
    BurPlus,
    /// The DARC-DV baseline (Section III-B).
    DarcDv,
    /// Top-down with the naive DFS (Section VI-B).
    Tdb,
    /// Top-down with the block DFS — `TDB+`.
    TdbPlus,
    /// Top-down with block DFS and BFS filter — `TDB++` (the paper's flagship).
    TdbPlusPlus,
    /// Extension: `TDB++` with exact-filter shortcut and SCC pre-filter.
    TdbExtended,
    /// Extension: parallel `TDB++`.
    TdbParallel,
}

impl Algorithm {
    /// Display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bur => "BUR",
            Algorithm::BurPlus => "BUR+",
            Algorithm::DarcDv => "DARC-DV",
            Algorithm::Tdb => "TDB",
            Algorithm::TdbPlus => "TDB+",
            Algorithm::TdbPlusPlus => "TDB++",
            Algorithm::TdbExtended => "TDB++X",
            Algorithm::TdbParallel => "TDB++/par",
        }
    }

    /// The three algorithms compared in Table III and Figures 6–7.
    pub fn paper_headline() -> [Algorithm; 3] {
        [
            Algorithm::DarcDv,
            Algorithm::BurPlus,
            Algorithm::TdbPlusPlus,
        ]
    }

    /// Every algorithm the crate implements.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::Bur,
            Algorithm::BurPlus,
            Algorithm::DarcDv,
            Algorithm::Tdb,
            Algorithm::TdbPlus,
            Algorithm::TdbPlusPlus,
            Algorithm::TdbExtended,
            Algorithm::TdbParallel,
        ]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an [`Algorithm`] from a string fails.
///
/// Carries the rejected input and knows every accepted canonical name, so
/// harness CLIs can print an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmParseError {
    input: String,
}

impl AlgorithmParseError {
    /// The string that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The canonical names (`Algorithm::name`) accepted by the parser.
    pub fn expected() -> [&'static str; 8] {
        let mut names = [""; 8];
        for (slot, algorithm) in names.iter_mut().zip(Algorithm::all()) {
            *slot = algorithm.name();
        }
        names
    }
}

impl std::fmt::Display for AlgorithmParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown algorithm {:?} (expected one of: {})",
            self.input,
            Self::expected().join(", ")
        )
    }
}

impl std::error::Error for AlgorithmParseError {}

impl std::str::FromStr for Algorithm {
    type Err = AlgorithmParseError;

    /// Parse an algorithm name, case-insensitively.
    ///
    /// Every [`Algorithm::name`] output parses back losslessly (including
    /// `"TDB++X"` and `"TDB++/par"`), alongside spelled-out aliases such as
    /// `"bur_plus"` or `"parallel"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BUR" => Ok(Algorithm::Bur),
            "BUR+" | "BURPLUS" | "BUR_PLUS" => Ok(Algorithm::BurPlus),
            "DARC-DV" | "DARCDV" | "DARC_DV" => Ok(Algorithm::DarcDv),
            "TDB" => Ok(Algorithm::Tdb),
            "TDB+" | "TDBPLUS" | "TDB_PLUS" => Ok(Algorithm::TdbPlus),
            "TDB++" | "TDBPLUSPLUS" | "TDB_PLUS_PLUS" => Ok(Algorithm::TdbPlusPlus),
            "TDB++X" | "TDBX" | "EXTENDED" => Ok(Algorithm::TdbExtended),
            "TDB++/PAR" | "TDB++PAR" | "PARALLEL" | "PAR" => Ok(Algorithm::TdbParallel),
            _ => Err(AlgorithmParseError {
                input: s.to_string(),
            }),
        }
    }
}

/// Compute a hop-constrained cycle cover of `g` with the chosen algorithm.
///
/// Equivalent to `Solver::new(algorithm).solve(g, constraint)` with the
/// algorithm's default configuration and no budget. Kept as the simplest
/// uniform entry point; use [`Solver`] directly for scan order, threads, time
/// budgets, or progress reporting.
pub fn compute_cover(g: &CsrGraph, constraint: &HopConstraint, algorithm: Algorithm) -> CoverRun {
    Solver::new(algorithm)
        .solve(g, constraint)
        .expect("unbudgeted solve cannot fail")
}

/// Commonly used items re-exported together.
pub mod prelude {
    pub use crate::bottom_up::{bottom_up_cover_with, BottomUpConfig};
    pub use crate::compute_cover;
    pub use crate::cover::{CoverRun, CycleCover, RunMetrics};
    pub use crate::darc::{darc_dv_cover_with, DarcDvConfig};
    pub use crate::minimal::{minimal_prune, minimal_prune_candidates_with, SearchEngine};
    pub use crate::parallel::{parallel_top_down_cover_with, ParallelConfig};
    pub use crate::partition::{Partition, Partitioner, Shard};
    pub use crate::request::{
        BreakerStat, Budget, CoverReport, CoverRequest, Cycle, Objective, DEFAULT_RESIDUAL_CAP,
    };
    pub use crate::solver::{
        CoverAlgorithm, ShardingMode, SolveContext, SolveError, SolveProgress, Solver, TwoCycleMode,
    };
    pub use crate::top_down::{top_down_cover_with, ScanOrder, TopDownConfig};
    pub use crate::two_cycle::{combined_cover, minimal_two_cycle_cover};
    pub use crate::verify::{is_valid_cover, verify_cover};
    pub use crate::{Algorithm, AlgorithmParseError};
    pub use tdb_cycle::HopConstraint;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_cover;
    use tdb_graph::gen::erdos_renyi_gnm;

    #[test]
    fn algorithm_names_and_parsing_round_trip() {
        for algo in Algorithm::all() {
            let parsed: Algorithm = algo.name().parse().unwrap();
            assert_eq!(parsed, algo);
            // Lowercase forms parse too.
            let parsed: Algorithm = algo.name().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed, algo);
        }
        let err = "no-such-algo".parse::<Algorithm>().unwrap_err();
        assert_eq!(err.input(), "no-such-algo");
        assert!(err.to_string().contains("TDB++"));
        assert_eq!(Algorithm::TdbPlusPlus.to_string(), "TDB++");
    }

    #[test]
    fn every_algorithm_produces_a_valid_cover() {
        let g = erdos_renyi_gnm(30, 120, 1);
        let constraint = HopConstraint::new(4);
        for algo in Algorithm::all() {
            let run = compute_cover(&g, &constraint, algo);
            let v = verify_cover(&g, &run.cover, &constraint);
            assert!(v.is_valid, "{algo} produced an invalid cover");
            assert_eq!(run.metrics.k, 4);
        }
    }

    #[test]
    fn headline_algorithms_match_the_paper() {
        let names: Vec<&str> = Algorithm::paper_headline()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(names, vec!["DARC-DV", "BUR+", "TDB++"]);
    }
}
