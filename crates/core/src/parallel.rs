//! Parallel extension of TDB++ (not part of the paper).
//!
//! The top-down scan is inherently sequential — every release decision changes
//! the working graph seen by later vertices — but two large fractions of the
//! work are embarrassingly parallel:
//!
//! 1. **Global pre-filtering.** Whether a vertex lies on *any* hop-constrained
//!    cycle of the full graph `G` is independent of the scan. Vertices that do
//!    not can be released unconditionally (the cycle test during the scan would
//!    have been run on a subgraph of `G` and found nothing either), so the
//!    sequential scan only needs to touch the remaining candidates. This phase
//!    is sharded across worker threads, each with its own
//!    [`BlockSearcher`]/[`BfsFilter`] scratch state.
//! 2. **Verification.** Checking a finished cover is a read-only sweep and is
//!    parallelized the same way.
//!
//! Because the pre-filter never releases a vertex the sequential scan would
//! have kept, the parallel variant returns **exactly** the same cover as
//! sequential TDB++ with the same scan order (asserted by the tests below).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tdb_cycle::bfs_filter::BfsFilter;
use tdb_cycle::{BlockSearcher, HopConstraint};
use tdb_graph::{ActiveSet, Graph, VertexId};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::solver::{CoverAlgorithm, SolveContext, SolveError, SolveScratch};
use crate::stats::Timer;
use crate::top_down::{top_down_cover_with, ScanOrder, TopDownConfig};

/// Configuration of the parallel TDB++ extension.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads for the parallel phases. `0` means "number of CPUs":
    /// the value of [`std::thread::available_parallelism`], falling back to
    /// `1` on platforms where that is unknowable (see
    /// [`ParallelConfig::resolved_threads`] for the exact resolution).
    pub num_threads: usize,
    /// Scan order of the sequential phase.
    pub scan_order: ScanOrder,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            num_threads: 0,
            scan_order: ScanOrder::Ascending,
        }
    }
}

impl ParallelConfig {
    /// The worker-thread count this configuration resolves to: `num_threads`
    /// when positive, otherwise [`std::thread::available_parallelism`]
    /// (falling back to `1` when the platform cannot report it).
    pub fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            crate::solver::available_threads()
        }
    }
}

/// Compute, in parallel, which vertices lie on at least one hop-constrained
/// cycle of the full graph.
///
/// The returned mask has `true` for vertices that are *candidates* (may lie on
/// a cycle) and `false` for vertices proven cycle-free.
pub fn parallel_cycle_candidates<G: Graph + Sync>(
    g: &G,
    constraint: &HopConstraint,
    num_threads: usize,
) -> Vec<bool> {
    let mut candidates = Vec::new();
    bounded_cycle_candidates(g, constraint, num_threads, None, &mut candidates)
        .expect("deadline-free candidate sweep cannot expire");
    candidates
}

/// The sharded candidate sweep behind [`parallel_cycle_candidates`], with an
/// optional deadline and a caller-provided (reusable) mask buffer. Worker
/// threads poll the deadline every 64 vertices and abandon their shard once it
/// passes, in which case `Err(())` is returned and the partial mask content is
/// meaningless.
fn bounded_cycle_candidates<G: Graph + Sync>(
    g: &G,
    constraint: &HopConstraint,
    num_threads: usize,
    deadline: Option<Instant>,
    candidates: &mut Vec<bool>,
) -> Result<(), ()> {
    let n = g.num_vertices();
    let threads = num_threads.max(1).min(n.max(1));
    candidates.clear();
    candidates.resize(n, false);
    if n == 0 {
        return Ok(());
    }
    let active = ActiveSet::all_active(n);
    let queries = AtomicU64::new(0);
    let expired = AtomicBool::new(false);

    let chunk_size = n.div_ceil(threads);
    let chunks: Vec<(usize, &mut [bool])> = candidates
        .chunks_mut(chunk_size)
        .enumerate()
        .map(|(i, c)| (i * chunk_size, c))
        .collect();

    std::thread::scope(|scope| {
        for (offset, chunk) in chunks {
            let active = &active;
            let queries = &queries;
            let expired = &expired;
            scope.spawn(move || {
                let mut searcher = BlockSearcher::new(n);
                let mut filter = BfsFilter::new(n);
                for (i, slot) in chunk.iter_mut().enumerate() {
                    if i % 64 == 0 {
                        if let Some(deadline) = deadline {
                            if Instant::now() > deadline {
                                expired.store(true, Ordering::Relaxed);
                            }
                        }
                        if expired.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    let v = (offset + i) as VertexId;
                    // Cheap filter first, full search only when inconclusive.
                    let walk = filter.shortest_closed_walk(g, active, v, constraint.max_hops);
                    *slot = match walk {
                        None => false,
                        Some(len) if constraint.covers_len(len) => true,
                        Some(_) => {
                            queries.fetch_add(1, Ordering::Relaxed);
                            searcher.is_on_constrained_cycle(g, active, v, constraint)
                        }
                    };
                }
            });
        }
    });

    if expired.load(Ordering::Relaxed) {
        Err(())
    } else {
        Ok(())
    }
}

/// Budget- and progress-aware parallel TDB++.
///
/// The deadline is honored in both phases: the sharded pre-filter polls it
/// from every worker thread, and the sequential scan checks it per vertex.
pub fn parallel_top_down_cover_with<G: Graph + Sync>(
    g: &G,
    constraint: &HopConstraint,
    config: &ParallelConfig,
    ctx: &mut SolveContext,
) -> Result<CoverRun, SolveError> {
    let mut scratch = ctx.take_scratch();
    let result = parallel_top_down_scan(g, constraint, config, ctx, &mut scratch);
    ctx.restore_scratch(scratch);
    result
}

/// Both phases of the parallel solve, factored out so the entry point can hand
/// the borrowed scratch back to the context on every exit path. The sharded
/// pre-filter keeps per-thread engines (they cannot share one scratch); the
/// sequential phase reuses the context's.
fn parallel_top_down_scan<G: Graph + Sync>(
    g: &G,
    constraint: &HopConstraint,
    config: &ParallelConfig,
    ctx: &mut SolveContext,
    scratch: &mut SolveScratch,
) -> Result<CoverRun, SolveError> {
    ctx.ensure_armed();
    let timer = Timer::start();
    let threads = config.resolved_threads();
    let n = g.num_vertices();

    bounded_cycle_candidates(g, constraint, threads, ctx.deadline(), &mut scratch.mask)
        .map_err(|()| ctx.budget_error())?;
    let precleared = scratch.mask.iter().filter(|&&c| !c).count();

    // Sequential scan over the candidates only. Vertices cleared by the
    // pre-filter start out released (active) exactly as if the scan had tested
    // and released them.
    let mut metrics = RunMetrics::new(
        "TDB++/par",
        constraint.max_hops,
        constraint.include_two_cycles,
    );
    metrics.working_edges = g.num_edges();
    metrics.scc_released = precleared as u64;

    scratch.reset_active(n, false);
    for v in 0..n as VertexId {
        if !scratch.mask[v as usize] {
            scratch.active.activate(v);
        }
    }

    let mut cover_vertices: Vec<VertexId> = Vec::new();

    crate::top_down::scan_permutation_into(g, config.scan_order, &mut scratch.order);
    crate::top_down::order_costly_first(ctx.vertex_costs(), &mut scratch.order);

    let total = scratch.order.len() as u64;
    for scanned in 0..scratch.order.len() {
        let v = scratch.order[scanned];
        ctx.checkpoint()?;
        ctx.report_progress(scanned as u64, total, cover_vertices.len() as u64);
        if !scratch.mask[v as usize] {
            continue;
        }
        scratch.active.activate(v);
        if scratch
            .filter
            .shortest_closed_walk(g, &scratch.active, v, constraint.max_hops)
            .is_none()
        {
            metrics.filter_released += 1;
            continue;
        }
        metrics.cycle_queries += 1;
        if scratch
            .block
            .is_on_constrained_cycle(g, &scratch.active, v, constraint)
        {
            cover_vertices.push(v);
            scratch.active.deactivate(v);
        }
    }

    metrics.elapsed = timer.elapsed();
    ctx.report_progress(total, total, cover_vertices.len() as u64);
    ctx.accumulate(&metrics);
    Ok(CoverRun {
        cover: CycleCover::from_vertices(cover_vertices),
        metrics,
    })
}

impl CoverAlgorithm for ParallelConfig {
    fn name(&self) -> &'static str {
        "TDB++/par"
    }

    fn solve(
        &self,
        g: &tdb_graph::CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        parallel_top_down_cover_with(g, constraint, self, ctx)
    }
}

/// Parallel validity check of a cover: shard the per-vertex searches of the
/// reduced graph across threads. Returns `true` when no uncovered constrained
/// cycle exists.
pub fn parallel_is_valid_cover<G: Graph + Sync>(
    g: &G,
    cover: &CycleCover,
    constraint: &HopConstraint,
    num_threads: usize,
) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    let threads = num_threads.max(1).min(n);
    let active = cover.reduced_active_set(n);
    let violation: Mutex<Option<VertexId>> = Mutex::new(None);

    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let active = &active;
            let violation = &violation;
            scope.spawn(move || {
                let mut searcher = BlockSearcher::new(n);
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                for v in lo..hi {
                    if violation.lock().unwrap().is_some() {
                        return;
                    }
                    let v = v as VertexId;
                    if active.is_active(v)
                        && searcher.is_on_constrained_cycle(g, active, v, constraint)
                    {
                        *violation.lock().unwrap() = Some(v);
                        return;
                    }
                }
            });
        }
    });

    violation.into_inner().unwrap().is_none()
}

/// Convenience: sequential verification fallback used in tests to compare
/// against the parallel path.
pub fn sequential_reference_cover<G: Graph>(g: &G, constraint: &HopConstraint) -> CoverRun {
    top_down_cover_with(
        g,
        constraint,
        &TopDownConfig::tdb_plus_plus(),
        &mut SolveContext::new(),
    )
    .expect("unbudgeted solve cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_cover;
    use tdb_graph::gen::{erdos_renyi_gnm, preferential_attachment, PreferentialConfig};

    fn parallel_top_down_cover<G: Graph + Sync>(
        g: &G,
        constraint: &HopConstraint,
        config: &ParallelConfig,
    ) -> CoverRun {
        parallel_top_down_cover_with(g, constraint, config, &mut SolveContext::new())
            .expect("unbudgeted solve cannot fail")
    }

    #[test]
    fn parallel_matches_sequential_cover_exactly() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(80, 400, seed);
            let constraint = HopConstraint::new(4);
            let seq = sequential_reference_cover(&g, &constraint);
            for threads in [1usize, 2, 4] {
                let par = parallel_top_down_cover(
                    &g,
                    &constraint,
                    &ParallelConfig {
                        num_threads: threads,
                        scan_order: ScanOrder::Ascending,
                    },
                );
                assert_eq!(
                    par.cover, seq.cover,
                    "seed {seed}, threads {threads}: parallel differs from sequential"
                );
            }
        }
    }

    #[test]
    fn parallel_cover_is_valid() {
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 300,
            out_degree: 3,
            reciprocity: 0.2,
            random_rewire: 0.1,
            seed: 13,
        });
        let constraint = HopConstraint::new(5);
        let run = parallel_top_down_cover(&g, &constraint, &ParallelConfig::default());
        assert!(is_valid_cover(&g, &run.cover, &constraint));
        assert!(parallel_is_valid_cover(&g, &run.cover, &constraint, 4));
    }

    #[test]
    fn candidate_mask_is_sound() {
        // A vertex marked non-candidate must not be on any constrained cycle.
        let g = erdos_renyi_gnm(60, 200, 9);
        let constraint = HopConstraint::new(4);
        let candidates = parallel_cycle_candidates(&g, &constraint, 3);
        let active = ActiveSet::all_active(g.num_vertices());
        let mut searcher = BlockSearcher::new(g.num_vertices());
        for v in g.vertices() {
            let really = searcher.is_on_constrained_cycle(&g, &active, v, &constraint);
            if !candidates[v as usize] {
                assert!(!really, "vertex {v} wrongly cleared");
            } else {
                // Candidates are allowed to be false positives of the filter,
                // but with the block search in the pipeline they are exact.
                assert!(really, "vertex {v} wrongly kept as candidate");
            }
        }
    }

    #[test]
    fn parallel_verifier_detects_bad_covers() {
        let g = tdb_graph::gen::complete_digraph(6);
        let constraint = HopConstraint::new(3);
        let empty = CycleCover::empty();
        assert!(!parallel_is_valid_cover(&g, &empty, &constraint, 2));
        let good = sequential_reference_cover(&g, &constraint).cover;
        assert!(parallel_is_valid_cover(&g, &good, &constraint, 2));
    }

    #[test]
    fn zero_thread_config_resolves_to_available_parallelism() {
        // Pin the documented contract exactly: 0 resolves to the value of
        // available_parallelism, or to 1 when the platform cannot report it —
        // never to 0 (which would panic the chunked sharding below).
        let cfg = ParallelConfig::default();
        assert_eq!(cfg.num_threads, 0, "default must take the CPU-count path");
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(cfg.resolved_threads(), expected);
        assert!(cfg.resolved_threads() >= 1);
    }

    #[test]
    fn explicit_thread_counts_are_passed_through_unchanged() {
        for threads in [1usize, 2, 7, 64] {
            let cfg = ParallelConfig {
                num_threads: threads,
                scan_order: ScanOrder::Ascending,
            };
            assert_eq!(cfg.resolved_threads(), threads);
        }
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = tdb_graph::CsrGraph::empty(0);
        let constraint = HopConstraint::new(3);
        let run = parallel_top_down_cover(&g, &constraint, &ParallelConfig::default());
        assert!(run.cover.is_empty());
        assert!(parallel_is_valid_cover(&g, &run.cover, &constraint, 2));
    }
}
