//! The unified solver surface: one entry point for every cover algorithm.
//!
//! The rest of the crate implements three algorithm families behind unrelated
//! per-family config structs. This module unifies them:
//!
//! * [`CoverAlgorithm`] — the trait every algorithm configuration implements.
//!   An algorithm is a *value* ([`TopDownConfig`], [`BottomUpConfig`],
//!   [`DarcDvConfig`], [`ParallelConfig`]) that you configure once and run
//!   against any graph.
//! * [`Solver`] — the execution engine behind a
//!   [`CoverRequest`](crate::CoverRequest): [`Solver::from_request`] maps a
//!   request onto the right family configuration and the shared run options
//!   (objective, costs, budget, scan order, threads, time budget, seed,
//!   sharding); the `with_*` builders are delegating sugar over the same
//!   fields.
//! * [`SolveContext`] — shared run state threaded through every algorithm:
//!   RNG seed, per-vertex costs when the objective is weight-aware,
//!   deadline/budget checks, accumulated [`RunMetrics`] across solves, and an
//!   optional progress callback.
//! * [`SolveError`] — typed failure; today the only variant is
//!   [`SolveError::BudgetExceeded`], returned when a configured time budget
//!   runs out mid-solve instead of running unbounded.
//!
//! ```
//! use std::time::Duration;
//! use tdb_core::prelude::*;
//! use tdb_graph::gen::directed_cycle;
//!
//! let g = directed_cycle(4);
//! let constraint = HopConstraint::new(5);
//! let run = Solver::new(Algorithm::TdbPlusPlus)
//!     .with_time_budget(Duration::from_secs(30))
//!     .solve(&g, &constraint)
//!     .expect("well within budget");
//! assert_eq!(run.cover_size(), 1);
//! ```

use std::time::{Duration, Instant};

use tdb_cycle::{BfsFilter, BlockSearcher, HopConstraint, NaiveSearcher};
use tdb_graph::{ActiveSet, CsrGraph, FixedBitSet};

use crate::bottom_up::BottomUpConfig;
use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::darc::DarcDvConfig;
use crate::parallel::ParallelConfig;
use crate::request::{self, Budget, CoverReport, CoverRequest, Objective};
use crate::stats::Timer;
use crate::top_down::{ScanOrder, TopDownConfig};
use crate::two_cycle::minimal_two_cycle_cover;
use crate::Algorithm;
use tdb_graph::{CostModel, Graph, VertexId};

/// Why a solve did not produce a cover.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The configured time budget ran out before the algorithm finished.
    BudgetExceeded {
        /// The budget that was configured.
        budget: Duration,
        /// Wall-clock time elapsed when the overrun was detected.
        elapsed: Duration,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::BudgetExceeded { budget, elapsed } => write!(
                f,
                "time budget exceeded: {:.3}s elapsed of a {:.3}s budget",
                elapsed.as_secs_f64(),
                budget.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Reusable scratch state shared by every solve run through one
/// [`SolveContext`].
///
/// A single static solve allocates a handful of `O(n)` structures — the active
/// set, the search engines' stamp vectors and bitsets, the scan permutation.
/// Amortized over one solve that is negligible, but the dynamic repair loop,
/// the serving layer, and the benches issue *many* solves against same-sized
/// graphs, where re-allocating this state per solve dominates the small-query
/// regime. `SolveScratch` owns all of it once; the algorithm entry points
/// borrow it from the context ([`SolveContext::take_scratch`]), reset the
/// epoch-stamped structures in `O(1)`, and hand it back
/// ([`SolveContext::restore_scratch`]) so the next solve starts warm.
///
/// Every engine auto-resizes at query time, so a scratch warmed on a small
/// graph is always safe to reuse on a larger one.
#[derive(Debug)]
pub struct SolveScratch {
    /// Block/barrier DFS engine (Algorithms 9–10), used by `TDB+`/`TDB++` and
    /// the block-engine minimize pass.
    pub block: BlockSearcher,
    /// Naive bounded DFS engine (Algorithm 5), used by plain `TDB`, the
    /// bottom-up family, and the paper's `BUR+` minimize pass.
    pub naive: NaiveSearcher,
    /// BFS upper-bound filter (Algorithm 11).
    pub filter: BfsFilter,
    /// The working active set (`G0` of the top-down scan, the reduced graph of
    /// the minimize pass). Reset via [`SolveScratch::reset_active`].
    pub active: ActiveSet,
    /// Pre-released-vertex marks of the SCC pre-filter.
    pub prereleased: FixedBitSet,
    /// Bottom-up hit counters (`H` of Algorithm 4).
    pub hit_count: Vec<u32>,
    /// Scan-permutation buffer.
    pub order: Vec<tdb_graph::VertexId>,
    /// General-purpose per-vertex boolean mask (two-cycle residual removal,
    /// parallel candidate sweep).
    pub mask: Vec<bool>,
}

impl Default for SolveScratch {
    fn default() -> Self {
        SolveScratch {
            block: BlockSearcher::new(0),
            naive: NaiveSearcher::new(0),
            filter: BfsFilter::new(0),
            active: ActiveSet::all_inactive(0),
            prereleased: FixedBitSet::new(0),
            hit_count: Vec::new(),
            order: Vec::new(),
            mask: Vec::new(),
        }
    }
}

impl SolveScratch {
    /// Reset [`SolveScratch::active`] to exactly `n` vertices, all in the
    /// given state. Reuses the existing words when the size matches (the
    /// steady-state case of repeated solves on one graph).
    pub fn reset_active(&mut self, n: usize, active: bool) {
        if self.active.len() != n {
            self.active = if active {
                ActiveSet::all_active(n)
            } else {
                ActiveSet::all_inactive(n)
            };
        } else if active {
            self.active.reset_all_active();
        } else {
            self.active.reset_all_inactive();
        }
    }

    /// Clear and size [`SolveScratch::prereleased`] for `n` vertices.
    pub fn reset_prereleased(&mut self, n: usize) {
        self.prereleased.grow(n, false);
        self.prereleased.clear_all();
    }

    /// Zero and size [`SolveScratch::hit_count`] for `n` vertices, reusing the
    /// existing capacity.
    pub fn reset_hit_count(&mut self, n: usize) {
        self.hit_count.clear();
        self.hit_count.resize(n, 0);
    }

    /// Clear and size [`SolveScratch::mask`] for `n` vertices, reusing the
    /// existing capacity.
    pub fn reset_mask(&mut self, n: usize) {
        self.mask.clear();
        self.mask.resize(n, false);
    }
}

/// A progress snapshot reported through [`SolveContext::report_progress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveProgress {
    /// Vertices (or work items) processed so far in the current phase.
    pub processed: u64,
    /// Total vertices (or work items) of the current phase.
    pub total: u64,
    /// Cover vertices selected so far.
    pub cover_size: u64,
}

type ProgressFn<'a> = Box<dyn FnMut(SolveProgress) + 'a>;

/// Shared run state threaded through every cover algorithm.
///
/// A context carries the pieces of a solve that are not algorithm-specific:
/// the RNG seed, the optional wall-clock budget (armed into a deadline when a
/// solve starts), metrics accumulated across consecutive solves, and an
/// optional progress callback. Algorithms call [`SolveContext::checkpoint`] at
/// the top of their main loops, which is how a budget interrupts a run.
pub struct SolveContext<'a> {
    /// Seed for any randomized choices an algorithm makes (e.g. the
    /// [`ScanOrder::Random`] permutation when the caller did not pin one).
    pub seed: u64,
    costs: CostModel,
    budget: Option<Duration>,
    deadline: Option<Instant>,
    armed_at: Option<Instant>,
    totals: RunMetrics,
    solves: u64,
    progress: Option<ProgressFn<'a>>,
    scratch: Option<SolveScratch>,
}

impl std::fmt::Debug for SolveContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveContext")
            .field("seed", &self.seed)
            .field("budget", &self.budget)
            .field("solves", &self.solves)
            .field("has_progress_callback", &self.progress.is_some())
            .finish()
    }
}

impl Default for SolveContext<'_> {
    fn default() -> Self {
        SolveContext::new()
    }
}

impl<'a> SolveContext<'a> {
    /// A fresh context: no budget, seed 0, no progress callback.
    pub fn new() -> Self {
        SolveContext {
            seed: 0,
            costs: CostModel::Uniform,
            budget: None,
            deadline: None,
            armed_at: None,
            totals: RunMetrics::default(),
            solves: 0,
            progress: None,
            scratch: None,
        }
    }

    /// Install per-vertex costs, making every algorithm threaded through this
    /// context weight-aware. [`Solver::solve_with`] sets this automatically
    /// when the solver's objective is [`Objective::MinWeight`] and its cost
    /// model is non-uniform; all weight-aware code paths are *ordering*
    /// refinements that degenerate exactly to the unweighted behavior under
    /// equal weights (see [`crate::request`] for the argument).
    pub fn set_vertex_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// The per-vertex costs this context threads into the algorithms
    /// ([`CostModel::Uniform`] unless [`SolveContext::set_vertex_costs`] was
    /// called).
    pub fn vertex_costs(&self) -> &CostModel {
        &self.costs
    }

    /// Borrow the context's reusable solve scratch, creating a cold one on the
    /// first call. The caller must hand it back with
    /// [`SolveContext::restore_scratch`] once the solve finishes (success or
    /// failure), or the next solve starts cold again.
    ///
    /// Taking the scratch *out* of the context (instead of borrowing through
    /// it) is what lets algorithms keep calling [`SolveContext::checkpoint`]
    /// and [`SolveContext::report_progress`] while holding the engines
    /// mutably.
    pub fn take_scratch(&mut self) -> SolveScratch {
        self.scratch.take().unwrap_or_default()
    }

    /// Return a scratch previously obtained with
    /// [`SolveContext::take_scratch`], making its warmed allocations available
    /// to the next solve.
    pub fn restore_scratch(&mut self, scratch: SolveScratch) {
        self.scratch = Some(scratch);
    }

    /// Set the wall-clock budget for subsequent solves.
    pub fn set_time_budget(&mut self, budget: Duration) {
        self.budget = Some(budget);
    }

    /// Remove any configured budget.
    pub fn clear_time_budget(&mut self) {
        self.budget = None;
        self.deadline = None;
    }

    /// Install a progress callback invoked by the algorithms as they scan.
    pub fn set_progress_callback(&mut self, callback: impl FnMut(SolveProgress) + 'a) {
        self.progress = Some(Box::new(callback));
    }

    /// Arm the deadline from the configured budget, marking "now" as the start
    /// of the solve. [`Solver::solve_with`] calls this at the start of every
    /// solve; algorithm entry points call [`SolveContext::ensure_armed`]
    /// instead so that a hand-built context works without an explicit `arm`.
    pub fn arm(&mut self) {
        let now = Instant::now();
        self.armed_at = Some(now);
        self.deadline = self.budget.map(|b| now + b);
    }

    /// Arm the deadline unless one is already armed.
    ///
    /// Called by every algorithm entry point, so a context with a budget set
    /// enforces it even when the caller never went through [`Solver`]. Nested
    /// passes (e.g. minimal pruning inside a bottom-up solve) see the deadline
    /// already armed and leave it untouched. Note the armed deadline persists
    /// across consecutive direct solves with the same context (the budget then
    /// bounds their *combined* wall-clock time); call [`SolveContext::arm`] to
    /// restart the window per solve, as [`Solver::solve_with`] does.
    pub fn ensure_armed(&mut self) {
        if self.budget.is_some() && self.deadline.is_none() {
            self.arm();
        }
    }

    /// The armed deadline of the current solve, if a budget is configured.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Build the error describing the current overrun.
    pub fn budget_error(&self) -> SolveError {
        SolveError::BudgetExceeded {
            budget: self.budget.unwrap_or_default(),
            elapsed: self.armed_at.map(|t| t.elapsed()).unwrap_or_default(),
        }
    }

    /// Budget check, called by algorithms at the top of their main loops.
    ///
    /// Free when no budget is configured; with one, it costs a monotonic clock
    /// read. Returns [`SolveError::BudgetExceeded`] once the deadline passes.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), SolveError> {
        match self.deadline {
            Some(deadline) if Instant::now() > deadline => Err(self.budget_error()),
            _ => Ok(()),
        }
    }

    /// Report progress to the installed callback (no-op without one).
    #[inline]
    pub fn report_progress(&mut self, processed: u64, total: u64, cover_size: u64) {
        if let Some(callback) = self.progress.as_mut() {
            callback(SolveProgress {
                processed,
                total,
                cover_size,
            });
        }
    }

    /// Fold one finished run's metrics into the context's running totals and
    /// publish them to the global metrics registry.
    pub fn accumulate(&mut self, metrics: &RunMetrics) {
        self.solves += 1;
        self.totals.absorb(metrics);
        tdb_obs::counter!("tdb_solves_total").inc();
        tdb_obs::counter!("tdb_solve_cycle_queries_total").add(metrics.cycle_queries);
        tdb_obs::counter!("tdb_solve_filter_released_total").add(metrics.filter_released);
        tdb_obs::counter!("tdb_solve_scc_released_total").add(metrics.scc_released);
        tdb_obs::counter!("tdb_solve_minimal_pruned_total").add(metrics.minimal_pruned);
        tdb_obs::event!(
            tdb_obs::Level::Debug,
            "core/solve",
            algo = metrics.algorithm.clone(),
            k = metrics.k,
            elapsed_us = metrics.elapsed.as_secs_f64() * 1e6,
            cycle_queries = metrics.cycle_queries,
            minimal_pruned = metrics.minimal_pruned,
        );
    }

    /// Metrics accumulated over every solve performed with this context.
    pub fn totals(&self) -> &RunMetrics {
        &self.totals
    }

    /// Number of completed solves accumulated into [`SolveContext::totals`].
    pub fn completed_solves(&self) -> u64 {
        self.solves
    }

    /// Capture the budget state for propagation into per-shard contexts.
    pub(crate) fn snapshot(&self) -> ContextSnapshot {
        ContextSnapshot {
            seed: self.seed,
            costs: self.costs.clone(),
            budget: self.budget,
            deadline: self.deadline,
            armed_at: self.armed_at,
        }
    }
}

/// A cheaply cloneable snapshot of a [`SolveContext`]'s budget and cost state.
///
/// The sharded executor cannot hand the parent context to worker threads (it
/// may carry a non-`Sync` progress callback), so it snapshots the armed
/// deadline and cost model once and materializes an equivalent child context
/// per shard: every shard then races the *same* wall-clock deadline the
/// caller armed. Costs travel in global vertex ids; the executor projects
/// them through each shard's id map before solving (see
/// [`crate::partition`]).
#[derive(Debug, Clone)]
pub(crate) struct ContextSnapshot {
    seed: u64,
    costs: CostModel,
    budget: Option<Duration>,
    deadline: Option<Instant>,
    armed_at: Option<Instant>,
}

impl ContextSnapshot {
    /// A fresh context sharing this snapshot's seed, costs, and armed
    /// deadline.
    pub(crate) fn materialize(&self) -> SolveContext<'static> {
        SolveContext {
            seed: self.seed,
            costs: self.costs.clone(),
            budget: self.budget,
            deadline: self.deadline,
            armed_at: self.armed_at,
            totals: RunMetrics::default(),
            solves: 0,
            progress: None,
            scratch: None,
        }
    }
}

/// A hop-constrained cycle cover algorithm as a configured value.
///
/// Implemented by every per-family configuration struct in the crate
/// ([`TopDownConfig`], [`BottomUpConfig`], [`DarcDvConfig`],
/// [`ParallelConfig`]), which is what lets harnesses hold a heterogeneous
/// `Box<dyn CoverAlgorithm>` and sweep algorithms uniformly.
pub trait CoverAlgorithm {
    /// Display name used in tables and metrics (`"TDB++"`, `"BUR+"`, ...).
    fn name(&self) -> &'static str;

    /// Compute a cover of `g` under `constraint`, honoring the budget and
    /// progress callback carried by `ctx`.
    fn solve(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError>;
}

/// How a [`Solver`] treats 2-cycles (bidirectional edge pairs), the Table IV
/// dimension of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TwoCycleMode {
    /// Cover whatever the caller's [`HopConstraint`] asks for (the default):
    /// 2-cycles are covered iff `constraint.include_two_cycles` is set.
    #[default]
    FollowConstraint,
    /// Force Table IV mode: the constraint is upgraded to
    /// [`HopConstraint::with_two_cycles`] regardless of what the caller passed,
    /// and the configured algorithm covers lengths `2..=k` directly.
    Integrated,
    /// The paper's "verify 2-cycles separately" strategy, generalized from
    /// [`crate::two_cycle::combined_cover`] to every algorithm: a minimal
    /// matching-based 2-cycle cover is computed first, and the configured
    /// algorithm then covers the `3..=k` cycles of the residual graph. The
    /// union is valid for `2..=k` but typically a little larger than
    /// [`TwoCycleMode::Integrated`].
    Separate,
}

/// Whether and how a [`Solver`] partitions the graph into strongly connected
/// components and solves them as independent shards.
///
/// Every constrained cycle lies inside one SCC, so the cover of a graph is the
/// disjoint union of the covers of its non-trivial components (see
/// [`crate::partition`] for the argument). Sharding exploits that: components
/// are extracted as compact subgraphs and solved concurrently, largest first,
/// with the configured algorithm. Because the extraction preserves the
/// relative order of vertex ids, a sharded solve with the default ascending
/// scan order returns **exactly** the cover of the unsharded solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardingMode {
    /// No partitioning: the algorithm runs once over the whole graph.
    #[default]
    Off,
    /// Partition and solve shards on `available_parallelism` worker threads.
    Auto,
    /// Partition and solve shards on the given number of worker threads
    /// (`0` behaves like [`ShardingMode::Auto`]; `1` still partitions, which
    /// isolates the decomposition itself for benchmarks and tests).
    Threads(usize),
}

impl ShardingMode {
    /// Whether this mode partitions at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, ShardingMode::Off)
    }

    /// Worker threads this mode resolves to (`None` for [`ShardingMode::Off`]).
    pub fn resolved_threads(&self) -> Option<usize> {
        match *self {
            ShardingMode::Off => None,
            ShardingMode::Auto | ShardingMode::Threads(0) => Some(available_threads()),
            ShardingMode::Threads(n) => Some(n),
        }
    }
}

/// The machine's available parallelism, defaulting to `1` when the platform
/// cannot report it — the one resolution behind every "`0` = number of CPUs"
/// knob in the crate ([`ShardingMode`], [`crate::parallel::ParallelConfig`]).
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The unified entry point: configure once, solve any graph.
///
/// `Solver` is the execution engine behind [`CoverRequest`]:
/// [`Solver::from_request`] is the primary constructor, mapping a request's
/// [`Algorithm`] to its family configuration and applying the shared options
/// (objective, costs, budget, scan order, threads, time budget, seed,
/// sharding) in one place. The `with_*` builders are delegating sugar over
/// the same fields for call sites that start from [`Solver::new`].
///
/// [`Solver::solve`] returns the raw [`CoverRun`] (cover + metrics);
/// [`Solver::solve_report`] additionally applies the [`Budget`], prices the
/// cover, and (on request) explains it — see [`CoverReport`].
///
/// ```
/// use tdb_core::prelude::*;
/// use tdb_graph::gen::erdos_renyi_gnm;
///
/// let g = erdos_renyi_gnm(40, 160, 7);
/// let constraint = HopConstraint::new(4);
/// for algorithm in Algorithm::all() {
///     let run = Solver::new(algorithm).solve(&g, &constraint).unwrap();
///     assert!(is_valid_cover(&g, &run.cover, &constraint), "{algorithm}");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solver {
    algorithm: Algorithm,
    scan_order: Option<ScanOrder>,
    threads: usize,
    time_budget: Option<Duration>,
    seed: u64,
    two_cycle_mode: TwoCycleMode,
    sharding: ShardingMode,
    objective: Objective,
    costs: CostModel,
    budget: Budget,
    explain: bool,
    residual_cap: usize,
}

impl Solver {
    /// A solver for `algorithm` with that algorithm's default configuration.
    pub fn new(algorithm: Algorithm) -> Self {
        Solver::from_request(CoverRequest::new(algorithm, 0))
    }

    /// The primary constructor: a solver executing `request`.
    ///
    /// The request's `k`/`include_two_cycles` are carried by the
    /// [`HopConstraint`] passed to the solve methods
    /// ([`CoverRequest::constraint`] builds it); everything else maps onto
    /// solver state here.
    pub fn from_request(request: CoverRequest) -> Self {
        Solver {
            algorithm: request.algorithm,
            scan_order: request.scan_order,
            threads: request.threads,
            time_budget: request.time_budget,
            seed: request.seed,
            two_cycle_mode: request.two_cycle_mode,
            sharding: request.sharding,
            objective: request.objective,
            costs: request.costs,
            budget: request.budget,
            explain: request.explain,
            residual_cap: request.residual_cap,
        }
    }

    /// The algorithm this solver runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// What this solver minimizes (see [`Objective`]).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Per-vertex removal costs, consulted by [`Objective::MinWeight`] and
    /// [`Budget::MaxCost`].
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Operational cap applied by [`Solver::solve_report`] (see [`Budget`]).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Have [`Solver::solve_report`] compute per-breaker statistics
    /// ([`CoverReport::breaker_stats`]).
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Cap on residual cycles enumerated by a budget-exhausted report.
    pub fn with_residual_cap(mut self, cap: usize) -> Self {
        self.residual_cap = cap;
        self
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The configured cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Override the vertex scan order (top-down and parallel families; the
    /// bottom-up and DARC families scan ascending by construction and ignore
    /// this).
    pub fn with_scan_order(mut self, order: ScanOrder) -> Self {
        self.scan_order = Some(order);
        self
    }

    /// Worker threads for the parallel family (`0` = number of CPUs). Ignored
    /// by the sequential algorithms.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Wall-clock budget: [`Solver::solve`] returns
    /// [`SolveError::BudgetExceeded`] instead of running past it.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Seed for randomized choices (currently the [`ScanOrder::Random`]
    /// permutation when no explicit seed was pinned in the order itself).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Also cover 2-cycles (Table IV mode), regardless of the constraint the
    /// caller passes to [`Solver::solve`].
    ///
    /// `with_two_cycles(true)` selects [`TwoCycleMode::Integrated`]; `false`
    /// restores the default [`TwoCycleMode::FollowConstraint`]. Use
    /// [`Solver::with_two_cycle_mode`] for the separate two-phase strategy.
    pub fn with_two_cycles(self, enabled: bool) -> Self {
        self.with_two_cycle_mode(if enabled {
            TwoCycleMode::Integrated
        } else {
            TwoCycleMode::FollowConstraint
        })
    }

    /// Select how 2-cycles are handled (see [`TwoCycleMode`]).
    pub fn with_two_cycle_mode(mut self, mode: TwoCycleMode) -> Self {
        self.two_cycle_mode = mode;
        self
    }

    /// The configured 2-cycle handling.
    pub fn two_cycle_mode(&self) -> TwoCycleMode {
        self.two_cycle_mode
    }

    /// Partition the graph into strongly connected components and solve them
    /// as independent shards (see [`ShardingMode`]).
    ///
    /// Composes with every [`Algorithm`] and every [`TwoCycleMode`]: each
    /// shard runs the fully configured per-shard pipeline. With the default
    /// ascending scan order the merged cover is identical to the unsharded
    /// one; order variants that consult global degrees may differ in
    /// composition but remain valid and minimal.
    ///
    /// A progress callback installed on the context is coarse-grained under
    /// sharding: shards run on worker threads that cannot reach the caller's
    /// (non-`Sync`) callback, so it fires per *completed pipeline*, not per
    /// scanned vertex. For [`Algorithm::TdbParallel`] with auto thread count
    /// (`with_threads(0)`), each shard's inner pre-filter is pinned to one
    /// thread — the shard workers themselves are the parallelism.
    pub fn with_sharding(mut self, mode: ShardingMode) -> Self {
        self.sharding = mode;
        self
    }

    /// The solver each shard runs: this configuration, except that the
    /// parallel family's *auto* inner thread count is pinned to 1 so that
    /// shard workers do not multiply against `available_parallelism` (an
    /// explicit `with_threads(n)` is honored as given).
    pub(crate) fn shard_solver(&self) -> Solver {
        let mut shard = self.clone();
        if matches!(self.algorithm, Algorithm::TdbParallel) && shard.threads == 0 {
            shard.threads = 1;
        }
        shard
    }

    /// The configured sharding mode.
    pub fn sharding_mode(&self) -> ShardingMode {
        self.sharding
    }

    /// The scan order the configured algorithm will use.
    fn resolved_scan_order(&self) -> ScanOrder {
        match self.scan_order {
            Some(ScanOrder::Random(0)) => ScanOrder::Random(self.seed),
            Some(order) => order,
            None => ScanOrder::Ascending,
        }
    }

    /// Materialize the configured algorithm as a boxed [`CoverAlgorithm`].
    ///
    /// This is the single mapping from the [`Algorithm`] enum to the
    /// per-family configuration structs; everything downstream dispatches
    /// through the trait.
    pub fn build_algorithm(&self) -> Box<dyn CoverAlgorithm> {
        let order = self.resolved_scan_order();
        match self.algorithm {
            Algorithm::Bur => Box::new(BottomUpConfig::bur()),
            Algorithm::BurPlus => Box::new(BottomUpConfig::bur_plus()),
            Algorithm::DarcDv => Box::new(DarcDvConfig::new()),
            Algorithm::Tdb => Box::new(TopDownConfig::tdb().with_scan_order(order)),
            Algorithm::TdbPlus => Box::new(TopDownConfig::tdb_plus().with_scan_order(order)),
            Algorithm::TdbPlusPlus => {
                Box::new(TopDownConfig::tdb_plus_plus().with_scan_order(order))
            }
            Algorithm::TdbExtended => Box::new(TopDownConfig::extended().with_scan_order(order)),
            Algorithm::TdbParallel => Box::new(ParallelConfig {
                num_threads: self.threads,
                scan_order: order,
            }),
        }
    }

    /// A fresh [`SolveContext`] carrying this solver's seed, time budget, and
    /// (under [`Objective::MinWeight`] with a non-uniform model) per-vertex
    /// costs.
    pub fn context(&self) -> SolveContext<'static> {
        let mut ctx = SolveContext::new();
        ctx.seed = self.seed;
        if let Some(budget) = self.time_budget {
            ctx.set_time_budget(budget);
        }
        if self.weight_aware() {
            ctx.set_vertex_costs(self.costs.clone());
        }
        ctx
    }

    /// Whether this solver threads costs into the algorithms: the objective
    /// must ask for weight and the model must actually distinguish vertices.
    fn weight_aware(&self) -> bool {
        self.objective == Objective::MinWeight && !self.costs.is_uniform()
    }

    /// Compute a cover of `g` under `constraint`.
    pub fn solve(&self, g: &CsrGraph, constraint: &HopConstraint) -> Result<CoverRun, SolveError> {
        let mut ctx = self.context();
        self.solve_with(g, constraint, &mut ctx)
    }

    /// Compute a cover using a caller-provided context (for accumulating
    /// metrics across solves or installing a progress callback).
    pub fn solve_with(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        ctx.arm();
        if self.weight_aware() && ctx.vertex_costs().is_uniform() {
            ctx.set_vertex_costs(self.costs.clone());
        }
        match self.sharding.resolved_threads() {
            None => self.solve_shard(g, constraint, ctx),
            Some(threads) => crate::partition::solve_sharded(self, g, constraint, ctx, threads),
        }
    }

    /// Compute a structured [`CoverReport`]: solve, apply the configured
    /// [`Budget`], price the cover, and — when a budget dropped vertices or
    /// explanation was requested — enumerate residual cycles and per-breaker
    /// statistics.
    ///
    /// Budget trimming ranks the computed cover by cost-effectiveness (total
    /// degree per unit cost) and keeps the best vertices that fit; under
    /// sharding the cap is enforced here, globally on the merged cover, so a
    /// large shard's high-value breakers win over a small shard's marginal
    /// ones (the largest-first shard queue makes them available first).
    pub fn solve_report(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
    ) -> Result<CoverReport, SolveError> {
        let mut ctx = self.context();
        self.solve_report_with(g, constraint, &mut ctx)
    }

    /// [`Solver::solve_report`] with a caller-provided context.
    pub fn solve_report_with(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverReport, SolveError> {
        let run = self.solve_with(g, constraint, ctx)?;
        // Residual/explain enumeration must use the constraint the cover was
        // actually computed under, not the caller's literal one.
        let effective = match self.two_cycle_mode {
            TwoCycleMode::FollowConstraint => *constraint,
            TwoCycleMode::Integrated | TwoCycleMode::Separate => {
                HopConstraint::with_two_cycles(constraint.max_hops)
            }
        };
        let (kept, exhausted) = request::apply_budget(g, &run.cover, self.budget, &self.costs);
        let residual = if exhausted {
            request::enumerate_residual(g, &kept, &effective, self.residual_cap)
        } else {
            Vec::new()
        };
        let breaker_stats = if self.explain {
            request::breaker_statistics(g, &run.cover, &kept, &effective, &self.costs)
        } else {
            Vec::new()
        };
        Ok(CoverReport {
            total_cost: self.costs.total(kept.iter()),
            cover: kept,
            metrics: run.metrics,
            exhausted,
            residual,
            breaker_stats,
        })
    }

    /// The per-shard (equivalently: unsharded) solve pipeline — two-cycle-mode
    /// dispatch over an already-armed context. The sharded executor calls this
    /// once per extracted component.
    pub(crate) fn solve_shard(
        &self,
        g: &CsrGraph,
        constraint: &HopConstraint,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        match self.two_cycle_mode {
            TwoCycleMode::FollowConstraint => self.build_algorithm().solve(g, constraint, ctx),
            TwoCycleMode::Integrated => {
                let upgraded = HopConstraint::with_two_cycles(constraint.max_hops);
                self.build_algorithm().solve(g, &upgraded, ctx)
            }
            TwoCycleMode::Separate => self.solve_separate(g, constraint.max_hops, ctx),
        }
    }

    /// The `metrics.algorithm` label this solver's per-shard pipeline
    /// reports: the algorithm's display name, prefixed with `2CYC+` in the
    /// [`TwoCycleMode::Separate`] strategy. The single source of that format
    /// — [`solve_separate`](Solver::solve_separate) and the sharded merge
    /// both use it.
    pub(crate) fn metrics_label(&self) -> String {
        match self.two_cycle_mode {
            TwoCycleMode::Separate => format!("2CYC+{}", self.algorithm.name()),
            _ => self.algorithm.name().to_string(),
        }
    }

    /// The [`TwoCycleMode::Separate`] strategy: minimal 2-cycle cover first,
    /// then the configured algorithm on the residual graph for `3..=k`.
    fn solve_separate(
        &self,
        g: &CsrGraph,
        k: usize,
        ctx: &mut SolveContext,
    ) -> Result<CoverRun, SolveError> {
        let timer = Timer::start();
        let two = minimal_two_cycle_cover(g);
        let mut scratch = ctx.take_scratch();
        scratch.reset_mask(g.num_vertices());
        for v in two.iter() {
            scratch.mask[v as usize] = true;
        }
        let residual = g.remove_vertices(&scratch.mask);
        ctx.restore_scratch(scratch);
        let rest = self
            .build_algorithm()
            .solve(&residual, &HopConstraint::new(k), ctx)?;

        let mut metrics = rest.metrics;
        metrics.algorithm = self.metrics_label();
        metrics.include_two_cycles = true;
        metrics.working_edges = g.num_edges();
        let mut vertices: Vec<VertexId> = two.into_vertices();
        vertices.extend(rest.cover.iter());
        metrics.elapsed = timer.elapsed();
        Ok(CoverRun {
            cover: CycleCover::from_vertices(vertices),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_cover;
    use tdb_graph::gen::{complete_digraph, erdos_renyi_gnm};

    #[test]
    fn solver_runs_every_algorithm() {
        let g = erdos_renyi_gnm(30, 120, 5);
        let constraint = HopConstraint::new(4);
        for algorithm in Algorithm::all() {
            let run = Solver::new(algorithm).solve(&g, &constraint).unwrap();
            let v = verify_cover(&g, &run.cover, &constraint);
            assert!(v.is_valid, "{algorithm} invalid");
            assert_eq!(run.metrics.algorithm, algorithm.name());
        }
    }

    #[test]
    fn zero_budget_is_reported_not_ignored() {
        let g = complete_digraph(12);
        let constraint = HopConstraint::new(4);
        let err = Solver::new(Algorithm::TdbPlusPlus)
            .with_time_budget(Duration::ZERO)
            .solve(&g, &constraint)
            .unwrap_err();
        assert!(matches!(err, SolveError::BudgetExceeded { .. }));
        let msg = err.to_string();
        assert!(msg.contains("budget"), "{msg}");
    }

    #[test]
    fn context_budget_is_enforced_without_a_solver() {
        // A budget set directly on a hand-built context must bite even when
        // the caller goes through an algorithm entry point, not the Solver.
        let g = complete_digraph(12);
        let constraint = HopConstraint::new(4);
        let mut ctx = SolveContext::new();
        ctx.set_time_budget(Duration::ZERO);
        let err = crate::top_down::top_down_cover_with(
            &g,
            &constraint,
            &TopDownConfig::tdb_plus_plus(),
            &mut ctx,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::BudgetExceeded { .. }));
    }

    #[test]
    fn generous_budget_solves_normally() {
        let g = erdos_renyi_gnm(25, 100, 2);
        let constraint = HopConstraint::new(4);
        let run = Solver::new(Algorithm::TdbPlusPlus)
            .with_time_budget(Duration::from_secs(60))
            .solve(&g, &constraint)
            .unwrap();
        assert!(verify_cover(&g, &run.cover, &constraint).is_valid);
    }

    #[test]
    fn context_accumulates_metrics_across_solves() {
        let g = erdos_renyi_gnm(25, 100, 3);
        let constraint = HopConstraint::new(4);
        let solver = Solver::new(Algorithm::TdbPlusPlus);
        let mut ctx = solver.context();
        let a = solver.solve_with(&g, &constraint, &mut ctx).unwrap();
        let b = solver.solve_with(&g, &constraint, &mut ctx).unwrap();
        assert_eq!(ctx.completed_solves(), 2);
        assert_eq!(
            ctx.totals().cycle_queries,
            a.metrics.cycle_queries + b.metrics.cycle_queries
        );
    }

    #[test]
    fn progress_callback_fires() {
        let g = erdos_renyi_gnm(40, 160, 4);
        let constraint = HopConstraint::new(4);
        let solver = Solver::new(Algorithm::TdbPlusPlus);
        let mut calls = 0u64;
        let mut last_total = 0u64;
        {
            let mut ctx = solver.context();
            ctx.set_progress_callback(|p| {
                calls += 1;
                last_total = p.total;
            });
            solver.solve_with(&g, &constraint, &mut ctx).unwrap();
        }
        assert!(calls > 0, "progress callback never invoked");
        assert_eq!(last_total, g_num_vertices(&g));
    }

    fn g_num_vertices(g: &CsrGraph) -> u64 {
        use tdb_graph::Graph;
        g.num_vertices() as u64
    }

    #[test]
    fn two_cycle_builder_upgrades_the_constraint() {
        use tdb_graph::gen::{preferential_attachment, PreferentialConfig};
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 80,
            out_degree: 3,
            reciprocity: 0.5,
            random_rewire: 0.15,
            seed: 11,
        });
        let plain = HopConstraint::new(4);
        let upgraded = HopConstraint::with_two_cycles(4);
        for algorithm in Algorithm::all() {
            let via_builder = Solver::new(algorithm)
                .with_two_cycles(true)
                .solve(&g, &plain)
                .unwrap();
            let via_constraint = Solver::new(algorithm).solve(&g, &upgraded).unwrap();
            assert_eq!(via_builder.cover, via_constraint.cover, "{algorithm}");
            assert!(via_builder.metrics.include_two_cycles, "{algorithm}");
            assert!(
                verify_cover(&g, &via_builder.cover, &upgraded).is_valid,
                "{algorithm}"
            );
        }
        // Turning the flag back off restores FollowConstraint.
        let solver = Solver::new(Algorithm::TdbPlusPlus)
            .with_two_cycles(true)
            .with_two_cycles(false);
        assert_eq!(solver.two_cycle_mode(), TwoCycleMode::FollowConstraint);
    }

    #[test]
    fn separate_two_cycle_mode_is_valid_and_labelled() {
        use crate::two_cycle::covers_all_two_cycles;
        use tdb_graph::gen::{preferential_attachment, PreferentialConfig};
        let g = preferential_attachment(&PreferentialConfig {
            num_vertices: 100,
            out_degree: 3,
            reciprocity: 0.4,
            random_rewire: 0.1,
            seed: 29,
        });
        let upgraded = HopConstraint::with_two_cycles(4);
        for algorithm in [Algorithm::TdbPlusPlus, Algorithm::BurPlus] {
            let run = Solver::new(algorithm)
                .with_two_cycle_mode(TwoCycleMode::Separate)
                .solve(&g, &HopConstraint::new(4))
                .unwrap();
            assert!(
                verify_cover(&g, &run.cover, &upgraded).is_valid,
                "{algorithm}"
            );
            assert!(covers_all_two_cycles(&g, &run.cover), "{algorithm}");
            assert_eq!(
                run.metrics.algorithm,
                format!("2CYC+{}", algorithm.name()),
                "{algorithm}"
            );
            assert!(run.metrics.include_two_cycles);
        }
    }

    #[test]
    fn random_scan_order_uses_solver_seed() {
        let g = complete_digraph(9);
        let constraint = HopConstraint::new(4);
        let a = Solver::new(Algorithm::TdbPlusPlus)
            .with_scan_order(ScanOrder::Random(0))
            .with_seed(123)
            .solve(&g, &constraint)
            .unwrap();
        let b = Solver::new(Algorithm::TdbPlusPlus)
            .with_scan_order(ScanOrder::Random(123))
            .solve(&g, &constraint)
            .unwrap();
        assert_eq!(a.cover, b.cover);
    }
}
