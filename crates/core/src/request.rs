//! The objective-aware request/report surface: [`CoverRequest`] in,
//! [`CoverReport`] out.
//!
//! The paper's problem statement is minimum-*cardinality* cover: every vertex
//! is equally expensive and the solve either finishes or it doesn't. Real
//! deployments of the algorithm (fraud-ring suspension, deadlock victim
//! selection, circuit loop-breaking) add two dimensions the bare
//! `Vec<VertexId>` API cannot express:
//!
//! * **What to optimize** — suspending a high-value account costs more than a
//!   throwaway one. [`Objective::MinWeight`] plus a
//!   [`CostModel`](tdb_graph::CostModel) steers every heuristic decision
//!   (scan order, bottom-up pick, minimize order) toward cheap breakers.
//! * **What you can afford** — an operations cap ("at most 50 suspensions",
//!   "at most 10 000 cost units"). A [`Budget`] turns the solve into a
//!   best-effort one: the report says which cycles survive
//!   ([`CoverReport::residual`]) instead of silently pretending the cover is
//!   complete.
//!
//! A report can also *explain* itself: [`CoverReport::breaker_stats`] counts,
//! per cover vertex, the hop-constrained cycles that only that vertex breaks —
//! the analogue of a timing constrainer's "critical cycles through this
//! marked breaker".
//!
//! # Weight-aware minimize soundness
//!
//! Every weight-aware code path is an *ordering* change, never a decision
//! change, so validity and minimality are untouched:
//!
//! * The top-down scan is correct for **any** vertex permutation (Theorem 7's
//!   argument never uses the order), so stably scanning costlier vertices
//!   first — which biases the keep-prone late positions toward cheap
//!   vertices — still yields a valid, minimal cover.
//! * Algorithm 7 (minimize) is correct for any candidate examination order:
//!   its invariant is that a removed vertex stays *active* for subsequent
//!   checks, which holds regardless of order. Examining the costliest
//!   breakers first means an expensive redundant vertex is dropped before the
//!   cheap vertices that could re-justify it are examined, so the surviving
//!   minimal cover skews cheap.
//! * The bottom-up `FindCoverNode` pick is a heuristic; replacing "most hits"
//!   with "most hits per unit cost" (compared exactly via `u128`
//!   cross-multiplication) changes which valid cover is grown, not whether it
//!   is one.
//!
//! Under equal weights every one of these comparisons degenerates *exactly*
//! to the unweighted one (stable sorts become the identity, cross-multiplied
//! comparisons reduce to the original strict `>`), which is what lets the
//! differential suite hold all-1-weight [`Objective::MinWeight`] solves
//! bit-identical to [`Objective::MinCardinality`] across every algorithm.

use tdb_cycle::enumerate::enumerate_cycles;
use tdb_cycle::HopConstraint;
use tdb_graph::{CostModel, CsrGraph, Graph, VertexId};

use crate::cover::{CycleCover, RunMetrics};
use crate::solver::{ShardingMode, SolveError, Solver, TwoCycleMode};
use crate::top_down::ScanOrder;
use crate::Algorithm;

/// A hop-constrained simple cycle, as the vertex sequence rotated so its
/// minimum id comes first (the closing edge is implicit).
pub type Cycle = Vec<VertexId>;

/// What a solve minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Fewest cover vertices — the paper's objective and the default.
    #[default]
    MinCardinality,
    /// Cheapest cover under the request's [`CostModel`]: every heuristic
    /// decision (scan order, bottom-up pick, minimize order, dynamic repair)
    /// optimizes covered-cycles-per-unit-cost instead of raw counts.
    ///
    /// With a uniform cost model this is identical to
    /// [`Objective::MinCardinality`] — bit-for-bit, not just in size.
    MinWeight,
}

/// An operational cap on the cover a solve may return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// No cap (the default): the cover is complete and
    /// [`CoverReport::exhausted`] is always `false`.
    #[default]
    None,
    /// At most `n` cover vertices.
    MaxVertices(usize),
    /// At most this much total cost under the request's [`CostModel`].
    MaxCost(u64),
}

impl Budget {
    /// Whether this budget caps anything at all.
    pub fn is_limited(&self) -> bool {
        !matches!(self, Budget::None)
    }
}

/// Everything a cover computation needs, as one value.
///
/// This is the primary way to configure a solve;
/// [`Solver::from_request`] maps it onto the execution machinery and the
/// `Solver::with_*` builders remain as delegating sugar. [`CoverRequest::solve`]
/// runs it end to end:
///
/// ```
/// use tdb_core::prelude::*;
/// use tdb_graph::gen::directed_cycle;
///
/// let g = directed_cycle(4);
/// let report = CoverRequest::new(Algorithm::TdbPlusPlus, 5).solve(&g).unwrap();
/// assert_eq!(report.cover.len(), 1);
/// assert!(!report.exhausted);
/// assert_eq!(report.total_cost, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverRequest {
    /// Which algorithm family answers the request.
    pub algorithm: Algorithm,
    /// Hop constraint `k`: cycles of length `3..=k` (or `2..=k`, see
    /// [`CoverRequest::include_two_cycles`]) must be covered.
    pub k: usize,
    /// Cover 2-cycles as well (the Table IV dimension).
    pub include_two_cycles: bool,
    /// What to minimize.
    pub objective: Objective,
    /// Per-vertex removal costs; only consulted when
    /// [`CoverRequest::objective`] is [`Objective::MinWeight`] (or a budget is
    /// a [`Budget::MaxCost`]).
    pub costs: CostModel,
    /// Operational cap on the returned cover.
    pub budget: Budget,
    /// How 2-cycles are handled (see [`TwoCycleMode`]).
    pub two_cycle_mode: TwoCycleMode,
    /// Scan order override for the top-down families.
    pub scan_order: Option<ScanOrder>,
    /// Worker threads for the parallel family (`0` = number of CPUs).
    pub threads: usize,
    /// Wall-clock budget for the solve itself.
    pub time_budget: Option<std::time::Duration>,
    /// Seed for randomized choices.
    pub seed: u64,
    /// SCC sharding mode.
    pub sharding: ShardingMode,
    /// Compute [`CoverReport::breaker_stats`].
    pub explain: bool,
    /// Cap on the number of residual cycles enumerated when a budget is
    /// exhausted (enumeration is exponential; the cap keeps reports bounded).
    pub residual_cap: usize,
}

/// Default cap on enumerated residual cycles.
pub const DEFAULT_RESIDUAL_CAP: usize = 1024;

/// Cap on the cycles counted per breaker by the explain pass.
pub const BREAKER_CYCLE_CAP: usize = 10_000;

impl CoverRequest {
    /// A request for `algorithm` under hop constraint `k`, with the paper's
    /// defaults everywhere else: 3-cycles and up, minimum cardinality, no
    /// budget, no explanation.
    pub fn new(algorithm: Algorithm, k: usize) -> Self {
        CoverRequest {
            algorithm,
            k,
            include_two_cycles: false,
            objective: Objective::MinCardinality,
            costs: CostModel::Uniform,
            budget: Budget::None,
            two_cycle_mode: TwoCycleMode::FollowConstraint,
            scan_order: None,
            threads: 0,
            time_budget: None,
            seed: 0,
            sharding: ShardingMode::Off,
            explain: false,
            residual_cap: DEFAULT_RESIDUAL_CAP,
        }
    }

    /// The [`HopConstraint`] this request solves under.
    pub fn constraint(&self) -> HopConstraint {
        if self.include_two_cycles {
            HopConstraint::with_two_cycles(self.k)
        } else {
            HopConstraint::new(self.k)
        }
    }

    /// Execute the request against `g`.
    pub fn solve(&self, g: &CsrGraph) -> Result<CoverReport, SolveError> {
        Solver::from_request(self.clone()).solve_report(g, &self.constraint())
    }
}

/// Per-breaker explanatory statistics (see [`CoverReport::breaker_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerStat {
    /// The cover vertex.
    pub vertex: VertexId,
    /// Its removal cost under the request's [`CostModel`].
    pub cost: u64,
    /// Hop-constrained cycles through `vertex` that no *other* cover vertex
    /// breaks — the cycles that come back if `vertex` alone is released.
    /// Counted up to [`BREAKER_CYCLE_CAP`].
    pub cycles_through: u64,
    /// Whether the count hit the enumeration cap (the true count is at least
    /// `cycles_through`).
    pub truncated: bool,
}

/// The structured result of an objective-aware solve.
///
/// Replaces the bare vertex vector: alongside the cover itself it reports what
/// it cost, whether a [`Budget`] cut it short, which cycles survive in that
/// case, and (on request) why each breaker is in the cover.
#[derive(Debug, Clone)]
pub struct CoverReport {
    /// The (possibly budget-truncated) cover.
    pub cover: CycleCover,
    /// Metrics of the underlying solve.
    pub metrics: RunMetrics,
    /// Total cost of [`CoverReport::cover`] under the request's cost model
    /// (equals the cover size under [`CostModel::Uniform`]).
    pub total_cost: u64,
    /// `true` when the budget forced the cover below what the algorithm
    /// found: the cover is best-effort and [`CoverReport::residual`] lists
    /// the surviving cycles.
    pub exhausted: bool,
    /// Hop-constrained cycles not intersected by [`CoverReport::cover`],
    /// enumerated up to the request's `residual_cap`. Empty when the cover is
    /// complete.
    pub residual: Vec<Cycle>,
    /// Per-breaker criticality, sorted most-critical first. Empty unless the
    /// request set `explain`.
    pub breaker_stats: Vec<BreakerStat>,
}

impl CoverReport {
    /// Cover size (number of vertices).
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }
}

/// Rank `cover`'s vertices by descending cost-effectiveness — total degree
/// per unit cost, compared exactly via `u128` cross-multiplication — with
/// ties broken toward the lower vertex id. This is the keep-priority of the
/// budget trim: the breakers that intersect the most cycles per cost unit
/// survive the cap.
fn effectiveness_ranking(g: &CsrGraph, cover: &CycleCover, costs: &CostModel) -> Vec<VertexId> {
    let mut ranked: Vec<VertexId> = cover.iter().collect();
    ranked.sort_by(|&a, &b| {
        let (da, db) = (
            (g.out_degree(a) + g.in_degree(a)) as u128,
            (g.out_degree(b) + g.in_degree(b)) as u128,
        );
        let (ca, cb) = (costs.cost(a) as u128, costs.cost(b) as u128);
        // a before b  <=>  da/ca > db/cb  <=>  da*cb > db*ca.
        (db * ca).cmp(&(da * cb)).then(a.cmp(&b))
    });
    ranked
}

/// Apply `budget` to a computed cover: keep the most cost-effective vertices
/// that fit, in ranking order. Returns the kept set (sorted) and whether
/// anything was dropped.
///
/// [`Budget::MaxCost`] is greedy-with-skip: a vertex that does not fit the
/// remaining allowance is skipped, but cheaper lower-ranked vertices may
/// still be admitted, so the cap is used as fully as the ranking permits.
pub(crate) fn apply_budget(
    g: &CsrGraph,
    cover: &CycleCover,
    budget: Budget,
    costs: &CostModel,
) -> (CycleCover, bool) {
    let kept: Vec<VertexId> = match budget {
        Budget::None => return (cover.clone(), false),
        Budget::MaxVertices(n) => {
            if cover.len() <= n {
                return (cover.clone(), false);
            }
            let mut ranked = effectiveness_ranking(g, cover, costs);
            ranked.truncate(n);
            ranked
        }
        Budget::MaxCost(cap) => {
            if costs.total(cover.iter()) <= cap {
                return (cover.clone(), false);
            }
            let mut spent = 0u64;
            effectiveness_ranking(g, cover, costs)
                .into_iter()
                .filter(|&v| {
                    let c = costs.cost(v);
                    if spent.saturating_add(c) <= cap {
                        spent += c;
                        true
                    } else {
                        false
                    }
                })
                .collect()
        }
    };
    let exhausted = kept.len() < cover.len();
    (CycleCover::from_vertices(kept), exhausted)
}

/// Enumerate the hop-constrained cycles of `g` that `cover` does **not**
/// intersect, up to `cap` cycles.
pub(crate) fn enumerate_residual(
    g: &CsrGraph,
    cover: &CycleCover,
    constraint: &HopConstraint,
    cap: usize,
) -> Vec<Cycle> {
    let active = cover.reduced_active_set(g.num_vertices());
    enumerate_cycles(g, &active, constraint, cap)
}

/// Count, for each vertex of `kept`, the constrained cycles through it that
/// no other vertex of `full_cover` intersects — i.e. the cycles that
/// re-appear if that breaker alone is released. Sorted most-critical first
/// (ties toward the lower vertex id).
///
/// `full_cover` is the algorithm's untruncated cover; computing criticality
/// against it keeps the per-breaker counts meaningful even when a budget
/// trimmed `kept` below validity (every counted cycle is guaranteed to pass
/// through the breaker, because `full_cover − v` leaves no other constrained
/// cycles).
pub(crate) fn breaker_statistics(
    g: &CsrGraph,
    full_cover: &CycleCover,
    kept: &CycleCover,
    constraint: &HopConstraint,
    costs: &CostModel,
) -> Vec<BreakerStat> {
    let mut active = full_cover.reduced_active_set(g.num_vertices());
    let mut stats: Vec<BreakerStat> = kept
        .iter()
        .map(|v| {
            active.activate(v);
            let cycles = enumerate_cycles(g, &active, constraint, BREAKER_CYCLE_CAP);
            active.deactivate(v);
            BreakerStat {
                vertex: v,
                cost: costs.cost(v),
                cycles_through: cycles.len() as u64,
                truncated: cycles.len() >= BREAKER_CYCLE_CAP,
            }
        })
        .collect();
    stats.sort_by(|a, b| {
        b.cycles_through
            .cmp(&a.cycles_through)
            .then(a.vertex.cmp(&b.vertex))
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_cover;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{complete_digraph, directed_cycle, erdos_renyi_gnm};

    #[test]
    fn request_defaults_match_the_paper_semantics() {
        let r = CoverRequest::new(Algorithm::TdbPlusPlus, 5);
        assert_eq!(r.objective, Objective::MinCardinality);
        assert_eq!(r.budget, Budget::None);
        assert!(!r.budget.is_limited());
        assert!(r.costs.is_uniform());
        assert!(!r.explain);
        assert_eq!(r.constraint(), HopConstraint::new(5));
        let mut two = r.clone();
        two.include_two_cycles = true;
        assert_eq!(two.constraint(), HopConstraint::with_two_cycles(5));
    }

    #[test]
    fn unbudgeted_report_is_complete() {
        let g = directed_cycle(4);
        let report = CoverRequest::new(Algorithm::BurPlus, 4).solve(&g).unwrap();
        assert_eq!(report.cover_size(), 1);
        assert!(!report.exhausted);
        assert!(report.residual.is_empty());
        assert!(report.breaker_stats.is_empty());
        assert_eq!(report.total_cost, 1);
    }

    #[test]
    fn max_vertices_budget_caps_the_cover_and_reports_residual() {
        let g = complete_digraph(6);
        let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, 3);
        request.budget = Budget::MaxVertices(2);
        let report = request.solve(&g).unwrap();
        assert_eq!(report.cover_size(), 2);
        assert!(report.exhausted);
        assert!(!report.residual.is_empty());
        // Every residual cycle really is uncovered and hop-constrained.
        let constraint = request.constraint();
        for cycle in &report.residual {
            assert!(cycle.len() >= 3 && cycle.len() <= 3);
            assert!(cycle.iter().all(|&v| !report.cover.contains(v)));
            assert!(constraint.covers_len(cycle.len()));
        }
    }

    #[test]
    fn max_cost_budget_respects_the_cap() {
        let g = complete_digraph(6);
        let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, 3);
        request.costs = CostModel::from_fn(6, |v| u64::from(v) + 1);
        request.budget = Budget::MaxCost(5);
        let report = request.solve(&g).unwrap();
        assert!(report.exhausted);
        assert!(report.total_cost <= 5, "cost {}", report.total_cost);
        assert_eq!(report.total_cost, request.costs.total(report.cover.iter()));
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let g = erdos_renyi_gnm(30, 120, 7);
        let base = CoverRequest::new(Algorithm::TdbPlusPlus, 4)
            .solve(&g)
            .unwrap();
        let mut capped = CoverRequest::new(Algorithm::TdbPlusPlus, 4);
        capped.budget = Budget::MaxVertices(usize::MAX);
        let report = capped.solve(&g).unwrap();
        assert_eq!(report.cover, base.cover);
        assert!(!report.exhausted);
        assert!(is_valid_cover(&g, &report.cover, &capped.constraint()));
    }

    #[test]
    fn effectiveness_ranking_prefers_cheap_hubs() {
        // Vertex 0 is the hub of two triangles; vertex 1 is a spoke.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let cover = CycleCover::from_vertices(vec![0, 1]);
        let ranked = effectiveness_ranking(&g, &cover, &CostModel::Uniform);
        assert_eq!(ranked[0], 0, "hub first under uniform costs");
        // Make the hub 100x more expensive than its degree advantage: the
        // spoke overtakes it.
        let costs = CostModel::per_vertex(vec![100, 1, 1, 1, 1]);
        let ranked = effectiveness_ranking(&g, &cover, &costs);
        assert_eq!(ranked[0], 1, "cheap spoke first once the hub costs 100");
    }

    #[test]
    fn breaker_stats_count_witness_cycles() {
        // Three triangles sharing vertex 0, plus an independent triangle
        // broken by vertex 7.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 0),
            (7, 8),
            (8, 9),
            (9, 7),
        ]);
        // Hand-picked cover {0, 9}: vertex 0 witnesses all three hub
        // triangles, vertex 9 exactly one.
        let cover = CycleCover::from_vertices(vec![0, 9]);
        let constraint = HopConstraint::new(3);
        assert!(is_valid_cover(&g, &cover, &constraint));
        let stats = breaker_statistics(&g, &cover, &cover, &constraint, &CostModel::Uniform);
        assert_eq!(stats.len(), 2);
        // Sorted most-critical first.
        let top = &stats[0];
        assert_eq!(top.vertex, 0);
        assert_eq!(top.cycles_through, 3);
        assert!(!top.truncated);
        assert_eq!(stats[1].vertex, 9);
        assert_eq!(stats[1].cycles_through, 1);

        // End-to-end: explain=true populates one stat per cover vertex.
        let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, 3);
        request.explain = true;
        let report = request.solve(&g).unwrap();
        assert_eq!(report.breaker_stats.len(), report.cover_size());
        assert!(report.breaker_stats.iter().all(|s| s.cycles_through >= 1));
    }

    #[test]
    fn residual_cap_bounds_the_enumeration() {
        let g = complete_digraph(7);
        let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, 4);
        request.budget = Budget::MaxVertices(0);
        request.residual_cap = 5;
        let report = request.solve(&g).unwrap();
        assert!(report.exhausted);
        assert!(report.cover.is_empty());
        assert_eq!(report.residual.len(), 5);
        assert_eq!(report.total_cost, 0);
    }
}
