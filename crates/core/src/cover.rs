//! Cover result types shared by every algorithm in the crate.

use std::time::Duration;

use tdb_graph::{ActiveSet, VertexId};

/// A hop-constrained cycle cover: a set of vertices intersecting every
/// constrained cycle of the graph it was computed for (Definition 2).
///
/// The vertex list is kept sorted and deduplicated so that membership tests are
/// binary searches and covers can be compared structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleCover {
    vertices: Vec<VertexId>,
}

impl CycleCover {
    /// Build a cover from an arbitrary vertex list (sorted and deduplicated).
    pub fn from_vertices(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        CycleCover { vertices }
    }

    /// The empty cover.
    pub fn empty() -> Self {
        CycleCover {
            vertices: Vec::new(),
        }
    }

    /// Number of cover vertices (the paper's "cover size").
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the cover is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether `v` is in the cover.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// The cover vertices, sorted ascending.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterate over the cover vertices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }

    /// Consume into the sorted vertex list.
    pub fn into_vertices(self) -> Vec<VertexId> {
        self.vertices
    }

    /// The activation mask of the *reduced* graph `G − C`: cover vertices are
    /// inactive, everything else active. This is the graph that must be free of
    /// hop-constrained cycles for the cover to be valid.
    pub fn reduced_active_set(&self, num_vertices: usize) -> ActiveSet {
        let mut active = ActiveSet::all_active(num_vertices);
        for &v in &self.vertices {
            active.deactivate(v);
        }
        active
    }

    /// Add a vertex to the cover (no-op if present). Returns `true` when the
    /// cover changed. Used by the incremental repair path in `tdb-dynamic`,
    /// which breaks newly exposed cycles one vertex at a time.
    pub fn insert(&mut self, v: VertexId) -> bool {
        match self.vertices.binary_search(&v) {
            Ok(_) => false,
            Err(idx) => {
                self.vertices.insert(idx, v);
                true
            }
        }
    }

    /// Remove a vertex from the cover (no-op if absent). Used by the minimal
    /// pruning pass.
    pub fn remove(&mut self, v: VertexId) -> bool {
        match self.vertices.binary_search(&v) {
            Ok(idx) => {
                self.vertices.remove(idx);
                true
            }
            Err(_) => false,
        }
    }

    /// Set-difference size against another cover (`|self \ other|`).
    pub fn difference_size(&self, other: &CycleCover) -> usize {
        self.iter().filter(|&v| !other.contains(v)).count()
    }
}

impl FromIterator<VertexId> for CycleCover {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        CycleCover::from_vertices(iter.into_iter().collect())
    }
}

/// Counters and timings collected while computing a cover.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunMetrics {
    /// Name of the algorithm that produced the cover (`"BUR"`, `"TDB++"`, ...).
    pub algorithm: String,
    /// Hop constraint `k` used.
    pub k: usize,
    /// Whether 2-cycles were included in the constraint.
    pub include_two_cycles: bool,
    /// Wall-clock time of the computation.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub elapsed: Duration,
    /// Number of cycle-existence queries (DFS searches) issued.
    pub cycle_queries: u64,
    /// Vertices released without a DFS thanks to the BFS filter.
    pub filter_released: u64,
    /// Vertices released without a DFS thanks to the SCC pre-filter.
    pub scc_released: u64,
    /// Vertices removed by the minimal-pruning pass (Algorithm 7).
    pub minimal_pruned: u64,
    /// Edges of the working graph (the line graph for DARC-DV).
    pub working_edges: usize,
}

impl RunMetrics {
    /// Create metrics labelled with an algorithm name and constraint.
    pub fn new(algorithm: impl Into<String>, k: usize, include_two_cycles: bool) -> Self {
        RunMetrics {
            algorithm: algorithm.into(),
            k,
            include_two_cycles,
            ..Default::default()
        }
    }

    /// Elapsed time in seconds as a float (convenience for reporting).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Fold another run's counters and elapsed time into this accumulator.
    ///
    /// Used by `SolveContext` to aggregate metrics across consecutive solves;
    /// the label fields (`algorithm`, `k`, `include_two_cycles`) keep the
    /// values of the most recently absorbed run.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.algorithm = other.algorithm.clone();
        self.k = other.k;
        self.include_two_cycles = other.include_two_cycles;
        self.elapsed += other.elapsed;
        self.cycle_queries += other.cycle_queries;
        self.filter_released += other.filter_released;
        self.scc_released += other.scc_released;
        self.minimal_pruned += other.minimal_pruned;
        self.working_edges = self.working_edges.max(other.working_edges);
    }
}

/// The result of a cover computation: the cover plus its run metrics.
#[derive(Debug, Clone)]
pub struct CoverRun {
    /// The computed cover.
    pub cover: CycleCover,
    /// Metrics describing how it was computed.
    pub metrics: RunMetrics,
}

impl CoverRun {
    /// Cover size (number of vertices), the headline quantity of the paper's
    /// tables.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }

    /// One-line summary in the style of Table III rows.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<10} k={:<2} size={:<10} time={:>10.3}s queries={:<10} filtered={:<8}",
            self.metrics.algorithm,
            self.metrics.k,
            self.cover.len(),
            self.metrics.elapsed_secs(),
            self.metrics.cycle_queries,
            self.metrics.filter_released + self.metrics.scc_released,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_is_sorted_and_deduplicated() {
        let c = CycleCover::from_vertices(vec![5, 1, 3, 1, 5]);
        assert_eq!(c.as_slice(), &[1, 3, 5]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn reduced_active_set_deactivates_cover() {
        let c = CycleCover::from_vertices(vec![0, 2]);
        let active = c.reduced_active_set(4);
        assert!(!active.is_active(0));
        assert!(active.is_active(1));
        assert!(!active.is_active(2));
        assert_eq!(active.num_active(), 2);
    }

    #[test]
    fn remove_and_difference() {
        let mut c = CycleCover::from_vertices(vec![1, 2, 3]);
        assert!(c.remove(2));
        assert!(!c.remove(2));
        assert_eq!(c.as_slice(), &[1, 3]);
        let other = CycleCover::from_vertices(vec![3, 4]);
        assert_eq!(c.difference_size(&other), 1);
        assert_eq!(other.difference_size(&c), 1);
    }

    #[test]
    fn from_iterator_and_empty() {
        let c: CycleCover = [4u32, 2, 4].into_iter().collect();
        assert_eq!(c.as_slice(), &[2, 4]);
        assert!(CycleCover::empty().is_empty());
        assert_eq!(CycleCover::empty().len(), 0);
    }

    #[test]
    fn metrics_and_summary() {
        let mut m = RunMetrics::new("TDB++", 5, false);
        m.elapsed = Duration::from_millis(1500);
        assert!((m.elapsed_secs() - 1.5).abs() < 1e-9);
        let run = CoverRun {
            cover: CycleCover::from_vertices(vec![1, 2]),
            metrics: m,
        };
        assert_eq!(run.cover_size(), 2);
        let line = run.summary_line();
        assert!(line.contains("TDB++"));
        assert!(line.contains("size=2"));
    }
}
