//! SCC-partitioned solving: per-component shards solved concurrently.
//!
//! # Why partitioning is exact
//!
//! A simple cycle visits each of its vertices once and returns to its start,
//! so all of its vertices are mutually reachable — every constrained cycle of
//! `G` lies entirely inside one strongly connected component. Two things
//! follow:
//!
//! 1. **Trivial components need nothing.** A vertex in a singleton SCC lies on
//!    no cycle of length ≥ 2, so it can never be required by a cover (the
//!    `scc_prefilter` ablation already exploited this observation).
//! 2. **Non-trivial components are independent.** A set `C` is a valid cover
//!    of `G` iff `C ∩ S` is a valid cover of the subgraph induced by `S`, for
//!    every non-trivial SCC `S` — cross-component edges cannot close a cycle,
//!    so no cover decision in one component can affect another. Minimality
//!    decomposes the same way: a vertex is redundant in `G` iff it is
//!    redundant inside its own component.
//!
//! The cover problem therefore *shards exactly*: solve each non-trivial
//! component on its own compact subgraph ([`tdb_graph::Condensation`]) and
//! take the union. [`Partitioner`] builds the shards and [`solve_sharded`]
//! executes them on a pool of worker threads that drain a shared
//! largest-component-first queue (idle workers immediately pull the next
//! pending component, so the schedule balances like a work-stealing pool).
//! Each claimed shard runs the solver's full per-shard pipeline with a fresh
//! context carrying the parent's armed deadline, so a time budget bounds the
//! whole partitioned solve.
//!
//! Because the global→local id remapping of the extraction is monotone and
//! the algorithms scan vertices and adjacency in id order, a sharded solve
//! with the default ascending scan order reproduces the unsharded cover
//! **exactly** — the differential test kit in `tests/differential.rs` holds
//! every algorithm to that.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use tdb_cycle::HopConstraint;
use tdb_graph::{Condensation, CsrGraph, Graph, GraphView, VertexId};

use crate::cover::{CoverRun, CycleCover, RunMetrics};
use crate::solver::{SolveContext, SolveError, Solver};
use crate::stats::Timer;

/// One independently solvable piece of a partitioned graph: a compact
/// subgraph of a non-trivial SCC plus the table mapping its local vertex ids
/// back to the whole graph.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The component as a compact graph over local ids.
    pub graph: CsrGraph,
    /// `to_global[local]` is the whole-graph vertex id (ascending).
    pub to_global: Vec<VertexId>,
}

impl Shard {
    /// Number of vertices in this shard.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether the shard is empty (never produced by [`Partitioner`]).
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }
}

/// The result of partitioning a graph for sharded solving.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Non-trivial components as compact subgraphs, largest first.
    pub shards: Vec<Shard>,
    /// Vertices living in trivial (singleton) components — released without
    /// any search, reported as `scc_released` in the merged metrics.
    pub trivial_vertices: usize,
}

impl Partition {
    /// Total vertices across all shards.
    pub fn sharded_vertices(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }
}

/// Runs SCC condensation over any [`GraphView`] and extracts every
/// non-trivial component into a compact [`Shard`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Partitioner;

impl Partitioner {
    /// A partitioner with the default settings.
    pub fn new() -> Self {
        Partitioner
    }

    /// Partition `g` into independently solvable shards, largest first.
    ///
    /// Largest-first matters for the executor: the biggest component bounds
    /// the critical path, so it must start as early as possible while smaller
    /// components fill the remaining workers.
    pub fn partition<V: GraphView>(&self, g: &V) -> Partition {
        let cond = Condensation::of(g);
        let mut shards: Vec<Shard> = cond
            .non_trivial()
            .map(|c| {
                let ext = cond.extract(g, c);
                Shard {
                    graph: ext.graph,
                    to_global: ext.to_global,
                }
            })
            .collect();
        shards.sort_by_key(|s| std::cmp::Reverse(s.len()));
        Partition {
            shards,
            trivial_vertices: cond.trivial_vertices(),
        }
    }
}

/// Solve `g` with `solver`'s configured per-shard pipeline, one component at
/// a time, on `threads` worker threads. Called by
/// [`Solver::solve_with`](crate::solver::Solver::solve_with) when a
/// [`ShardingMode`](crate::solver::ShardingMode) is enabled; the context must
/// already be armed.
pub(crate) fn solve_sharded(
    solver: &Solver,
    g: &CsrGraph,
    constraint: &HopConstraint,
    ctx: &mut SolveContext,
    threads: usize,
) -> Result<CoverRun, SolveError> {
    let timer = Timer::start();
    // Honor the budget contract of the unsharded path: an already-expired
    // deadline must fail before any work, even on graphs that partition into
    // zero shards, and the O(n + m) partition phase must not overshoot a
    // deadline unreported.
    ctx.checkpoint()?;
    let partition = Partitioner::new().partition(g);
    ctx.checkpoint()?;
    let shards = &partition.shards;
    let snapshot = ctx.snapshot();
    // Inside a shard the worker pool is the parallelism: pin the parallel
    // family's auto inner threading to 1 so threads don't multiply.
    let shard_solver = solver.shard_solver();
    let solver = &shard_solver;

    let results: Vec<Mutex<Option<CoverRun>>> = shards.iter().map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<SolveError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let workers = threads.max(1).min(shards.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let results = &results;
            let failure = &failure;
            let failed = &failed;
            let next = &next;
            let snapshot = &snapshot;
            scope.spawn(move || {
                loop {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(shard) = shards.get(i) else {
                        return;
                    };
                    // Each shard races the parent's armed deadline. Costs
                    // travel in global ids; project them through the shard's
                    // monotone id map so local vertex v reads the cost of
                    // to_global[v].
                    let mut shard_ctx = snapshot.materialize();
                    if !shard_ctx.vertex_costs().is_uniform() {
                        let projected = shard_ctx.vertex_costs().project(&shard.to_global);
                        shard_ctx.set_vertex_costs(projected);
                    }
                    match solver.solve_shard(&shard.graph, constraint, &mut shard_ctx) {
                        Ok(run) => *results[i].lock().unwrap() = Some(run),
                        Err(e) => {
                            *failure.lock().unwrap() = Some(e);
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }

    // Merge: translate each shard cover back to global ids and union them;
    // counters sum across shards, elapsed is the wall clock of the whole
    // pipeline (not the sum of per-shard CPU time).
    let mut vertices: Vec<VertexId> = Vec::new();
    let mut merged = RunMetrics::new(
        solver.metrics_label(),
        constraint.max_hops,
        constraint.include_two_cycles,
    );
    for (shard, slot) in shards.iter().zip(results) {
        let run = slot
            .into_inner()
            .unwrap()
            .expect("every non-failed shard produced a run");
        vertices.extend(run.cover.iter().map(|v| shard.to_global[v as usize]));
        merged.absorb(&run.metrics);
    }
    merged.algorithm = format!("{}/sharded", merged.algorithm);
    merged.working_edges = g.num_edges();
    merged.scc_released += partition.trivial_vertices as u64;
    merged.elapsed = timer.elapsed();

    let run = CoverRun {
        cover: CycleCover::from_vertices(vertices),
        metrics: merged,
    };
    let total = shards.len() as u64;
    ctx.report_progress(total, total, run.cover.len() as u64);
    ctx.accumulate(&run.metrics);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ShardingMode;
    use crate::verify::verify_cover;
    use crate::Algorithm;
    use tdb_graph::builder::graph_from_edges;
    use tdb_graph::gen::{directed_path, erdos_renyi_gnm};
    use tdb_graph::Graph;

    /// Disjoint triangles 0-2, 3-5, 6-8 chained by one-way bridges, plus a
    /// dangling tail vertex 9.
    fn three_triangles() -> CsrGraph {
        graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 6),
            (8, 9),
        ])
    }

    #[test]
    fn partitioner_orders_shards_largest_first() {
        // A 5-cycle and a 3-cycle.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 3),
        ]);
        let p = Partitioner::new().partition(&g);
        assert_eq!(p.shards.len(), 2);
        assert_eq!(p.shards[0].len(), 5);
        assert_eq!(p.shards[1].len(), 3);
        assert!(!p.shards[0].is_empty());
        assert_eq!(p.trivial_vertices, 0);
        assert_eq!(p.sharded_vertices(), 8);
    }

    #[test]
    fn sharded_solve_matches_unsharded_exactly() {
        let g = three_triangles();
        let constraint = HopConstraint::new(4);
        for algorithm in Algorithm::all() {
            let plain = Solver::new(algorithm).solve(&g, &constraint).unwrap();
            for mode in [ShardingMode::Threads(1), ShardingMode::Threads(3)] {
                let sharded = Solver::new(algorithm)
                    .with_sharding(mode)
                    .solve(&g, &constraint)
                    .unwrap();
                assert_eq!(sharded.cover, plain.cover, "{algorithm} {mode:?}");
                assert!(
                    sharded.metrics.algorithm.ends_with("/sharded"),
                    "{}",
                    sharded.metrics.algorithm
                );
                // The dangling tail vertex is released by the partition.
                assert!(sharded.metrics.scc_released >= 1, "{algorithm}");
            }
        }
    }

    #[test]
    fn sharded_solve_of_acyclic_graph_is_empty() {
        let g = directed_path(20);
        let run = Solver::new(Algorithm::TdbPlusPlus)
            .with_sharding(ShardingMode::Auto)
            .solve(&g, &HopConstraint::new(5))
            .unwrap();
        assert!(run.cover.is_empty());
        assert_eq!(run.metrics.scc_released, 20);
        assert_eq!(run.metrics.algorithm, "TDB++/sharded");
    }

    #[test]
    fn sharded_solve_on_random_graphs_is_valid_and_size_equal() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(70, 240, seed);
            let constraint = HopConstraint::new(4);
            let plain = Solver::new(Algorithm::TdbPlusPlus)
                .solve(&g, &constraint)
                .unwrap();
            let sharded = Solver::new(Algorithm::TdbPlusPlus)
                .with_sharding(ShardingMode::Threads(4))
                .solve(&g, &constraint)
                .unwrap();
            assert_eq!(sharded.cover, plain.cover, "seed {seed}");
            let v = verify_cover(&g, &sharded.cover, &constraint);
            assert!(v.is_valid_and_minimal(), "seed {seed}");
        }
    }

    #[test]
    fn sharded_budget_overrun_is_reported() {
        let g = three_triangles();
        let err = Solver::new(Algorithm::TdbPlusPlus)
            .with_sharding(ShardingMode::Threads(2))
            .with_time_budget(std::time::Duration::ZERO)
            .solve(&g, &HopConstraint::new(4))
            .unwrap_err();
        assert!(matches!(err, SolveError::BudgetExceeded { .. }));
    }

    #[test]
    fn sharded_budget_bites_even_with_zero_shards() {
        // An acyclic graph partitions into zero shards, but an expired
        // budget must still be reported — same contract as unsharded.
        let g = directed_path(12);
        let err = Solver::new(Algorithm::TdbPlusPlus)
            .with_sharding(ShardingMode::Threads(2))
            .with_time_budget(std::time::Duration::ZERO)
            .solve(&g, &HopConstraint::new(4))
            .unwrap_err();
        assert!(matches!(err, SolveError::BudgetExceeded { .. }));
    }

    #[test]
    fn sharded_metrics_sum_counters_and_count_solves_once() {
        let g = three_triangles();
        let constraint = HopConstraint::new(4);
        let solver = Solver::new(Algorithm::TdbPlusPlus).with_sharding(ShardingMode::Threads(2));
        let mut ctx = solver.context();
        let run = solver.solve_with(&g, &constraint, &mut ctx).unwrap();
        assert_eq!(ctx.completed_solves(), 1);
        assert_eq!(ctx.totals().cycle_queries, run.metrics.cycle_queries);
        assert!(run.metrics.cycle_queries > 0);
        assert_eq!(run.metrics.working_edges, g.num_edges());
    }
}
