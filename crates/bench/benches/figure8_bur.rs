//! Figures 8–9 bench: BUR versus BUR+ (the minimal-pruning pass) on the
//! Wiki-Vote and web-Google proxies.
//!
//! Figure 8 of the paper shows that the pruning pass costs almost nothing on
//! top of BUR; Figure 9 shows it buys a measurably smaller cover. The bench
//! times both variants; the cover-size delta is reported by the `experiments`
//! binary (`figure9`).

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_datasets::Dataset;

fn main() {
    let bench = Microbench::new("figure8");
    for (dataset, edges) in [(Dataset::WikiVote, 800), (Dataset::WebGoogle, 1200)] {
        let g = small_proxy(dataset, edges);
        for k in [3usize, 4, 5] {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Bur, Algorithm::BurPlus] {
                let solver = Solver::new(algorithm);
                bench.bench(
                    &format!("{}/{}/k={k}", dataset.spec().code, algorithm.name()),
                    || solver.solve(&g, &constraint).unwrap().cover_size(),
                );
            }
        }
    }
}
