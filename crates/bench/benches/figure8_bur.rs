//! Figures 8–9 bench: BUR versus BUR+ (the minimal-pruning pass) on the
//! Wiki-Vote and web-Google proxies.
//!
//! Figure 8 of the paper shows that the pruning pass costs almost nothing on
//! top of BUR; Figure 9 shows it buys a measurably smaller cover. The bench
//! times both variants; the cover-size delta is reported by the `experiments`
//! binary (`figure9`).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::{compute_cover, Algorithm, HopConstraint};
use tdb_datasets::Dataset;

fn bench_figure8(c: &mut Criterion) {
    for (dataset, edges) in [(Dataset::WikiVote, 800), (Dataset::WebGoogle, 1200)] {
        let g = small_proxy(dataset, edges);
        let mut group = c.benchmark_group(format!("figure8/{}", dataset.spec().code));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in [3usize, 4, 5] {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Bur, Algorithm::BurPlus] {
                group.bench_with_input(
                    BenchmarkId::new(algorithm.name(), k),
                    &(algorithm, k),
                    |b, &(algorithm, _)| {
                        b.iter(|| black_box(compute_cover(&g, &constraint, algorithm).cover_size()))
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
