//! Streaming bench: incremental cover maintenance under sustained edge churn
//! versus full re-solves — the headline measurement of the `tdb-dynamic`
//! subsystem.
//!
//! Two views are reported:
//!
//! * `Microbench` rows timing one applied update batch against one static
//!   re-solve on the same graph, and
//! * a full churn scenario report (updates/sec, per-refresh speedup, validity
//!   audit) from `tdb_bench::streaming`.
//!
//! `TDB_BENCH_STREAM_SCALE=acceptance` switches the scenario to the 50k-vertex
//! / 10k-update acceptance workload; the default stays small enough for the CI
//! smoke pass.

use tdb_bench::microbench::Microbench;
use tdb_bench::streaming::{format_stream_report, run_stream, StreamConfig};
use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_dynamic::{EdgeBatch, SolveDynamic};
use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
use tdb_graph::VertexId;

fn main() {
    let bench = Microbench::new("streaming");

    // Microbench rows: one batch of churn vs one full re-solve, same graph.
    let n = 5_000usize;
    let g = erdos_renyi_gnm(n, 20_000, 11);
    let constraint = HopConstraint::new(4);
    let solver = Solver::new(Algorithm::TdbPlusPlus);
    let mut dynamic = solver
        .solve_dynamic(g.clone(), &constraint)
        .expect("unbudgeted solve cannot fail");
    let mut rng = Xoshiro256::seed_from_u64(1234);
    for batch_size in [10usize, 100, 1_000] {
        bench.bench(&format!("apply_batch/{batch_size}"), || {
            let mut batch = EdgeBatch::new();
            for _ in 0..batch_size / 2 {
                let u = rng.next_index(n) as VertexId;
                let v = rng.next_index(n) as VertexId;
                if u != v {
                    batch.insert(u, v);
                    batch.remove(u, v); // net-zero so the graph stays bounded
                }
            }
            dynamic.apply(&batch).updates()
        });
    }
    bench.bench("full_resolve/baseline", || {
        solver.solve(&g, &constraint).unwrap().cover_size()
    });

    // The churn scenario with per-batch validity audit.
    let config = match std::env::var("TDB_BENCH_STREAM_SCALE").as_deref() {
        Ok("acceptance") => StreamConfig::acceptance(),
        _ => StreamConfig::smoke(),
    };
    println!(
        "\n## streaming scenario (|V|={}, {} updates, batch {}, churn {:.0}%)",
        config.vertices,
        config.updates,
        config.batch_size,
        config.churn * 100.0
    );
    let report = run_stream(&config);
    for line in format_stream_report(&report) {
        println!("{line}");
    }
    assert_eq!(
        report.valid_batches, report.batches,
        "an intermediate cover failed the validity audit"
    );
}
