//! Figure 10 bench: the speed-up ladder inside the top-down family — TDB
//! (naive DFS) versus TDB+ (block DFS) versus TDB++ (block DFS + BFS filter) —
//! on the Wiki-Vote and web-Google proxies.
//!
//! These proxies can be an order of magnitude larger than the ones used for the
//! exhaustive baselines because all three variants are polynomial.

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_datasets::Dataset;

fn main() {
    let bench = Microbench::new("figure10");
    for (dataset, edges) in [(Dataset::WikiVote, 4000), (Dataset::WebGoogle, 8000)] {
        let g = small_proxy(dataset, edges);
        for k in [3usize, 5, 7] {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Tdb, Algorithm::TdbPlus, Algorithm::TdbPlusPlus] {
                // The naive-DFS variant explodes combinatorially for larger k;
                // cap it like the paper's INF entries.
                if k > 5 && algorithm == Algorithm::Tdb {
                    continue;
                }
                let solver = Solver::new(algorithm);
                bench.bench(
                    &format!("{}/{}/k={k}", dataset.spec().code, algorithm.name()),
                    || solver.solve(&g, &constraint).unwrap().cover_size(),
                );
            }
        }
    }
}
