//! Figure 10 bench: the speed-up ladder inside the top-down family — TDB
//! (naive DFS) versus TDB+ (block DFS) versus TDB++ (block DFS + BFS filter) —
//! on the Wiki-Vote and web-Google proxies.
//!
//! These proxies can be an order of magnitude larger than the ones used for the
//! exhaustive baselines because all three variants are polynomial.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::{compute_cover, Algorithm, HopConstraint};
use tdb_datasets::Dataset;

fn bench_figure10(c: &mut Criterion) {
    for (dataset, edges) in [(Dataset::WikiVote, 4000), (Dataset::WebGoogle, 8000)] {
        let g = small_proxy(dataset, edges);
        let mut group = c.benchmark_group(format!("figure10/{}", dataset.spec().code));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in [3usize, 5, 7] {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Tdb, Algorithm::TdbPlus, Algorithm::TdbPlusPlus] {
                // The naive-DFS variant explodes combinatorially for larger k;
                // cap it like the paper's INF entries.
                if k > 5 && algorithm == Algorithm::Tdb {
                    continue;
                }
                group.bench_with_input(
                    BenchmarkId::new(algorithm.name(), k),
                    &(algorithm, k),
                    |b, &(algorithm, _)| {
                        b.iter(|| black_box(compute_cover(&g, &constraint, algorithm).cover_size()))
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figure10);
criterion_main!(benches);
