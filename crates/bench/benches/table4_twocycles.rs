//! Table IV bench: the cost of also covering 2-cycles.
//!
//! Table IV of the paper compares cover sizes with and without 2-cycles at
//! `k = 5`; the cover-size comparison itself is produced by the `experiments`
//! binary (`table4`). This bench measures the runtime side of the same toggle,
//! plus the alternative "cover 2-cycles separately, then cover 3..k" strategy
//! the paper alludes to.

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::prelude::*;
use tdb_datasets::Dataset;

fn main() {
    let bench = Microbench::new("table4");
    for (dataset, edges) in [(Dataset::Slashdot0902, 4000), (Dataset::AsCaida, 4000)] {
        let g = small_proxy(dataset, edges);
        let code = dataset.spec().code;
        let solver = Solver::new(Algorithm::TdbPlusPlus);

        bench.bench(&format!("{code}/no-2-cycles"), || {
            solver
                .solve(&g, &HopConstraint::new(5))
                .unwrap()
                .cover_size()
        });
        bench.bench(&format!("{code}/with-2-cycles"), || {
            solver
                .solve(&g, &HopConstraint::with_two_cycles(5))
                .unwrap()
                .cover_size()
        });
        bench.bench(&format!("{code}/separate-2-cycle-pass"), || {
            combined_cover(&g, 5, &TopDownConfig::tdb_plus_plus()).cover_size()
        });
    }
}
