//! Table IV bench: the cost of also covering 2-cycles.
//!
//! Table IV of the paper compares cover sizes with and without 2-cycles at
//! `k = 5`; the cover-size comparison itself is produced by the `experiments`
//! binary (`table4`). This bench measures the runtime side of the same toggle,
//! plus the alternative "cover 2-cycles separately, then cover 3..k" strategy
//! the paper alludes to.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::prelude::*;
use tdb_datasets::Dataset;

fn bench_table4(c: &mut Criterion) {
    for (dataset, edges) in [(Dataset::Slashdot0902, 4000), (Dataset::AsCaida, 4000)] {
        let g = small_proxy(dataset, edges);
        let mut group = c.benchmark_group(format!("table4/{}", dataset.spec().code));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));

        group.bench_function(BenchmarkId::from_parameter("no-2-cycles"), |b| {
            b.iter(|| {
                black_box(
                    top_down_cover(&g, &HopConstraint::new(5), &TopDownConfig::tdb_plus_plus())
                        .cover_size(),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("with-2-cycles"), |b| {
            b.iter(|| {
                black_box(
                    top_down_cover(
                        &g,
                        &HopConstraint::with_two_cycles(5),
                        &TopDownConfig::tdb_plus_plus(),
                    )
                    .cover_size(),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("separate-2-cycle-pass"), |b| {
            b.iter(|| black_box(combined_cover(&g, 5, &TopDownConfig::tdb_plus_plus()).cover_size()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
