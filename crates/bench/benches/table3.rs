//! Table III bench: cover computation time of the three headline algorithms
//! (DARC-DV, BUR+, TDB++) at `k = 5` on small dataset proxies.
//!
//! The paper's Table III reports runtime and cover size at `k = 5` across the
//! twelve small/medium datasets; this bench times the same three algorithms on
//! proxies small enough for the exhaustive baselines to finish a sample,
//! preserving the ranking (TDB++ ≪ DARC-DV < BUR+).

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_datasets::Dataset;

fn main() {
    let constraint = HopConstraint::new(5);
    let datasets = [
        (Dataset::WikiVote, 900),
        (Dataset::AsCaida, 900),
        (Dataset::Gnutella31, 1200),
    ];
    let bench = Microbench::new("table3_k5");
    for (dataset, edges) in datasets {
        let g = small_proxy(dataset, edges);
        for algorithm in [
            Algorithm::DarcDv,
            Algorithm::BurPlus,
            Algorithm::TdbPlusPlus,
        ] {
            let solver = Solver::new(algorithm);
            bench.bench(
                &format!("{}/{}", dataset.spec().code, algorithm.name()),
                || solver.solve(&g, &constraint).unwrap().cover_size(),
            );
        }
    }
}
