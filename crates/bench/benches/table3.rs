//! Table III bench: cover computation time of the three headline algorithms
//! (DARC-DV, BUR+, TDB++) at `k = 5` on small dataset proxies.
//!
//! The paper's Table III reports runtime and cover size at `k = 5` across the
//! twelve small/medium datasets; this bench times the same three algorithms on
//! proxies small enough for the exhaustive baselines to finish a Criterion
//! sample, preserving the ranking (TDB++ ≪ DARC-DV < BUR+).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::{compute_cover, Algorithm, HopConstraint};
use tdb_datasets::Dataset;

fn bench_table3(c: &mut Criterion) {
    let constraint = HopConstraint::new(5);
    let datasets = [
        (Dataset::WikiVote, 900),
        (Dataset::AsCaida, 900),
        (Dataset::Gnutella31, 1200),
    ];
    for (dataset, edges) in datasets {
        let g = small_proxy(dataset, edges);
        let mut group = c.benchmark_group(format!("table3_k5/{}", dataset.spec().code));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for algorithm in [Algorithm::DarcDv, Algorithm::BurPlus, Algorithm::TdbPlusPlus] {
            group.bench_with_input(
                BenchmarkId::from_parameter(algorithm.name()),
                &algorithm,
                |b, &algorithm| {
                    b.iter(|| black_box(compute_cover(&g, &constraint, algorithm).cover_size()))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
