//! Figure 6 bench: runtime versus the hop constraint `k` for DARC-DV, BUR+ and
//! TDB++.
//!
//! The paper sweeps `k ∈ [3, 7]` over twelve datasets; the bench sweeps the
//! same `k` range on a Wiki-Vote proxy (panel (a) of the figure) and a
//! web-Google proxy (panel (k)), which is where the paper's speedup gap is
//! respectively smallest and largest among the panels we can fit in a bench
//! budget. The expected shape: the exhaustive baselines blow up with `k`, while
//! TDB++ grows roughly linearly.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::{compute_cover, Algorithm, HopConstraint};
use tdb_datasets::Dataset;

fn bench_figure6(c: &mut Criterion) {
    for (dataset, edges) in [(Dataset::WikiVote, 800), (Dataset::WebGoogle, 1500)] {
        let g = small_proxy(dataset, edges);
        let mut group = c.benchmark_group(format!("figure6/{}", dataset.spec().code));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in 3..=7usize {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::DarcDv, Algorithm::BurPlus, Algorithm::TdbPlusPlus] {
                // Keep the exhaustive baselines to the small k values so the
                // bench suite stays under a laptop budget; TDB++ runs the full
                // sweep (this mirrors the INF entries of the paper's plots).
                if k > 5 && algorithm != Algorithm::TdbPlusPlus {
                    continue;
                }
                group.bench_with_input(
                    BenchmarkId::new(algorithm.name(), k),
                    &(algorithm, k),
                    |b, &(algorithm, _)| {
                        b.iter(|| black_box(compute_cover(&g, &constraint, algorithm).cover_size()))
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figure6);
criterion_main!(benches);
