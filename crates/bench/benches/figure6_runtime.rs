//! Figure 6 bench: runtime versus the hop constraint `k` for DARC-DV, BUR+ and
//! TDB++.
//!
//! The paper sweeps `k ∈ [3, 7]` over twelve datasets; the bench sweeps the
//! same `k` range on a Wiki-Vote proxy (panel (a) of the figure) and a
//! web-Google proxy (panel (k)), which is where the paper's speedup gap is
//! respectively smallest and largest among the panels we can fit in a bench
//! budget. The expected shape: the exhaustive baselines blow up with `k`, while
//! TDB++ grows roughly linearly.

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::{Algorithm, HopConstraint, Solver};
use tdb_datasets::Dataset;

fn main() {
    let bench = Microbench::new("figure6");
    for (dataset, edges) in [(Dataset::WikiVote, 800), (Dataset::WebGoogle, 1500)] {
        let g = small_proxy(dataset, edges);
        for k in 3..=7usize {
            let constraint = HopConstraint::new(k);
            for algorithm in [
                Algorithm::DarcDv,
                Algorithm::BurPlus,
                Algorithm::TdbPlusPlus,
            ] {
                // Keep the exhaustive baselines to the small k values so the
                // bench suite stays under a laptop budget; TDB++ runs the full
                // sweep (this mirrors the INF entries of the paper's plots).
                if k > 5 && algorithm != Algorithm::TdbPlusPlus {
                    continue;
                }
                let solver = Solver::new(algorithm);
                bench.bench(
                    &format!("{}/{}/k={k}", dataset.spec().code, algorithm.name()),
                    || solver.solve(&g, &constraint).unwrap().cover_size(),
                );
            }
        }
    }
}
