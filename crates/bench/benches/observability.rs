//! Observability bench: what does the `tdb-obs` instrumentation itself cost?
//!
//! Three views are reported:
//!
//! * `Microbench` rows timing the raw primitives — a histogram record, the
//!   disabled-registry fast path, a counter increment, a span guard with the
//!   tracer off, and a flight-recorder `event!` with the recorder off and on
//!   — so a regression in the hot-path cost is visible in isolation, and
//! * an end-to-end overhead row from [`tdb_bench::overhead`]: the same TDB++
//!   solve timed with the process-global registry disabled and enabled, which
//!   must stay within the documented 2% budget.

use std::time::Duration;

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_bench::overhead::measure_solve_overhead;
use tdb_core::HopConstraint;
use tdb_datasets::Dataset;
use tdb_obs::{Histogram, Registry};

fn main() {
    let bench = Microbench::new("observability");

    // Primitive costs. Each closure does 1000 operations so the per-sample
    // wall clock is measurable; read the rows as "per 1000 ops".
    let registry = Registry::new();
    let hist = registry.histogram("bench_hist_seconds");
    let counter = registry.counter("bench_ops_total");
    let dt = Duration::from_micros(3);
    bench.bench("histogram_record/enabled_x1000", || {
        for _ in 0..1000 {
            hist.record(dt);
        }
        hist.count()
    });
    registry.set_enabled(false);
    bench.bench("histogram_start/disabled_x1000", || {
        let mut armed = 0u32;
        for _ in 0..1000 {
            if let Some(_t) = hist.start() {
                armed += 1;
            }
        }
        armed
    });
    registry.set_enabled(true);
    bench.bench("counter_inc_x1000", || {
        for _ in 0..1000 {
            counter.inc();
        }
        counter.get()
    });
    let standalone = Histogram::new();
    bench.bench("histogram_timer/enabled_x1000", || {
        for _ in 0..1000 {
            let _t = standalone.start();
        }
        standalone.count()
    });
    bench.bench("span_guard/disabled_x1000", || {
        // The tracer is off by default: this times the early-out.
        let mut armed = 0u32;
        for _ in 0..1000 {
            if let Some(_s) = tdb_obs::trace::span("bench/span") {
                armed += 1;
            }
        }
        armed
    });

    // Flight-recorder primitives: the disabled early-out (one relaxed load,
    // field expressions never evaluated) and a full enabled record with two
    // KV fields.
    bench.bench("event/disabled_x1000", || {
        for i in 0..1000u64 {
            tdb_obs::event!(tdb_obs::Level::Debug, "bench/event", i = i, tag = "off");
        }
        tdb_obs::event::dropped()
    });
    tdb_obs::event::set_enabled(true);
    bench.bench("event/enabled_x1000", || {
        for i in 0..1000u64 {
            tdb_obs::event!(tdb_obs::Level::Debug, "bench/event", i = i, tag = "on");
        }
        0u64
    });
    tdb_obs::event::set_enabled(false);
    let _ = tdb_obs::event::drain();

    // End-to-end: the documented <2% contract, measured on a real solve.
    // The solve here is tens of microseconds, so the paired-median estimator
    // needs a few hundred pairs (still a handful of milliseconds total) to
    // resolve sub-percent overhead.
    let g = small_proxy(Dataset::WikiVote, 4_000);
    let report = measure_solve_overhead(&g, &HopConstraint::new(4), 300);
    println!("\n## end-to-end overhead (TDB++, registry off vs on)");
    println!("{}", report.format());
}
