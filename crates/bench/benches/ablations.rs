//! Ablation benches for the design choices called out in `DESIGN.md` §7.
//!
//! * `ablation_engine` — block DFS vs naive DFS as the per-query primitive
//!   (the TDB → TDB+ step in isolation, measured on raw queries).
//! * `ablation_filter` — BFS filter on/off and the exact-filter extension
//!   (the TDB+ → TDB++ → TDB++X ladder).
//! * `ablation_scc` — SCC pre-filter on/off.
//! * `ablation_order` — vertex scan order sensitivity.
//! * `ablation_parallel` — parallel TDB++ with 1/2/4 worker threads.
//! * `ablation_minimal_engine` — Algorithm 7 driven by the naive vs block DFS.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_support::small_proxy;
use tdb_core::prelude::*;
use tdb_cycle::{find_cycle_through, BlockSearcher};
use tdb_datasets::Dataset;
use tdb_graph::{ActiveSet, Graph};

fn bench_engine_queries(c: &mut Criterion) {
    let g = small_proxy(Dataset::WikiVote, 4000);
    let active = ActiveSet::all_active(g.num_vertices());
    let constraint = HopConstraint::new(5);
    let mut group = c.benchmark_group("ablation_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("block_dfs_all_vertices", |b| {
        let mut searcher = BlockSearcher::new(g.num_vertices());
        b.iter(|| {
            let mut hits = 0usize;
            for v in g.vertices() {
                if searcher.is_on_constrained_cycle(&g, &active, v, &constraint) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("naive_dfs_all_vertices", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for v in g.vertices() {
                if find_cycle_through(&g, &active, v, &constraint).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let g = small_proxy(Dataset::WebGoogle, 8000);
    let constraint = HopConstraint::new(5);
    let mut group = c.benchmark_group("ablation_filter");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, config) in [
        ("tdb_plus_no_filter", TopDownConfig::tdb_plus()),
        ("tdb_plus_plus_bfs_filter", TopDownConfig::tdb_plus_plus()),
        ("tdb_extended_exact_filter", TopDownConfig::extended()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(top_down_cover(&g, &constraint, &config).cover_size()))
        });
    }
    group.finish();
}

fn bench_scc_prefilter(c: &mut Criterion) {
    // Citation-class proxies have a large acyclic fringe, the best case for the
    // SCC pre-filter.
    let g = small_proxy(Dataset::Citeseer, 8000);
    let constraint = HopConstraint::new(5);
    let mut group = c.benchmark_group("ablation_scc");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let without = TopDownConfig::tdb_plus_plus();
    let with = TopDownConfig {
        scc_prefilter: true,
        ..TopDownConfig::tdb_plus_plus()
    };
    group.bench_function("without_scc_prefilter", |b| {
        b.iter(|| black_box(top_down_cover(&g, &constraint, &without).cover_size()))
    });
    group.bench_function("with_scc_prefilter", |b| {
        b.iter(|| black_box(top_down_cover(&g, &constraint, &with).cover_size()))
    });
    group.finish();
}

fn bench_scan_order(c: &mut Criterion) {
    let g = small_proxy(Dataset::WikiVote, 4000);
    let constraint = HopConstraint::new(5);
    let mut group = c.benchmark_group("ablation_order");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, order) in [
        ("ascending", ScanOrder::Ascending),
        ("degree_descending", ScanOrder::DegreeDescending),
        ("degree_ascending", ScanOrder::DegreeAscending),
        ("random", ScanOrder::Random(7)),
    ] {
        let config = TopDownConfig::tdb_plus_plus().with_scan_order(order);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(top_down_cover(&g, &constraint, &config).cover_size()))
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let g = small_proxy(Dataset::WebGoogle, 16_000);
    let constraint = HopConstraint::new(5);
    let mut group = c.benchmark_group("ablation_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("sequential_tdb_plus_plus", |b| {
        b.iter(|| {
            black_box(
                top_down_cover(&g, &constraint, &TopDownConfig::tdb_plus_plus()).cover_size(),
            )
        })
    });
    for threads in [1usize, 2, 4] {
        let config = ParallelConfig {
            num_threads: threads,
            scan_order: ScanOrder::Ascending,
        };
        group.bench_with_input(
            BenchmarkId::new("parallel_tdb_plus_plus", threads),
            &threads,
            |b, _| b.iter(|| black_box(parallel_top_down_cover(&g, &constraint, &config).cover_size())),
        );
    }
    group.finish();
}

fn bench_minimal_engine(c: &mut Criterion) {
    let g = small_proxy(Dataset::AsCaida, 2500);
    let constraint = HopConstraint::new(4);
    let mut group = c.benchmark_group("ablation_minimal_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, engine) in [
        ("naive_find_cycle", SearchEngine::Naive),
        ("block_dfs", SearchEngine::Block),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut config = BottomUpConfig::bur_plus();
                config.minimal_engine = engine;
                black_box(bottom_up_cover(&g, &constraint, &config).cover_size())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_queries,
    bench_filters,
    bench_scc_prefilter,
    bench_scan_order,
    bench_parallel,
    bench_minimal_engine
);
criterion_main!(benches);
