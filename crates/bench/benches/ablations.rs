//! Ablation benches for the design choices called out in `DESIGN.md` §7.
//!
//! * `ablation_engine` — block DFS vs naive DFS as the per-query primitive
//!   (the TDB → TDB+ step in isolation, measured on raw queries).
//! * `ablation_filter` — BFS filter on/off and the exact-filter extension
//!   (the TDB+ → TDB++ → TDB++X ladder).
//! * `ablation_scc` — SCC pre-filter on/off.
//! * `ablation_order` — vertex scan order sensitivity.
//! * `ablation_parallel` — parallel TDB++ with 1/2/4 worker threads.
//! * `ablation_minimal_engine` — Algorithm 7 driven by the naive vs block DFS.
//!
//! Every cover computation goes through the unified [`Solver`] /
//! [`CoverAlgorithm`] surface; only the raw-query ablation touches the search
//! primitives directly.

use tdb_bench::bench_support::small_proxy;
use tdb_bench::microbench::Microbench;
use tdb_core::prelude::*;
use tdb_cycle::{find_cycle_through, BlockSearcher};
use tdb_datasets::Dataset;
use tdb_graph::{ActiveSet, CsrGraph, Graph};

/// Run a configured algorithm value through the trait, like the harness does.
fn solve_size(algorithm: &dyn CoverAlgorithm, g: &CsrGraph, constraint: &HopConstraint) -> usize {
    let mut ctx = SolveContext::new();
    algorithm
        .solve(g, constraint, &mut ctx)
        .expect("unbudgeted solve cannot fail")
        .cover_size()
}

fn bench_engine_queries(bench: &Microbench) {
    let g = small_proxy(Dataset::WikiVote, 4000);
    let active = ActiveSet::all_active(g.num_vertices());
    let constraint = HopConstraint::new(5);
    let mut searcher = BlockSearcher::new(g.num_vertices());
    bench.bench("ablation_engine/block_dfs_all_vertices", || {
        let mut hits = 0usize;
        for v in g.vertices() {
            if searcher.is_on_constrained_cycle(&g, &active, v, &constraint) {
                hits += 1;
            }
        }
        hits
    });
    bench.bench("ablation_engine/naive_dfs_all_vertices", || {
        let mut hits = 0usize;
        for v in g.vertices() {
            if find_cycle_through(&g, &active, v, &constraint).is_some() {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_filters(bench: &Microbench) {
    let g = small_proxy(Dataset::WebGoogle, 8000);
    let constraint = HopConstraint::new(5);
    for (label, config) in [
        ("tdb_plus_no_filter", TopDownConfig::tdb_plus()),
        ("tdb_plus_plus_bfs_filter", TopDownConfig::tdb_plus_plus()),
        ("tdb_extended_exact_filter", TopDownConfig::extended()),
    ] {
        bench.bench(&format!("ablation_filter/{label}"), || {
            solve_size(&config, &g, &constraint)
        });
    }
}

fn bench_scc_prefilter(bench: &Microbench) {
    // Citation-class proxies have a large acyclic fringe, the best case for the
    // SCC pre-filter.
    let g = small_proxy(Dataset::Citeseer, 8000);
    let constraint = HopConstraint::new(5);
    let without = TopDownConfig::tdb_plus_plus();
    let with = TopDownConfig {
        scc_prefilter: true,
        ..TopDownConfig::tdb_plus_plus()
    };
    bench.bench("ablation_scc/without_scc_prefilter", || {
        solve_size(&without, &g, &constraint)
    });
    bench.bench("ablation_scc/with_scc_prefilter", || {
        solve_size(&with, &g, &constraint)
    });
}

fn bench_scan_order(bench: &Microbench) {
    let g = small_proxy(Dataset::WikiVote, 4000);
    let constraint = HopConstraint::new(5);
    for (label, order) in [
        ("ascending", ScanOrder::Ascending),
        ("degree_descending", ScanOrder::DegreeDescending),
        ("degree_ascending", ScanOrder::DegreeAscending),
        ("random", ScanOrder::Random(7)),
    ] {
        let solver = Solver::new(Algorithm::TdbPlusPlus).with_scan_order(order);
        bench.bench(&format!("ablation_order/{label}"), || {
            solver.solve(&g, &constraint).unwrap().cover_size()
        });
    }
}

fn bench_parallel(bench: &Microbench) {
    let g = small_proxy(Dataset::WebGoogle, 16_000);
    let constraint = HopConstraint::new(5);
    let sequential = Solver::new(Algorithm::TdbPlusPlus);
    bench.bench("ablation_parallel/sequential_tdb_plus_plus", || {
        sequential.solve(&g, &constraint).unwrap().cover_size()
    });
    for threads in [1usize, 2, 4] {
        let solver = Solver::new(Algorithm::TdbParallel).with_threads(threads);
        bench.bench(
            &format!("ablation_parallel/parallel_tdb_plus_plus/{threads}"),
            || solver.solve(&g, &constraint).unwrap().cover_size(),
        );
    }
}

fn bench_minimal_engine(bench: &Microbench) {
    let g = small_proxy(Dataset::AsCaida, 2500);
    let constraint = HopConstraint::new(4);
    for (label, engine) in [
        ("naive_find_cycle", SearchEngine::Naive),
        ("block_dfs", SearchEngine::Block),
    ] {
        let mut config = BottomUpConfig::bur_plus();
        config.minimal_engine = engine;
        bench.bench(&format!("ablation_minimal_engine/{label}"), || {
            solve_size(&config, &g, &constraint)
        });
    }
}

fn main() {
    let bench = Microbench::new("ablations");
    bench_engine_queries(&bench);
    bench_filters(&bench);
    bench_scc_prefilter(&bench);
    bench_scan_order(&bench);
    bench_parallel(&bench);
    bench_minimal_engine(&bench);
}
