//! Weighted-objective scenario: `Objective::MinWeight` under a skewed
//! cost model vs the cardinality baseline, plus the budgeted best-effort
//! solve — the perf + quality pin for the `CoverRequest` API.
//!
//! The cost model is the fraud story's: vertices in the top degree tier are
//! `vip_cost`× as expensive to remove as everyone else, so a weight-aware
//! solve should buy a cheaper cover by spending more (cheap) vertices. The
//! scenario also re-checks the API's two contracts on every run:
//!
//! * **all-1 degeneracy** — `MinWeight` with unit weights must reproduce the
//!   `MinCardinality` cover bit-for-bit, and
//! * **budget hardness** — a `Budget::MaxCost` solve never exceeds its cap
//!   and reports the escaped cycles as its residual.
//!
//! Consumed by the `experiments weighted` subcommand and the `bench`
//! trajectory (the `weighted` scenario of `BENCH_<tag>.json`).

use std::time::{Duration, Instant};

use tdb_core::prelude::*;
use tdb_core::Budget;
use tdb_graph::gen::erdos_renyi_gnm;
use tdb_graph::{CostModel, Graph};

/// Parameters of a weighted-objective run.
#[derive(Debug, Clone)]
pub struct WeightedConfig {
    /// Vertices of the synthetic graph.
    pub vertices: usize,
    /// Edges of the synthetic graph.
    pub edges: usize,
    /// Hop constraint `k`.
    pub k: usize,
    /// RNG seed for graph synthesis.
    pub seed: u64,
    /// Total-degree threshold above which a vertex is "VIP".
    pub vip_degree: usize,
    /// Removal cost of a VIP vertex (everyone else costs 1).
    pub vip_cost: u64,
    /// Cost cap of the budgeted solve, as a per-mille fraction of the
    /// weighted cover's cost (e.g. `750` = 75% — tight enough to trim).
    pub budget_permille: u64,
}

impl WeightedConfig {
    /// The acceptance workload: a 20k-vertex graph with mean total degree 8,
    /// VIP = top degree tier.
    pub fn acceptance() -> Self {
        WeightedConfig {
            vertices: 20_000,
            edges: 80_000,
            k: 4,
            seed: 42,
            vip_degree: 14,
            vip_cost: 100,
            budget_permille: 750,
        }
    }

    /// Tiny configuration for unit tests and the CI smoke step.
    pub fn smoke() -> Self {
        WeightedConfig {
            vertices: 1_000,
            edges: 4_000,
            k: 4,
            seed: 7,
            vip_degree: 12,
            vip_cost: 100,
            budget_permille: 750,
        }
    }
}

/// Outcome of one weighted-objective run.
#[derive(Debug, Clone)]
pub struct WeightedReport {
    /// Vertices of the graph.
    pub vertices: usize,
    /// Edges of the graph.
    pub edges: usize,
    /// Vertices priced at `vip_cost`.
    pub vip_vertices: usize,
    /// Wall-clock of the cardinality solve.
    pub cardinality_time: Duration,
    /// Wall-clock of the weighted solve.
    pub weighted_time: Duration,
    /// Cover size of the cardinality solve.
    pub cardinality_cover: usize,
    /// Cost of the cardinality cover under the skewed model.
    pub cardinality_cost: u64,
    /// Cover size of the weighted solve.
    pub weighted_cover: usize,
    /// Cost of the weighted cover.
    pub weighted_cost: u64,
    /// Both unbudgeted covers passed the independent validity audit.
    pub covers_valid: bool,
    /// `MinWeight` with all-1 weights reproduced the cardinality cover
    /// bit-for-bit.
    pub unit_weights_bit_exact: bool,
    /// Cost cap handed to the budgeted solve.
    pub budget_cap: u64,
    /// Cost of the budgeted (trimmed) cover.
    pub budgeted_cost: u64,
    /// Vertices kept by the budgeted solve.
    pub budgeted_cover: usize,
    /// Whether the budget forced a trim.
    pub budgeted_exhausted: bool,
    /// Residual cycles the budgeted cover fails to break.
    pub residual_cycles: usize,
    /// The budgeted solve respected its cap and its residual accounting
    /// (`exhausted` ⟺ non-empty residual).
    pub budget_respected: bool,
}

impl WeightedReport {
    /// Every contract the scenario checks held.
    pub fn healthy(&self) -> bool {
        self.covers_valid && self.unit_weights_bit_exact && self.budget_respected
    }
}

/// Run the weighted-objective scenario.
pub fn run_weighted(config: &WeightedConfig) -> WeightedReport {
    let g = erdos_renyi_gnm(config.vertices, config.edges, config.seed);
    let constraint = HopConstraint::new(config.k);
    let costs = CostModel::from_fn(g.num_vertices(), |v| {
        if g.out_degree(v) + g.in_degree(v) >= config.vip_degree {
            config.vip_cost
        } else {
            1
        }
    });
    let vip_vertices = (0..g.num_vertices() as u32)
        .filter(|&v| costs.cost(v) > 1)
        .count();

    let timer = Instant::now();
    let baseline = Solver::new(Algorithm::TdbPlusPlus)
        .solve(&g, &constraint)
        .expect("unbudgeted solve cannot fail");
    let cardinality_time = timer.elapsed();

    let mut request = CoverRequest::new(Algorithm::TdbPlusPlus, config.k);
    request.objective = Objective::MinWeight;
    request.costs = costs.clone();
    let timer = Instant::now();
    let weighted = request.solve(&g).expect("unbudgeted solve cannot fail");
    let weighted_time = timer.elapsed();

    let covers_valid = verify_cover(&g, &baseline.cover, &constraint).is_valid
        && verify_cover(&g, &weighted.cover, &constraint).is_valid;

    // Contract 1: unit weights degenerate to the cardinality solve exactly.
    let mut unit = CoverRequest::new(Algorithm::TdbPlusPlus, config.k);
    unit.objective = Objective::MinWeight;
    unit.costs = CostModel::from_fn(g.num_vertices(), |_| 1);
    let unit_weights_bit_exact = unit
        .solve(&g)
        .map(|r| r.cover == baseline.cover)
        .unwrap_or(false);

    // Contract 2: a tight cost cap is hard, and the report accounts for what
    // it gave up.
    let budget_cap = (weighted.total_cost * config.budget_permille / 1000).max(1);
    let mut budgeted_request = CoverRequest::new(Algorithm::TdbPlusPlus, config.k);
    budgeted_request.objective = Objective::MinWeight;
    budgeted_request.costs = costs;
    budgeted_request.budget = Budget::MaxCost(budget_cap);
    let budgeted = budgeted_request
        .solve(&g)
        .expect("budgeted solves are best-effort, not errors");
    // `exhausted` ⟺ non-empty residual ⟺ the kept cover fails the audit.
    let budget_respected = budgeted.total_cost <= budget_cap
        && budgeted.exhausted != budgeted.residual.is_empty()
        && budgeted.exhausted != verify_cover(&g, &budgeted.cover, &constraint).is_valid;

    WeightedReport {
        vertices: config.vertices,
        edges: g.num_edges(),
        vip_vertices,
        cardinality_time,
        weighted_time,
        cardinality_cover: baseline.cover_size(),
        cardinality_cost: baseline
            .cover
            .iter()
            .map(|v| request.costs.cost(v))
            .sum::<u64>(),
        weighted_cover: weighted.cover_size(),
        weighted_cost: weighted.total_cost,
        covers_valid,
        unit_weights_bit_exact,
        budget_cap,
        budgeted_cost: budgeted.total_cost,
        budgeted_cover: budgeted.cover_size(),
        budgeted_exhausted: budgeted.exhausted,
        residual_cycles: budgeted.residual.len(),
        budget_respected,
    }
}

/// Render a report as the fixed-width lines the harness prints.
pub fn format_weighted_report(r: &WeightedReport) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "graph     |V|={} |E|={}  {} VIP vertices",
        r.vertices, r.edges, r.vip_vertices
    ));
    out.push(format!(
        "cardinality  {} vertices at cost {}  ({:.3}s)",
        r.cardinality_cover,
        r.cardinality_cost,
        r.cardinality_time.as_secs_f64()
    ));
    out.push(format!(
        "min-weight   {} vertices at cost {}  ({:.3}s)  [{:+.1}% cost vs baseline]",
        r.weighted_cover,
        r.weighted_cost,
        r.weighted_time.as_secs_f64(),
        (r.weighted_cost as f64 / r.cardinality_cost as f64 - 1.0) * 100.0
    ));
    out.push(format!(
        "budgeted     cap {} -> {} vertices at cost {}  exhausted {}  residual {} cycles",
        r.budget_cap, r.budgeted_cover, r.budgeted_cost, r.budgeted_exhausted, r.residual_cycles
    ));
    out.push(format!(
        "contracts    covers valid {}  all-1 bit-exact {}  budget respected {}",
        r.covers_valid, r.unit_weights_bit_exact, r.budget_respected
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_weighted_holds_its_contracts() {
        let report = run_weighted(&WeightedConfig::smoke());
        assert!(report.covers_valid, "unbudgeted covers must be valid");
        assert!(
            report.unit_weights_bit_exact,
            "all-1 MinWeight must match MinCardinality bit-for-bit"
        );
        assert!(
            report.budget_respected,
            "MaxCost cap exceeded or residual accounting wrong"
        );
        assert!(report.budgeted_cost <= report.budget_cap);
        assert!(report.healthy());
        let lines = format_weighted_report(&report);
        assert!(lines.iter().any(|l| l.contains("min-weight")));
        assert!(lines.iter().any(|l| l.contains("budget respected true")));
    }

    #[test]
    fn weighted_cover_avoids_vips_on_a_hub_graph() {
        // Small enough to reason about: the weighted cover never pays more
        // than the cardinality cover under the same skewed model.
        let config = WeightedConfig {
            vertices: 400,
            edges: 1_800,
            vip_degree: 11,
            ..WeightedConfig::smoke()
        };
        let report = run_weighted(&config);
        assert!(report.vip_vertices > 0, "the tier threshold must bite");
        assert!(
            report.weighted_cost <= report.cardinality_cost,
            "weight-aware solve paid {} vs baseline {}",
            report.weighted_cost,
            report.cardinality_cost
        );
    }
}
