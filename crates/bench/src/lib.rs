//! # tdb-bench
//!
//! Experiment harness regenerating every table and figure of the TDB paper's
//! evaluation (Section VII) on synthetic dataset proxies.
//!
//! The crate has two faces:
//!
//! * the `experiments` binary (`cargo run --release -p tdb-bench --bin
//!   experiments -- all`) prints the rows of Table II, Table III, Table IV and
//!   the data series behind Figures 6–10 in a plain-text form that
//!   `EXPERIMENTS.md` quotes verbatim, and
//! * the bench targets (`cargo bench -p tdb-bench`, driven by the crate's own
//!   [`microbench`] harness) time the same algorithm/dataset/parameter
//!   combinations on small proxies, one bench target per runtime table or
//!   figure plus an `ablations` target for the design choices called out in
//!   `DESIGN.md` §7.
//!
//! The library part holds the shared plumbing: proxy synthesis, per-row
//! execution with the same gating the paper applies (the exhaustive baselines
//! are only run on graphs they can finish), and table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;
pub mod overhead;
pub mod serve;
pub mod sharding;
pub mod streaming;
pub mod trajectory;
pub mod watch;
pub mod weighted;

use std::time::Duration;

use tdb_core::prelude::*;
use tdb_core::Algorithm;
use tdb_datasets::{synthesize, Dataset, SynthesisConfig};
use tdb_graph::metrics::{format_count, graph_stats};
use tdb_graph::{CsrGraph, Graph};

/// Configuration of an experiment sweep.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Proxy synthesis parameters (scale, seed, caps).
    pub synthesis: SynthesisConfig,
    /// Hop constraints to sweep (Figures 6–10 use `3..=7`).
    pub ks: Vec<usize>,
    /// Edge-count ceiling above which the exhaustive baselines (`DARC-DV`,
    /// `BUR`, `BUR+`, `TDB`) are skipped, mirroring the "-" entries of
    /// Table III.
    pub slow_algorithm_edge_limit: usize,
    /// Verify every produced cover (adds a full validity check per row).
    pub verify: bool,
    /// Optional wall-clock budget per cell: cells whose solve outruns it are
    /// reported as gated (`-`), like the paper's INF entries.
    pub time_budget: Option<Duration>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            synthesis: SynthesisConfig::harness_default(),
            ks: vec![3, 4, 5, 6, 7],
            slow_algorithm_edge_limit: 60_000,
            verify: false,
            time_budget: None,
        }
    }
}

impl ExperimentConfig {
    /// Small configuration used by unit tests and CI smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            synthesis: SynthesisConfig::tiny(),
            ks: vec![3, 4, 5],
            slow_algorithm_edge_limit: 10_000,
            verify: true,
            time_budget: None,
        }
    }

    /// Whether `algorithm` should be attempted on a proxy with `edges` edges.
    pub fn algorithm_enabled(&self, algorithm: Algorithm, edges: usize) -> bool {
        match algorithm {
            Algorithm::TdbPlusPlus
            | Algorithm::TdbPlus
            | Algorithm::TdbExtended
            | Algorithm::TdbParallel => true,
            Algorithm::Bur | Algorithm::BurPlus | Algorithm::DarcDv | Algorithm::Tdb => {
                edges <= self.slow_algorithm_edge_limit
            }
        }
    }
}

/// One measured cell of a table or figure.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Dataset code (`"WKV"`, ...).
    pub dataset: String,
    /// Algorithm name (`"TDB++"`, ...).
    pub algorithm: String,
    /// Hop constraint.
    pub k: usize,
    /// Whether 2-cycles were included.
    pub include_two_cycles: bool,
    /// Cover size (number of vertices).
    pub cover_size: usize,
    /// Wall-clock runtime of the cover computation.
    pub elapsed: Duration,
    /// Number of cycle-existence queries issued.
    pub cycle_queries: u64,
    /// Vertices of the proxy graph.
    pub graph_vertices: usize,
    /// Edges of the proxy graph.
    pub graph_edges: usize,
    /// Whether the produced cover passed verification (`None` when not checked).
    pub verified: Option<bool>,
}

impl RowResult {
    /// Runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Synthesize the proxy graph of a dataset under this configuration.
pub fn proxy(dataset: Dataset, config: &ExperimentConfig) -> CsrGraph {
    synthesize(dataset, &config.synthesis)
}

/// Run one `(dataset proxy, algorithm, k)` cell. Returns `None` when the
/// algorithm is gated off for this graph size (printed as `-`, like the paper).
pub fn run_cell(
    graph: &CsrGraph,
    dataset: Dataset,
    algorithm: Algorithm,
    constraint: &HopConstraint,
    config: &ExperimentConfig,
) -> Option<RowResult> {
    if !config.algorithm_enabled(algorithm, graph.num_edges()) {
        return None;
    }
    let mut solver = Solver::new(algorithm);
    if let Some(budget) = config.time_budget {
        solver = solver.with_time_budget(budget);
    }
    let run = match solver.solve(graph, constraint) {
        Ok(run) => run,
        // Budget overruns (and any future failure mode) are reported exactly
        // like size-gated cells.
        Err(_) => return None,
    };
    let verified = if config.verify {
        Some(is_valid_cover(graph, &run.cover, constraint))
    } else {
        None
    };
    Some(RowResult {
        dataset: dataset.spec().code.to_string(),
        algorithm: algorithm.name().to_string(),
        k: constraint.max_hops,
        include_two_cycles: constraint.include_two_cycles,
        cover_size: run.cover_size(),
        elapsed: run.metrics.elapsed,
        cycle_queries: run.metrics.cycle_queries,
        graph_vertices: graph.num_vertices(),
        graph_edges: graph.num_edges(),
        verified,
    })
}

/// Table II: dataset statistics of the synthesized proxies next to the
/// published numbers.
pub fn table2_rows(config: &ExperimentConfig) -> Vec<String> {
    let mut rows = Vec::new();
    rows.push(format!(
        "{:<5} {:<15} {:>12} {:>14} {:>8} | {:>12} {:>14} {:>8} {:>8}",
        "Code",
        "Dataset",
        "paper |V|",
        "paper |E|",
        "d_avg",
        "proxy |V|",
        "proxy |E|",
        "d_avg",
        "recip"
    ));
    for dataset in Dataset::all() {
        let spec = dataset.spec();
        let g = proxy(dataset, config);
        let stats = graph_stats(&g);
        rows.push(format!(
            "{:<5} {:<15} {:>12} {:>14} {:>8.1} | {:>12} {:>14} {:>8.2} {:>8.3}",
            spec.code,
            spec.name,
            format_count(spec.vertices),
            format_count(spec.edges),
            spec.avg_degree,
            format_count(stats.num_vertices),
            format_count(stats.num_edges),
            stats.average_degree,
            stats.reciprocity,
        ));
    }
    rows
}

/// Table III: cover size and runtime of DARC-DV, BUR+ and TDB++ at `k = 5` for
/// every dataset (the four large ones run TDB++ only, like the paper).
pub fn table3_rows(config: &ExperimentConfig) -> Vec<String> {
    let constraint = HopConstraint::new(5);
    let mut rows = Vec::new();
    rows.push(format!(
        "{:<5} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "Name",
        "|E|proxy",
        "DARC size",
        "DARC t(s)",
        "BUR+ size",
        "BUR+ t(s)",
        "TDB++ size",
        "TDB++ t(s)"
    ));
    for dataset in Dataset::all() {
        let g = proxy(dataset, config);
        let mut cells: Vec<String> =
            vec![dataset.spec().code.to_string(), format_count(g.num_edges())];
        for algorithm in [
            Algorithm::DarcDv,
            Algorithm::BurPlus,
            Algorithm::TdbPlusPlus,
        ] {
            match run_cell(&g, dataset, algorithm, &constraint, config) {
                Some(r) => {
                    cells.push(r.cover_size.to_string());
                    cells.push(format!("{:.3}", r.seconds()));
                }
                None => {
                    cells.push("-".to_string());
                    cells.push("-".to_string());
                }
            }
        }
        rows.push(format!(
            "{:<5} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6], cells[7]
        ));
    }
    rows
}

/// Table IV: TDB++ cover size with and without 2-cycles at `k = 5`.
pub fn table4_rows(config: &ExperimentConfig) -> Vec<String> {
    let mut rows = Vec::new();
    rows.push(format!(
        "{:<5} {:>14} {:>14} {:>8}",
        "Name", "No 2-cycle", "With 2-cycle", "Ratio"
    ));
    for dataset in Dataset::small_and_medium() {
        let g = proxy(dataset, config);
        let without = run_cell(
            &g,
            dataset,
            Algorithm::TdbPlusPlus,
            &HopConstraint::new(5),
            config,
        )
        .expect("TDB++ is never gated");
        let with = run_cell(
            &g,
            dataset,
            Algorithm::TdbPlusPlus,
            &HopConstraint::with_two_cycles(5),
            config,
        )
        .expect("TDB++ is never gated");
        let ratio = if without.cover_size == 0 {
            f64::NAN
        } else {
            with.cover_size as f64 / without.cover_size as f64
        };
        rows.push(format!(
            "{:<5} {:>14} {:>14} {:>8.2}",
            dataset.spec().code,
            without.cover_size,
            with.cover_size,
            ratio
        ));
    }
    rows
}

/// Figure 6/7 data: runtime and cover size versus `k` for the three headline
/// algorithms on the small/medium datasets. Returns one line per
/// `(dataset, algorithm, k)`.
pub fn figure67_rows(config: &ExperimentConfig, datasets: &[Dataset]) -> Vec<RowResult> {
    let mut rows = Vec::new();
    for &dataset in datasets {
        let g = proxy(dataset, config);
        for &k in &config.ks {
            let constraint = HopConstraint::new(k);
            for algorithm in Algorithm::paper_headline() {
                if let Some(r) = run_cell(&g, dataset, algorithm, &constraint, config) {
                    rows.push(r);
                }
            }
        }
    }
    rows
}

/// Figure 8/9 data: BUR versus BUR+ on the ablation pair (WKV, WGO).
pub fn figure89_rows(config: &ExperimentConfig) -> Vec<RowResult> {
    let mut rows = Vec::new();
    for dataset in Dataset::ablation_pair() {
        let g = proxy(dataset, config);
        for &k in &config.ks {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Bur, Algorithm::BurPlus] {
                if let Some(r) = run_cell(&g, dataset, algorithm, &constraint, config) {
                    rows.push(r);
                }
            }
        }
    }
    rows
}

/// Figure 10 data: TDB versus TDB+ versus TDB++ on the ablation pair.
pub fn figure10_rows(config: &ExperimentConfig) -> Vec<RowResult> {
    let mut rows = Vec::new();
    for dataset in Dataset::ablation_pair() {
        let g = proxy(dataset, config);
        for &k in &config.ks {
            let constraint = HopConstraint::new(k);
            for algorithm in [Algorithm::Tdb, Algorithm::TdbPlus, Algorithm::TdbPlusPlus] {
                if let Some(r) = run_cell(&g, dataset, algorithm, &constraint, config) {
                    rows.push(r);
                }
            }
        }
    }
    rows
}

/// Format a batch of [`RowResult`]s as a fixed-width table.
pub fn format_rows(rows: &[RowResult]) -> Vec<String> {
    let mut out = Vec::with_capacity(rows.len() + 1);
    out.push(format!(
        "{:<5} {:<9} {:>3} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "Data", "Algo", "k", "2cyc", "cover size", "time (s)", "queries", "verified"
    ));
    for r in rows {
        out.push(format!(
            "{:<5} {:<9} {:>3} {:>6} {:>12} {:>12.4} {:>12} {:>9}",
            r.dataset,
            r.algorithm,
            r.k,
            if r.include_two_cycles { "yes" } else { "no" },
            r.cover_size,
            r.seconds(),
            r.cycle_queries,
            match r.verified {
                Some(true) => "ok",
                Some(false) => "FAIL",
                None => "-",
            }
        ));
    }
    out
}

/// Helpers shared by the Criterion bench targets.
pub mod bench_support {
    use super::*;

    /// Synthesize a proxy of `dataset` scaled to roughly `target_edges` edges.
    ///
    /// Criterion benches need graphs small enough that even the exhaustive
    /// baselines finish a sample in milliseconds; this helper derives the scale
    /// factor from the published edge count.
    pub fn small_proxy(dataset: Dataset, target_edges: usize) -> CsrGraph {
        let spec = dataset.spec();
        let scale = (target_edges as f64 / spec.edges as f64).min(1.0);
        synthesize(
            dataset,
            &SynthesisConfig {
                scale,
                seed: 42,
                max_edges: target_edges * 2,
                max_vertices: target_edges,
            },
        )
    }

    /// The standard hop constraint used by the runtime benches.
    pub fn k(k: usize) -> HopConstraint {
        HopConstraint::new(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            synthesis: SynthesisConfig {
                scale: 0.004,
                seed: 42,
                max_edges: 3_000,
                max_vertices: 1_500,
            },
            ks: vec![3, 4],
            slow_algorithm_edge_limit: 5_000,
            verify: true,
            time_budget: None,
        }
    }

    #[test]
    fn run_cell_produces_verified_rows() {
        let cfg = tiny_config();
        let g = proxy(Dataset::WikiVote, &cfg);
        let r = run_cell(
            &g,
            Dataset::WikiVote,
            Algorithm::TdbPlusPlus,
            &HopConstraint::new(4),
            &cfg,
        )
        .unwrap();
        assert_eq!(r.dataset, "WKV");
        assert_eq!(r.algorithm, "TDB++");
        assert_eq!(r.verified, Some(true));
        assert_eq!(r.graph_vertices, g.num_vertices());
    }

    #[test]
    fn gating_skips_slow_algorithms_on_big_proxies() {
        let mut cfg = tiny_config();
        cfg.slow_algorithm_edge_limit = 1; // force gating
        let g = proxy(Dataset::WikiVote, &cfg);
        assert!(run_cell(
            &g,
            Dataset::WikiVote,
            Algorithm::DarcDv,
            &HopConstraint::new(3),
            &cfg
        )
        .is_none());
        assert!(run_cell(
            &g,
            Dataset::WikiVote,
            Algorithm::TdbPlusPlus,
            &HopConstraint::new(3),
            &cfg
        )
        .is_some());
    }

    #[test]
    fn zero_time_budget_gates_every_cell() {
        let mut cfg = tiny_config();
        cfg.time_budget = Some(Duration::ZERO);
        let g = proxy(Dataset::WikiVote, &cfg);
        assert!(run_cell(
            &g,
            Dataset::WikiVote,
            Algorithm::TdbPlusPlus,
            &HopConstraint::new(3),
            &cfg
        )
        .is_none());
    }

    #[test]
    fn table2_has_one_row_per_dataset_plus_header() {
        let cfg = tiny_config();
        let rows = table2_rows(&cfg);
        assert_eq!(rows.len(), 17);
        assert!(rows[1].contains("WKV"));
        assert!(rows[16].contains("TW"));
    }

    #[test]
    fn figure10_rows_cover_all_variants_and_agree_on_size() {
        let cfg = tiny_config();
        let rows = figure10_rows(&cfg);
        assert!(!rows.is_empty());
        // For a fixed (dataset, k) the three TDB variants must report the same
        // cover size (they compute identical covers).
        for dataset in ["WKV", "WGO"] {
            for k in &cfg.ks {
                let sizes: Vec<usize> = rows
                    .iter()
                    .filter(|r| r.dataset == dataset && r.k == *k)
                    .map(|r| r.cover_size)
                    .collect();
                if sizes.len() > 1 {
                    assert!(
                        sizes.windows(2).all(|w| w[0] == w[1]),
                        "{dataset} k={k}: {sizes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn formatting_includes_header_and_values() {
        let cfg = tiny_config();
        let g = proxy(Dataset::Gnutella31, &cfg);
        let r = run_cell(
            &g,
            Dataset::Gnutella31,
            Algorithm::TdbPlusPlus,
            &HopConstraint::new(3),
            &cfg,
        )
        .unwrap();
        let lines = format_rows(&[r]);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("cover size"));
        assert!(lines[1].contains("GNU"));
    }
}
