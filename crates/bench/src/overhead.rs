//! Instrumentation-overhead measurement: the `tdb-obs` contract says the
//! always-on metrics must cost less than 2% of a TDB++ end-to-end solve.
//! This module measures that claim instead of asserting it — the same solve is
//! timed with the process-global registry disabled (histograms skip the clock
//! reads) and enabled, and the delta lands in the trajectory file.

use std::time::Instant;

use tdb_core::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::CsrGraph;

/// The overhead budget the crate documents: instrumented solves may be at most
/// this many percent slower than uninstrumented ones.
pub const OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Result of timing a solve with the global registry disabled vs enabled.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Best-of-N solve time with the registry disabled, in seconds.
    pub baseline_secs: f64,
    /// Best-of-N solve time with the registry enabled, in seconds.
    pub instrumented_secs: f64,
    /// Timed samples per flag state.
    pub samples: usize,
}

impl OverheadReport {
    /// Relative slowdown of the instrumented solve, in percent. Negative when
    /// the instrumented run happened to be faster (measurement noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_secs <= 0.0 {
            return 0.0;
        }
        (self.instrumented_secs - self.baseline_secs) / self.baseline_secs * 100.0
    }

    /// Whether the measured overhead is within [`OVERHEAD_BUDGET_PCT`].
    pub fn within_budget(&self) -> bool {
        self.overhead_pct() < OVERHEAD_BUDGET_PCT
    }

    /// One fixed-width report line.
    pub fn format(&self) -> String {
        format!(
            "overhead  baseline {:.4}s  instrumented {:.4}s  => {:+.2}% ({})",
            self.baseline_secs,
            self.instrumented_secs,
            self.overhead_pct(),
            if self.within_budget() {
                "within budget"
            } else {
                "OVER BUDGET"
            }
        )
    }
}

/// Time TDB++ on `graph` with the global registry disabled and enabled,
/// best-of-`samples` each (plus one warm-up solve per flag state). The tracer
/// stays in whatever state it already is (off by default); the registry flag
/// is restored before returning.
pub fn measure_solve_overhead(
    graph: &CsrGraph,
    constraint: &HopConstraint,
    samples: usize,
) -> OverheadReport {
    let registry = tdb_obs::global();
    let was_enabled = registry.is_enabled();
    let solve = || {
        Solver::new(Algorithm::TdbPlusPlus)
            .solve(graph, constraint)
            .expect("unbudgeted solve cannot fail")
    };
    let timed = |enabled: bool| -> f64 {
        registry.set_enabled(enabled);
        let t = Instant::now();
        std::hint::black_box(solve());
        t.elapsed().as_secs_f64()
    };
    // Warm both flag states, then interleave the samples: pairing each
    // baseline measurement with an adjacent instrumented one cancels the slow
    // drift (frequency scaling, cache state) that two sequential best-of
    // blocks would otherwise report as instrumentation overhead.
    registry.set_enabled(false);
    std::hint::black_box(solve());
    registry.set_enabled(true);
    std::hint::black_box(solve());
    let mut baseline_secs = f64::INFINITY;
    let mut instrumented_secs = f64::INFINITY;
    for _ in 0..samples.max(1) {
        baseline_secs = baseline_secs.min(timed(false));
        instrumented_secs = instrumented_secs.min(timed(true));
    }
    registry.set_enabled(was_enabled);
    OverheadReport {
        baseline_secs,
        instrumented_secs,
        samples: samples.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_support::small_proxy;
    use tdb_datasets::Dataset;

    #[test]
    fn overhead_measurement_times_both_states_and_restores_the_flag() {
        let registry = tdb_obs::global();
        let before = registry.is_enabled();
        let g = small_proxy(Dataset::WikiVote, 1_500);
        let report = measure_solve_overhead(&g, &HopConstraint::new(3), 1);
        assert_eq!(registry.is_enabled(), before, "flag must be restored");
        assert!(report.baseline_secs > 0.0);
        assert!(report.instrumented_secs > 0.0);
        assert!(report.overhead_pct().is_finite());
        assert!(report.format().contains("overhead"));
    }

    #[test]
    fn budget_check_matches_the_documented_threshold() {
        let over = OverheadReport {
            baseline_secs: 1.0,
            instrumented_secs: 1.05,
            samples: 3,
        };
        assert!(!over.within_budget());
        let under = OverheadReport {
            baseline_secs: 1.0,
            instrumented_secs: 1.01,
            samples: 3,
        };
        assert!(under.within_budget());
        assert!((under.overhead_pct() - 1.0).abs() < 1e-9);
    }
}
