//! Instrumentation-overhead measurement: the `tdb-obs` contract says the
//! always-on metrics must cost less than 2% of a TDB++ end-to-end solve.
//! This module measures that claim instead of asserting it — the same solve is
//! timed with the full observability stack disabled and enabled (the
//! process-global registry, the flight recorder, and an active
//! request-correlation scope), and the delta lands in the trajectory file.

use std::time::Instant;

use tdb_core::prelude::*;
use tdb_core::Algorithm;
use tdb_graph::CsrGraph;

/// The overhead budget the crate documents: instrumented solves may be at most
/// this many percent slower than uninstrumented ones.
pub const OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Result of timing a solve with the global registry disabled vs enabled.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Median solve time with the stack disabled, in seconds.
    pub baseline_secs: f64,
    /// Baseline scaled by the median paired slowdown, in seconds (so the
    /// derived percentage is the paired-ratio estimate, not a ratio of two
    /// independently noisy minima).
    pub instrumented_secs: f64,
    /// Number of (disabled, enabled) sample pairs timed.
    pub samples: usize,
}

impl OverheadReport {
    /// Relative slowdown of the instrumented solve, in percent. Negative when
    /// the instrumented run happened to be faster (measurement noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_secs <= 0.0 {
            return 0.0;
        }
        (self.instrumented_secs - self.baseline_secs) / self.baseline_secs * 100.0
    }

    /// Whether the measured overhead is within [`OVERHEAD_BUDGET_PCT`].
    pub fn within_budget(&self) -> bool {
        self.overhead_pct() < OVERHEAD_BUDGET_PCT
    }

    /// One fixed-width report line.
    pub fn format(&self) -> String {
        format!(
            "overhead  baseline {:.4}s  instrumented {:.4}s  => {:+.2}% ({})",
            self.baseline_secs,
            self.instrumented_secs,
            self.overhead_pct(),
            if self.within_budget() {
                "within budget"
            } else {
                "OVER BUDGET"
            }
        )
    }
}

/// Time TDB++ on `graph` with the observability stack disabled and enabled,
/// over `samples` adjacent (disabled, enabled) pairs (plus warm-up solves).
///
/// The instrumented arm turns on everything a production deployment would:
/// the process-global metrics registry, the flight recorder (the solve emits
/// a `core/solve` event), and an active request-correlation scope (so the
/// solve's spans are armed and feed the per-request phase breakdown). The
/// tracer ring stays in whatever state it already is (off by default); all
/// toggled flags are restored before returning.
///
/// The estimator is the median of per-pair slowdown ratios. Each ratio
/// compares two solves adjacent in time, so slow drift (frequency scaling,
/// thermal state) hits both arms of a pair equally; the order inside each
/// pair alternates so what drift remains within a pair cancels across pairs;
/// and the median discards the scheduler-preemption outliers that make
/// best-of-N minima unstable on busy machines.
pub fn measure_solve_overhead(
    graph: &CsrGraph,
    constraint: &HopConstraint,
    samples: usize,
) -> OverheadReport {
    let registry = tdb_obs::global();
    let was_enabled = registry.is_enabled();
    let events_were_enabled = tdb_obs::event::is_enabled();
    let solve = || {
        Solver::new(Algorithm::TdbPlusPlus)
            .solve(graph, constraint)
            .expect("unbudgeted solve cannot fail")
    };
    let timed = |enabled: bool| -> f64 {
        registry.set_enabled(enabled);
        tdb_obs::event::set_enabled(enabled);
        if enabled {
            let _scope = tdb_obs::request::begin(u64::MAX);
            let t = Instant::now();
            std::hint::black_box(solve());
            t.elapsed().as_secs_f64()
        } else {
            let t = Instant::now();
            std::hint::black_box(solve());
            t.elapsed().as_secs_f64()
        }
    };
    std::hint::black_box(timed(false));
    std::hint::black_box(timed(true));
    let pairs = samples.max(1);
    let mut baselines = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let (off, on) = if i % 2 == 0 {
            let off = timed(false);
            let on = timed(true);
            (off, on)
        } else {
            let on = timed(true);
            let off = timed(false);
            (off, on)
        };
        baselines.push(off);
        ratios.push(on / off);
    }
    registry.set_enabled(was_enabled);
    tdb_obs::event::set_enabled(events_were_enabled);
    let median = |values: &mut Vec<f64>| -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).expect("solve times are finite"));
        values[values.len() / 2]
    };
    let baseline_secs = median(&mut baselines);
    let ratio = median(&mut ratios);
    OverheadReport {
        baseline_secs,
        instrumented_secs: baseline_secs * ratio,
        samples: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_support::small_proxy;
    use tdb_datasets::Dataset;

    #[test]
    fn overhead_measurement_times_both_states_and_restores_the_flag() {
        let registry = tdb_obs::global();
        let before = registry.is_enabled();
        let g = small_proxy(Dataset::WikiVote, 1_500);
        let report = measure_solve_overhead(&g, &HopConstraint::new(3), 1);
        assert_eq!(registry.is_enabled(), before, "flag must be restored");
        assert!(report.baseline_secs > 0.0);
        assert!(report.instrumented_secs > 0.0);
        assert!(report.overhead_pct().is_finite());
        assert!(report.format().contains("overhead"));
    }

    #[test]
    fn budget_check_matches_the_documented_threshold() {
        let over = OverheadReport {
            baseline_secs: 1.0,
            instrumented_secs: 1.05,
            samples: 3,
        };
        assert!(!over.within_budget());
        let under = OverheadReport {
            baseline_secs: 1.0,
            instrumented_secs: 1.01,
            samples: 3,
        };
        assert!(under.within_budget());
        assert!((under.overhead_pct() - 1.0).abs() < 1e-9);
    }
}
