//! Streaming churn scenario: sustained edge insert/delete load against a
//! [`tdb_dynamic::DynamicCover`], measured in updates/sec and compared with
//! the only static alternative — a full re-solve per refresh.
//!
//! The scenario drives three consumers:
//!
//! * the `streaming` bench target (`cargo bench -p tdb-bench`),
//! * the `experiments stream` subcommand (batch size / churn ratio /
//!   compaction threshold exposed as flags), and
//! * the CI smoke step (tiny graph, fixed seed, per-batch validity audit).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use tdb_core::prelude::*;
use tdb_dynamic::{DynamicConfig, EdgeBatch, SolveDynamic, UpdateMetrics};
use tdb_graph::gen::{erdos_renyi_gnm, Xoshiro256};
use tdb_graph::{Graph, VertexId};

use tdb_obs::{Histogram, Percentiles};

/// Parameters of a streaming churn run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Vertices of the synthetic initial graph.
    pub vertices: usize,
    /// Edges of the synthetic initial graph.
    pub initial_edges: usize,
    /// Total edge updates to stream.
    pub updates: usize,
    /// Updates per [`EdgeBatch`].
    pub batch_size: usize,
    /// Fraction of updates that are removals (the rest are insertions),
    /// in `0.0..=1.0`.
    pub churn: f64,
    /// Hop constraint `k`.
    pub k: usize,
    /// RNG seed for graph synthesis and the update stream.
    pub seed: u64,
    /// Delta compaction threshold (`0` = the engine's automatic policy).
    pub compaction_threshold: usize,
    /// Audit cover validity after every batch (outside the timed region).
    pub verify_each_batch: bool,
    /// Full re-solves to sample for the baseline comparison.
    pub resolve_samples: usize,
}

impl StreamConfig {
    /// The acceptance workload: 10k-update churn over a 50k-vertex graph.
    pub fn acceptance() -> Self {
        StreamConfig {
            vertices: 50_000,
            initial_edges: 200_000,
            updates: 10_000,
            batch_size: 100,
            churn: 0.5,
            k: 4,
            seed: 42,
            compaction_threshold: 0,
            verify_each_batch: true,
            resolve_samples: 2,
        }
    }

    /// Tiny configuration for unit tests and the CI smoke step.
    pub fn smoke() -> Self {
        StreamConfig {
            vertices: 1_000,
            initial_edges: 4_000,
            updates: 500,
            batch_size: 50,
            churn: 0.5,
            k: 4,
            seed: 7,
            compaction_threshold: 0,
            verify_each_batch: true,
            resolve_samples: 2,
        }
    }
}

/// Outcome of one streaming churn run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Vertices of the initial graph.
    pub vertices: usize,
    /// Edges of the initial graph.
    pub initial_edges: usize,
    /// Time of the seeding static solve.
    pub seed_solve: Duration,
    /// Cover size right after seeding.
    pub seed_cover: usize,
    /// Updates that were actually applied (excludes generator misses).
    pub updates_applied: u64,
    /// Batches streamed.
    pub batches: usize,
    /// Wall-clock total of all `apply` calls (excluding validity audits and
    /// the closing re-minimization, reported as [`StreamReport::minimize`]).
    pub incremental_elapsed: Duration,
    /// Wall-clock of the single closing `minimize()` pass.
    pub minimize: Duration,
    /// Mean `apply` time per batch.
    pub mean_batch: Duration,
    /// Per-batch `apply` latency percentiles, in seconds (`None` when no
    /// batch was applied).
    pub batch_percentiles: Option<Percentiles>,
    /// Mean wall-clock of a full static re-solve on the final graph.
    pub resolve: Duration,
    /// `resolve / mean_batch`: how many times cheaper one incrementally
    /// maintained batch is than the re-solve a static deployment would need
    /// to stay fresh.
    pub speedup_per_batch: f64,
    /// Batches whose cover passed the validity audit (`== batches` when
    /// `verify_each_batch` and nothing is wrong).
    pub valid_batches: usize,
    /// Whether validity was audited at all.
    pub verified: bool,
    /// Final cover size after a closing `minimize()`.
    pub final_cover: usize,
    /// Cover size of the static re-solve on the final graph.
    pub resolve_cover: usize,
    /// Engine counters accumulated over the stream.
    pub totals: UpdateMetrics,
}

impl StreamReport {
    /// Applied updates per second of engine time.
    pub fn updates_per_sec(&self) -> f64 {
        self.updates_applied as f64 / self.incremental_elapsed.as_secs_f64()
    }
}

/// Run the streaming churn scenario.
pub fn run_stream(config: &StreamConfig) -> StreamReport {
    assert!(config.batch_size > 0, "batch_size must be positive");
    assert!(
        (0.0..=1.0).contains(&config.churn),
        "churn must be within 0.0..=1.0"
    );
    let constraint = HopConstraint::new(config.k);
    let graph = erdos_renyi_gnm(config.vertices, config.initial_edges, config.seed);
    let initial_edges = graph.num_edges();

    let solver = Solver::new(Algorithm::TdbPlusPlus);
    let seed_timer = Instant::now();
    let mut dynamic = solver
        .solve_dynamic_with_config(
            graph,
            &constraint,
            DynamicConfig {
                compaction_threshold: config.compaction_threshold,
                ..Default::default()
            },
        )
        .expect("unbudgeted solve cannot fail");
    let seed_solve = seed_timer.elapsed();
    let seed_cover = dynamic.cover().len();

    // The update stream: removals sample the live edge set, insertions draw
    // fresh (u, v) pairs. Deterministic in the config seed.
    let mut rng = Xoshiro256::seed_from_u64(config.seed ^ 0x5EED_57EA);
    let mut live: Vec<(VertexId, VertexId)> = dynamic
        .graph()
        .base()
        .edges()
        .map(|e| (e.source, e.target))
        .collect();
    let mut present: HashSet<(VertexId, VertexId)> = live.iter().copied().collect();
    let churn_permille = (config.churn * 1000.0) as usize;

    let mut incremental_elapsed = Duration::ZERO;
    let batch_hist = Histogram::new();
    let mut batches = 0usize;
    let mut valid_batches = 0usize;
    let mut updates_applied = 0u64;
    let mut streamed = 0usize;
    while streamed < config.updates {
        let mut batch = EdgeBatch::new();
        while batch.len() < config.batch_size && streamed + batch.len() < config.updates {
            let remove = !live.is_empty() && rng.next_index(1000) < churn_permille;
            if remove {
                let idx = rng.next_index(live.len());
                let (u, v) = live.swap_remove(idx);
                present.remove(&(u, v));
                batch.remove(u, v);
            } else {
                let mut placed = false;
                for _ in 0..8 {
                    let u = rng.next_index(config.vertices) as VertexId;
                    let v = rng.next_index(config.vertices) as VertexId;
                    if u != v && present.insert((u, v)) {
                        live.push((u, v));
                        batch.insert(u, v);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break; // graph nearly complete; stop padding this batch
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        streamed += batch.len();
        let window = dynamic.apply(&batch);
        incremental_elapsed += window.elapsed;
        batch_hist.record(window.elapsed);
        updates_applied += window.updates();
        batches += 1;
        if config.verify_each_batch && dynamic.is_valid() {
            valid_batches += 1;
        }
    }

    let minimize_timer = Instant::now();
    dynamic.minimize();
    let minimize = minimize_timer.elapsed();
    let final_cover = dynamic.cover().len();

    // Baseline: the static alternative is a full re-solve per refresh.
    let final_graph = dynamic.materialize();
    let samples = config.resolve_samples.max(1);
    let mut resolve_total = Duration::ZERO;
    let mut resolve_cover = 0usize;
    for _ in 0..samples {
        let t = Instant::now();
        let run = solver
            .solve(&final_graph, &constraint)
            .expect("unbudgeted solve cannot fail");
        resolve_total += t.elapsed();
        resolve_cover = run.cover_size();
    }
    let resolve = resolve_total / samples as u32;
    let mean_batch = if batches > 0 {
        incremental_elapsed / batches as u32
    } else {
        Duration::ZERO
    };
    let speedup_per_batch = if mean_batch.as_secs_f64() > 0.0 {
        resolve.as_secs_f64() / mean_batch.as_secs_f64()
    } else {
        f64::INFINITY
    };

    StreamReport {
        vertices: config.vertices,
        initial_edges,
        seed_solve,
        seed_cover,
        updates_applied,
        batches,
        incremental_elapsed,
        minimize,
        mean_batch,
        batch_percentiles: batch_hist.percentiles(),
        resolve,
        speedup_per_batch,
        valid_batches,
        verified: config.verify_each_batch,
        final_cover,
        resolve_cover,
        totals: *dynamic.totals(),
    }
}

/// Render a report as the fixed-width lines the harness prints.
pub fn format_stream_report(r: &StreamReport) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "graph     |V|={} |E|0={}  seed solve {:.3}s (cover {})",
        r.vertices,
        r.initial_edges,
        r.seed_solve.as_secs_f64(),
        r.seed_cover
    ));
    out.push(format!(
        "stream    {} updates in {} batches  {:.3}s incremental  {:.0} updates/sec",
        r.updates_applied,
        r.batches,
        r.incremental_elapsed.as_secs_f64(),
        r.updates_per_sec()
    ));
    out.push(format!(
        "batch     mean {:.3}ms/batch vs full re-solve {:.3}ms  => {:.1}x per refresh",
        r.mean_batch.as_secs_f64() * 1e3,
        r.resolve.as_secs_f64() * 1e3,
        r.speedup_per_batch
    ));
    if let Some(p) = r.batch_percentiles {
        out.push(format!("latency   {} per batch apply", p.format_secs()));
    }
    out.push(format!(
        "covers    final {} (re-solve {})  breakers {}  pruned {}  compactions {}  minimize {:.3}ms",
        r.final_cover,
        r.resolve_cover,
        r.totals.breakers_added,
        r.totals.pruned,
        r.totals.compactions,
        r.minimize.as_secs_f64() * 1e3
    ));
    out.push(if r.verified {
        format!(
            "validity  {}/{} batches valid{}",
            r.valid_batches,
            r.batches,
            if r.valid_batches == r.batches {
                " (all)"
            } else {
                "  ** FAILURE **"
            }
        )
    } else {
        "validity  not audited".to_string()
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_stream_is_valid_throughout() {
        let mut config = StreamConfig::smoke();
        config.vertices = 300;
        config.initial_edges = 1_200;
        config.updates = 200;
        config.batch_size = 25;
        let report = run_stream(&config);
        assert!(report.batches > 0);
        assert_eq!(
            report.valid_batches, report.batches,
            "an intermediate cover was invalid"
        );
        assert!(report.updates_applied > 0);
        assert!(report.incremental_elapsed > Duration::ZERO);
        assert!(report.batch_percentiles.is_some());
        let p = report.batch_percentiles.unwrap();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99);
        let lines = format_stream_report(&report);
        assert!(lines.iter().any(|l| l.contains("updates/sec")));
        assert!(lines.iter().any(|l| l.contains("p99")));
        assert!(lines.iter().any(|l| l.contains("(all)")));
    }

    #[test]
    fn pure_insert_and_pure_remove_streams() {
        for churn in [0.0, 1.0] {
            let config = StreamConfig {
                vertices: 200,
                initial_edges: 800,
                updates: 120,
                batch_size: 30,
                churn,
                k: 4,
                seed: 3,
                compaction_threshold: 0,
                verify_each_batch: true,
                resolve_samples: 1,
            };
            let report = run_stream(&config);
            assert_eq!(report.valid_batches, report.batches, "churn {churn}");
            if churn == 0.0 {
                assert_eq!(report.totals.removes, 0);
            } else {
                assert_eq!(report.totals.inserts, 0);
            }
        }
    }
}
