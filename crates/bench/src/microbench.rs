//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot depend on
//! Criterion; this module provides the small subset the targets need: warm-up,
//! a fixed number of timed samples, and a mean/min/max report per labelled
//! case. Every bench target is a plain `main` (`harness = false`) driving a
//! [`Microbench`].
//!
//! Sample count and warm-up can be tuned through environment variables when a
//! quick smoke run is wanted:
//!
//! * `TDB_BENCH_SAMPLES` — timed samples per case (default 10),
//! * `TDB_BENCH_WARMUP_MS` — minimum warm-up time per case (default 200).

use std::time::{Duration, Instant};

use tdb_core::stats::Accumulator;

/// A labelled set of timed cases printed as fixed-width rows.
pub struct Microbench {
    suite: String,
    samples: usize,
    warm_up: Duration,
}

impl Microbench {
    /// Create a harness for the named suite, honoring the tuning environment
    /// variables.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("TDB_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s > 0)
            .unwrap_or(10);
        let warm_up_ms = std::env::var("TDB_BENCH_WARMUP_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        println!("## {suite} ({samples} samples per case)");
        Microbench {
            suite: suite.to_string(),
            samples,
            warm_up: Duration::from_millis(warm_up_ms),
        }
    }

    /// Time `f` and print one report row. The closure's result is returned
    /// through [`std::hint::black_box`], so callers don't need to.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: at least one run, and keep going until the warm-up window
        // has elapsed so caches and allocator state settle.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }

        let mut acc = Accumulator::new();
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            acc.record(t.elapsed().as_secs_f64());
        }
        println!(
            "{:<48} mean {:>10}  min {:>10}  max {:>10}",
            format!("{}/{label}", self.suite),
            format_secs(acc.mean()),
            format_secs(acc.min().unwrap_or(0.0)),
            format_secs(acc.max().unwrap_or(0.0)),
        );
    }
}

/// Latency percentiles of a sample set, in the samples' own unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Render as `p50 …  p90 …  p99 …` with human-scaled units, assuming the
    /// samples were seconds.
    pub fn format_secs(&self) -> String {
        format!(
            "p50 {}  p90 {}  p99 {}",
            format_secs(self.p50),
            format_secs(self.p90),
            format_secs(self.p99)
        )
    }
}

/// Nearest-rank percentiles (p50/p90/p99) of `samples`. Returns `None` on an
/// empty slice. The input is copied and sorted; NaNs are rejected by debug
/// assertion and sort last otherwise.
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    debug_assert!(
        samples.iter().all(|s| !s.is_nan()),
        "latency samples must not be NaN"
    );
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let rank = |p: f64| {
        // Nearest-rank: smallest index i with (i+1)/n >= p/100.
        let n = sorted.len();
        let idx = (p / 100.0 * n as f64).ceil() as usize;
        sorted[idx.clamp(1, n) - 1]
    };
    Some(Percentiles {
        p50: rank(50.0),
        p90: rank(90.0),
        p99: rank(99.0),
    })
}

/// Human-scaled time formatting (s / ms / µs).
fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.3}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_scales_units() {
        assert_eq!(format_secs(2.5), "2.500s");
        assert_eq!(format_secs(0.0025), "2.500ms");
        assert_eq!(format_secs(0.0000025), "2.500µs");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=100: nearest-rank pXX of the identity sample set is XX itself.
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = percentiles(&samples).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        // Order must not matter.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(percentiles(&reversed).unwrap(), p);
    }

    #[test]
    fn percentiles_of_tiny_sets_degenerate_sanely() {
        assert_eq!(percentiles(&[]), None);
        let single = percentiles(&[7.0]).unwrap();
        assert_eq!((single.p50, single.p90, single.p99), (7.0, 7.0, 7.0));
        let pair = percentiles(&[1.0, 9.0]).unwrap();
        assert_eq!(pair.p50, 1.0, "nearest rank of p50 over two samples");
        assert_eq!(pair.p99, 9.0);
    }

    #[test]
    fn percentiles_format_scales_units() {
        let p = Percentiles {
            p50: 0.0005,
            p90: 0.002,
            p99: 1.5,
        };
        assert_eq!(p.format_secs(), "p50 500.000µs  p90 2.000ms  p99 1.500s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let bench = Microbench {
            suite: "test".into(),
            samples: 3,
            warm_up: Duration::ZERO,
        };
        let mut calls = 0u32;
        bench.bench("case", || {
            calls += 1;
            calls
        });
        // One warm-up call plus three samples.
        assert!(calls >= 4, "closure ran {calls} times");
    }
}
