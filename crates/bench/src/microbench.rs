//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot depend on
//! Criterion; this module provides the small subset the targets need: warm-up,
//! a fixed number of timed samples, and a mean/min/max report per labelled
//! case. Every bench target is a plain `main` (`harness = false`) driving a
//! [`Microbench`].
//!
//! Sample count and warm-up can be tuned through environment variables when a
//! quick smoke run is wanted:
//!
//! * `TDB_BENCH_SAMPLES` — timed samples per case (default 10),
//! * `TDB_BENCH_WARMUP_MS` — minimum warm-up time per case (default 200).

use std::time::{Duration, Instant};

use tdb_core::stats::Accumulator;

/// A labelled set of timed cases printed as fixed-width rows.
pub struct Microbench {
    suite: String,
    samples: usize,
    warm_up: Duration,
}

impl Microbench {
    /// Create a harness for the named suite, honoring the tuning environment
    /// variables.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("TDB_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s > 0)
            .unwrap_or(10);
        let warm_up_ms = std::env::var("TDB_BENCH_WARMUP_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        println!("## {suite} ({samples} samples per case)");
        Microbench {
            suite: suite.to_string(),
            samples,
            warm_up: Duration::from_millis(warm_up_ms),
        }
    }

    /// Time `f` and print one report row. The closure's result is returned
    /// through [`std::hint::black_box`], so callers don't need to.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: at least one run, and keep going until the warm-up window
        // has elapsed so caches and allocator state settle.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }

        let mut acc = Accumulator::new();
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            acc.record(t.elapsed().as_secs_f64());
        }
        println!(
            "{:<48} mean {:>10}  min {:>10}  max {:>10}",
            format!("{}/{label}", self.suite),
            format_secs(acc.mean()),
            format_secs(acc.min().unwrap_or(0.0)),
            format_secs(acc.max().unwrap_or(0.0)),
        );
    }
}

/// Latency percentiles and human-scaled time formatting now live in
/// [`tdb_obs`]; re-exported here so the bench targets and reports keep their
/// existing import paths.
pub use tdb_obs::{format_secs, Percentiles};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let bench = Microbench {
            suite: "test".into(),
            samples: 3,
            warm_up: Duration::ZERO,
        };
        let mut calls = 0u32;
        bench.bench("case", || {
            calls += 1;
            calls
        });
        // One warm-up call plus three samples.
        assert!(calls >= 4, "closure ran {calls} times");
    }
}
