//! `experiments watch`: a live console view over a running
//! [`tdb_serve::CoverServer`].
//!
//! The watcher polls the line protocol's `METRICS` (Prometheus text
//! exposition) and `HEALTH?` verbs on an interval and renders *rolling
//! deltas* — reads/s and updates/s from counter differences, a read-latency
//! p99 estimated from histogram **bucket deltas** (so it reflects the last
//! interval, not the process lifetime), plus the watchdog's queue depth,
//! publish age, and status.
//!
//! The Prometheus parser here is deliberately small: it understands exactly
//! the subset `tdb_obs::Registry::render_prometheus` emits (unlabeled
//! counters/gauges, labeled gauges, and `_bucket{le="..."}` /`_sum`/`_count`
//! histogram series) — enough to watch our own service, not a general
//! scraper.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use tdb_serve::{ClientError, ServeClient};

/// One parsed histogram: cumulative `(upper bound seconds, count)` pairs in
/// ascending bound order (`+Inf` is `f64::INFINITY`), plus sum and count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSample {
    /// Cumulative bucket counts keyed by upper bound, ascending.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observed values, in seconds.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSample {
    /// Per-bucket (non-cumulative) counts, same bound order as `buckets`.
    fn bucket_deltas(&self) -> Vec<(f64, u64)> {
        let mut prev = 0u64;
        self.buckets
            .iter()
            .map(|&(bound, cum)| {
                let d = cum.saturating_sub(prev);
                prev = cum;
                (bound, d)
            })
            .collect()
    }
}

/// A parsed Prometheus text exposition (the subset our registry emits).
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    scalars: HashMap<String, f64>,
    histograms: HashMap<String, HistogramSample>,
}

impl Exposition {
    /// The value of an unlabeled counter or gauge, if present. Labeled
    /// series are keyed by their full `name{...}` form.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// A histogram by base name (the name without `_bucket`/`_sum`/`_count`).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.get(name)
    }

    /// Sum of the scalars named in `names`, treating absent ones as 0.
    pub fn scalar_sum(&self, names: &[&str]) -> f64 {
        names.iter().filter_map(|n| self.scalar(n)).sum()
    }
}

/// Parse a Prometheus text exposition into scalars and histograms.
///
/// `# ...` comment lines are skipped. Histogram series are recognized by the
/// `_bucket{le="..."}` / `_sum` / `_count` suffixes; everything else lands in
/// the scalar map under its full sample name (labels included verbatim).
pub fn parse_prometheus(text: &str) -> Exposition {
    let mut exposition = Exposition::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split "name{labels} value" / "name value" at the last space.
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        if let Some((base, le)) = parse_bucket_key(key) {
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                match le.parse::<f64>() {
                    Ok(b) => b,
                    Err(_) => continue,
                }
            };
            let hist = exposition.histograms.entry(base.to_string()).or_default();
            hist.buckets.push((bound, value as u64));
        } else if let Some(base) = key.strip_suffix("_sum") {
            if exposition.histograms.contains_key(base) || key_looks_unlabeled(key) {
                exposition
                    .histograms
                    .entry(base.to_string())
                    .or_default()
                    .sum = value;
                continue;
            }
        } else if let Some(base) = key.strip_suffix("_count") {
            if exposition.histograms.contains_key(base) || key_looks_unlabeled(key) {
                let hist = exposition.histograms.entry(base.to_string()).or_default();
                hist.count = value as u64;
                continue;
            }
        } else {
            exposition.scalars.insert(key.to_string(), value);
        }
    }
    for hist in exposition.histograms.values_mut() {
        hist.buckets
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bucket bounds are not NaN"));
    }
    exposition
}

fn parse_bucket_key(key: &str) -> Option<(&str, &str)> {
    let base = key.find("_bucket{le=\"")?;
    let le = &key[base + "_bucket{le=\"".len()..];
    let le = le.strip_suffix("\"}")?;
    Some((&key[..base], le))
}

fn key_looks_unlabeled(key: &str) -> bool {
    !key.contains('{')
}

/// Estimate the p99 of the *last interval* from two scrapes of the same set
/// of histograms: de-cumulate each, subtract `prev` from `curr`, merge the
/// per-bucket deltas across all named histograms, and return the smallest
/// upper bound covering ≥ 99% of the interval's observations (in seconds).
///
/// Returns `None` when the interval saw no observations (or the histograms
/// are absent). An unbounded answer (everything in `+Inf`) returns the
/// largest finite bound seen, or `None` if there is none.
pub fn p99_from_bucket_deltas(prev: &Exposition, curr: &Exposition, names: &[&str]) -> Option<f64> {
    let mut merged: Vec<(f64, u64)> = Vec::new();
    for name in names {
        let curr_hist = match curr.histogram(name) {
            Some(h) => h,
            None => continue,
        };
        let curr_deltas = curr_hist.bucket_deltas();
        let prev_deltas = prev.histogram(name).map(|h| h.bucket_deltas());
        for (bound, count) in curr_deltas {
            let prev_count = prev_deltas
                .as_deref()
                .and_then(|d| d.iter().find(|(b, _)| *b == bound))
                .map_or(0, |&(_, c)| c);
            let delta = count.saturating_sub(prev_count);
            if delta == 0 {
                continue;
            }
            match merged.iter_mut().find(|(b, _)| *b == bound) {
                Some((_, c)) => *c += delta,
                None => merged.push((bound, delta)),
            }
        }
    }
    merged.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are not NaN"));
    let total: u64 = merged.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let target = (total as f64 * 0.99).ceil() as u64;
    let mut running = 0u64;
    let mut last_finite = None;
    for &(bound, count) in &merged {
        running += count;
        if bound.is_finite() {
            last_finite = Some(bound);
        }
        if running >= target {
            return if bound.is_finite() {
                Some(bound)
            } else {
                last_finite
            };
        }
    }
    last_finite
}

/// Parameters of a watch run.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Server address (host:port of a running `CoverServer`).
    pub addr: String,
    /// Frames to render before returning (a console session would loop
    /// forever; the subcommand takes a finite count so runs terminate).
    pub iterations: usize,
    /// Poll interval between frames.
    pub interval: Duration,
}

/// One rendered frame of the rolling view.
#[derive(Debug, Clone)]
pub struct WatchFrame {
    /// Published epoch from `HEALTH?`.
    pub epoch: u64,
    /// Watchdog status (`ok` / `degraded` / `stalled`).
    pub status: String,
    /// Read requests per second over the last interval (`COVER?` +
    /// `BREAKERS?` + `EXPLAIN?` + `RESIDUAL?`).
    pub reads_per_sec: f64,
    /// Applied updates per second over the last interval.
    pub updates_per_sec: f64,
    /// Interval read-latency p99 in seconds, from bucket deltas.
    pub read_p99: Option<f64>,
    /// Current update-queue depth.
    pub queue_depth: i64,
    /// Update-queue capacity.
    pub queue_capacity: i64,
    /// Age of the last epoch publication, in milliseconds.
    pub publish_age_ms: u64,
}

impl WatchFrame {
    /// Render the frame as one fixed-layout console line.
    pub fn format(&self) -> String {
        let p99 = match self.read_p99 {
            Some(s) if s < 1e-3 => format!("{:.0}us", s * 1e6),
            Some(s) => format!("{:.1}ms", s * 1e3),
            None => "-".to_string(),
        };
        format!(
            "epoch {:>6}  {:<8}  reads/s {:>8.0}  updates/s {:>8.0}  p99 {:>8}  queue {}/{}  publish age {}ms",
            self.epoch,
            self.status,
            self.reads_per_sec,
            self.updates_per_sec,
            p99,
            self.queue_depth,
            self.queue_capacity,
            self.publish_age_ms
        )
    }
}

/// The read-verb histograms whose bucket deltas feed the p99 column.
const READ_HISTOGRAMS: [&str; 4] = [
    "tdb_serve_request_seconds_cover",
    "tdb_serve_request_seconds_breakers",
    "tdb_serve_request_seconds_explain",
    "tdb_serve_request_seconds_residual",
];

fn read_count(e: &Exposition) -> f64 {
    READ_HISTOGRAMS
        .iter()
        .filter_map(|n| e.histogram(n))
        .map(|h| h.count as f64)
        .sum()
}

fn health_u64(pairs: &[(String, String)], key: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

fn health_str(pairs: &[(String, String)], key: &str) -> String {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "?".to_string())
}

/// Poll the server `config.iterations` times, `config.interval` apart,
/// computing rolling deltas between consecutive scrapes. Each rendered frame
/// is passed to `sink` as it is produced (the subcommand prints it; tests
/// collect it); the frames are also returned for programmatic use.
pub fn run_watch(
    config: &WatchConfig,
    mut sink: impl FnMut(&str),
) -> Result<Vec<WatchFrame>, ClientError> {
    let mut client = ServeClient::connect(&*config.addr)?;
    let mut prev = parse_prometheus(&client.metrics()?);
    let mut prev_t = Instant::now();
    let mut frames = Vec::with_capacity(config.iterations);
    for _ in 0..config.iterations {
        std::thread::sleep(config.interval);
        let curr = parse_prometheus(&client.metrics()?);
        let health = client.health()?;
        let now = Instant::now();
        let secs = now
            .duration_since(prev_t)
            .as_secs_f64()
            .max(f64::MIN_POSITIVE);

        let reads = (read_count(&curr) - read_count(&prev)).max(0.0);
        let updates = (curr.scalar("tdb_serve_ops_applied_total").unwrap_or(0.0)
            - prev.scalar("tdb_serve_ops_applied_total").unwrap_or(0.0))
        .max(0.0);
        let frame = WatchFrame {
            epoch: health_u64(&health, "epoch"),
            status: health_str(&health, "status"),
            reads_per_sec: reads / secs,
            updates_per_sec: updates / secs,
            read_p99: p99_from_bucket_deltas(&prev, &curr, &READ_HISTOGRAMS),
            queue_depth: health_u64(&health, "queue_depth") as i64,
            queue_capacity: health_u64(&health, "queue_capacity") as i64,
            publish_age_ms: health_u64(&health, "publish_age_ms"),
        };
        sink(&frame.format());
        frames.push(frame);
        prev = curr;
        prev_t = now;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_core::prelude::*;
    use tdb_core::Algorithm;
    use tdb_dynamic::SolveDynamic;
    use tdb_graph::builder::graph_from_edges;
    use tdb_serve::{CoverServer, ServeConfig};

    #[test]
    fn parser_reads_scalars_and_histograms() {
        let text = "\
# TYPE tdb_x_total counter
tdb_x_total 41
# TYPE tdb_build_info gauge
tdb_build_info{version=\"0.1.0\",features=\"default\"} 1
# TYPE tdb_h histogram
tdb_h_bucket{le=\"0.001\"} 2
tdb_h_bucket{le=\"0.01\"} 5
tdb_h_bucket{le=\"+Inf\"} 6
tdb_h_sum 0.5
tdb_h_count 6
";
        let e = parse_prometheus(text);
        assert_eq!(e.scalar("tdb_x_total"), Some(41.0));
        assert_eq!(
            e.scalar("tdb_build_info{version=\"0.1.0\",features=\"default\"}"),
            Some(1.0)
        );
        let h = e.histogram("tdb_h").expect("histogram parsed");
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets.len(), 3);
        assert_eq!(h.buckets[0], (0.001, 2));
        assert_eq!(h.buckets[2].1, 6);
        assert!(h.buckets[2].0.is_infinite());
    }

    #[test]
    fn p99_uses_interval_deltas_not_lifetime_counts() {
        // Lifetime: lots of fast requests. Interval: only slow ones.
        let prev = parse_prometheus(
            "tdb_h_bucket{le=\"0.001\"} 1000\ntdb_h_bucket{le=\"0.1\"} 1000\ntdb_h_bucket{le=\"+Inf\"} 1000\n",
        );
        let curr = parse_prometheus(
            "tdb_h_bucket{le=\"0.001\"} 1000\ntdb_h_bucket{le=\"0.1\"} 1010\ntdb_h_bucket{le=\"+Inf\"} 1010\n",
        );
        let p99 = p99_from_bucket_deltas(&prev, &curr, &["tdb_h"]).expect("interval had samples");
        assert!(
            (p99 - 0.1).abs() < 1e-12,
            "p99 must come from the slow interval bucket, got {p99}"
        );
        // No observations in the interval → None.
        assert_eq!(p99_from_bucket_deltas(&curr, &curr, &["tdb_h"]), None);
    }

    #[test]
    fn watch_renders_rolling_frames_against_a_live_server() {
        let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let dynamic = Solver::new(Algorithm::TdbPlusPlus)
            .solve_dynamic(graph, &HopConstraint::new(4))
            .unwrap();
        let server = CoverServer::start(dynamic, ServeConfig::default()).unwrap();
        let addr = server.local_addr();

        // Background traffic so the deltas are nonzero.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let traffic = {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let _ = c.cover((i % 5) as u32);
                    if i % 10 == 0 {
                        let _ = c.insert((i % 5) as u32, ((i + 2) % 5) as u32);
                    }
                    i += 1;
                }
            })
        };

        let mut lines = Vec::new();
        let frames = run_watch(
            &WatchConfig {
                addr: addr.to_string(),
                iterations: 2,
                interval: Duration::from_millis(120),
            },
            |l| lines.push(l.to_string()),
        )
        .expect("watch run succeeds");
        stop.store(true, std::sync::atomic::Ordering::Release);
        traffic.join().unwrap();

        assert_eq!(frames.len(), 2);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("reads/s"), "{lines:?}");
        assert!(lines[0].contains("queue"), "{lines:?}");
        assert!(frames.iter().any(|f| f.reads_per_sec > 0.0), "{frames:#?}");
        assert!(frames.iter().all(|f| f.status == "ok"), "{frames:#?}");

        let mut c = ServeClient::connect(addr).unwrap();
        c.shutdown().unwrap();
        server.join();
    }
}
