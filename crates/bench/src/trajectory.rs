//! Perf-trajectory recording: pinned scenarios measured per PR and written to
//! a `BENCH_<tag>.json` file at the repo root, so regressions across the PR
//! stack are diffable (`BENCH_PR6.json` vs `BENCH_PR7.json` vs …).
//!
//! The workspace builds fully offline, so the JSON is hand-rolled; the writer
//! itself lives in [`tdb_obs`] (shared with the Chrome trace exporter) and is
//! re-exported here for the bench targets.

pub use tdb_obs::Json;

use crate::overhead::OverheadReport;

/// Assemble the trajectory document from the pinned scenarios plus the
/// observability-overhead measurement.
///
/// The caller runs the scenarios (end-to-end solve, streaming churn, serve
/// load, weighted objective, instrumentation overhead) and passes the
/// reports; this function only shapes the file.
pub fn trajectory_document(
    tag: &str,
    end_to_end: &crate::RowResult,
    stream: &crate::streaming::StreamReport,
    serve: &crate::serve::ServeReport,
    weighted: &crate::weighted::WeightedReport,
    observability: &OverheadReport,
) -> Json {
    let e2e = Json::obj()
        .set("dataset", end_to_end.dataset.as_str())
        .set("algorithm", end_to_end.algorithm.as_str())
        .set("k", end_to_end.k)
        .set("vertices", end_to_end.graph_vertices)
        .set("edges", end_to_end.graph_edges)
        .set("cover_size", end_to_end.cover_size)
        .set("seconds", end_to_end.seconds());
    let mut streaming = Json::obj()
        .set("updates", stream.updates_applied)
        .set("batches", stream.batches)
        .set("updates_per_sec", stream.updates_per_sec())
        .set("mean_batch_secs", stream.mean_batch.as_secs_f64())
        .set("resolve_secs", stream.resolve.as_secs_f64())
        .set("speedup_per_batch", stream.speedup_per_batch);
    if let Some(p) = stream.batch_percentiles {
        streaming = streaming
            .set("batch_p50_secs", p.p50)
            .set("batch_p99_secs", p.p99);
    }
    let mut serving = Json::obj()
        .set("readers", serve.readers)
        .set("writers", serve.writers)
        .set("reads", serve.reads)
        .set("reads_per_sec", serve.reads_per_sec)
        .set("updates_streamed", serve.updates_streamed)
        .set("updates_per_sec", serve.updates_per_sec())
        .set("snapshots_audited", serve.snapshots_audited)
        .set("snapshots_valid", serve.snapshots_valid)
        .set("epochs_monotone", serve.epochs_monotone)
        .set("final_epoch", serve.final_epoch)
        .set("final_cover", serve.final_cover);
    if let Some(p) = serve.read_latency {
        serving = serving
            .set("read_p50_secs", p.p50)
            .set("read_p99_secs", p.p99);
    }
    let weights = Json::obj()
        .set("vertices", weighted.vertices)
        .set("edges", weighted.edges)
        .set("vip_vertices", weighted.vip_vertices)
        .set("cardinality_secs", weighted.cardinality_time.as_secs_f64())
        .set("weighted_secs", weighted.weighted_time.as_secs_f64())
        .set("cardinality_cover", weighted.cardinality_cover)
        .set("cardinality_cost", weighted.cardinality_cost)
        .set("weighted_cover", weighted.weighted_cover)
        .set("weighted_cost", weighted.weighted_cost)
        .set("unit_weights_bit_exact", weighted.unit_weights_bit_exact)
        .set("budget_cap", weighted.budget_cap)
        .set("budgeted_cover", weighted.budgeted_cover)
        .set("budgeted_cost", weighted.budgeted_cost)
        .set("budgeted_exhausted", weighted.budgeted_exhausted)
        .set("residual_cycles", weighted.residual_cycles)
        .set("budget_respected", weighted.budget_respected);
    let obs = Json::obj()
        .set("baseline_secs", observability.baseline_secs)
        .set("instrumented_secs", observability.instrumented_secs)
        .set("overhead_pct", observability.overhead_pct())
        .set("within_budget", observability.within_budget());
    Json::obj()
        .set("schema", "tdb-bench-trajectory/1")
        .set("tag", tag)
        .set(
            "scenarios",
            Json::obj()
                .set("end_to_end", e2e)
                .set("streaming", streaming)
                .set("serve", serving)
                .set("weighted", weights)
                .set("observability", obs),
        )
}
