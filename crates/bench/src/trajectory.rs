//! Perf-trajectory recording: pinned scenarios measured per PR and written to
//! a `BENCH_<tag>.json` file at the repo root, so regressions across the PR
//! stack are diffable (`BENCH_PR6.json` vs `BENCH_PR7.json` vs …).
//!
//! The workspace builds fully offline, so the JSON is hand-rolled: a tiny
//! writer covering exactly the shapes the trajectory needs (objects, strings,
//! integers, finite floats) with deterministic key order.

use std::fmt::Write as _;

/// A JSON value the trajectory file can hold.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A finite float, rendered with up to 6 significant decimals.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a field; panics on a non-object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "trajectory floats must be finite, got {x}");
                // Up to 6 significant decimals, trailing zeros trimmed, but
                // always a `.0` so the value round-trips as a float.
                let mut s = format!("{x:.6}");
                while s.ends_with('0') {
                    s.pop();
                }
                if s.ends_with('.') {
                    s.push('0');
                }
                out.push_str(&s);
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    for _ in 0..depth + 1 {
                        out.push_str("  ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Assemble the trajectory document from the three pinned scenarios.
///
/// The caller runs the scenarios (end-to-end solve, streaming churn, serve
/// load) and passes the reports; this function only shapes the file.
pub fn trajectory_document(
    tag: &str,
    end_to_end: &crate::RowResult,
    stream: &crate::streaming::StreamReport,
    serve: &crate::serve::ServeReport,
) -> Json {
    let e2e = Json::obj()
        .set("dataset", end_to_end.dataset.as_str())
        .set("algorithm", end_to_end.algorithm.as_str())
        .set("k", end_to_end.k)
        .set("vertices", end_to_end.graph_vertices)
        .set("edges", end_to_end.graph_edges)
        .set("cover_size", end_to_end.cover_size)
        .set("seconds", end_to_end.seconds());
    let mut streaming = Json::obj()
        .set("updates", stream.updates_applied)
        .set("batches", stream.batches)
        .set("updates_per_sec", stream.updates_per_sec())
        .set("mean_batch_secs", stream.mean_batch.as_secs_f64())
        .set("resolve_secs", stream.resolve.as_secs_f64())
        .set("speedup_per_batch", stream.speedup_per_batch);
    if let Some(p) = stream.batch_percentiles {
        streaming = streaming
            .set("batch_p50_secs", p.p50)
            .set("batch_p99_secs", p.p99);
    }
    let mut serving = Json::obj()
        .set("readers", serve.readers)
        .set("writers", serve.writers)
        .set("reads", serve.reads)
        .set("reads_per_sec", serve.reads_per_sec)
        .set("updates_streamed", serve.updates_streamed)
        .set("updates_per_sec", serve.updates_per_sec())
        .set("snapshots_audited", serve.snapshots_audited)
        .set("snapshots_valid", serve.snapshots_valid)
        .set("epochs_monotone", serve.epochs_monotone)
        .set("final_epoch", serve.final_epoch)
        .set("final_cover", serve.final_cover);
    if let Some(p) = serve.read_latency {
        serving = serving
            .set("read_p50_secs", p.p50)
            .set("read_p99_secs", p.p99);
    }
    Json::obj()
        .set("schema", "tdb-bench-trajectory/1")
        .set("tag", tag)
        .set(
            "scenarios",
            Json::obj()
                .set("end_to_end", e2e)
                .set("streaming", streaming)
                .set("serve", serving),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects_with_stable_order() {
        let doc = Json::obj()
            .set("b", 2u64)
            .set("a", Json::obj().set("x", 0.5).set("ok", true));
        let text = doc.render();
        let b = text.find("\"b\"").unwrap();
        let a = text.find("\"a\"").unwrap();
        assert!(b < a, "insertion order must be preserved:\n{text}");
        assert!(text.contains("\"x\": 0.5"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_trims_floats() {
        let doc = Json::obj()
            .set("quote\"tab\t", "line\nbreak")
            .set("third", 1.0 / 3.0)
            .set("whole", 2.0);
        let text = doc.render();
        assert!(text.contains("\"quote\\\"tab\\t\": \"line\\nbreak\""));
        assert!(text.contains("\"third\": 0.333333"));
        assert!(text.contains("\"whole\": 2.0"));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let doc = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc, Json::obj().set("k", 2u64));
    }
}
